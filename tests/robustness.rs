//! End-host failure and recovery invariants.
//!
//! Pins the PR-5 robustness claims end to end:
//!
//! * **Retransmit give-up** — when a peer goes silent, the sender's TCP
//!   exhausts its retry budget, tears the connection down, and the
//!   *application* observes `TimedOut` from its blocked `recv` (no
//!   wedged-forever sockets, no leaked PCBs).
//! * **Crash ⇒ RST** — crashing a process with an established connection
//!   sends an RST per RFC 793; the remote application observes
//!   `ConnReset`.
//! * **Crash teardown conserves** — frames queued in a dead process's NI
//!   channel land in the `owner_dead` ledger bucket, keeping the ledger
//!   balanced.
//! * **Bounded recovery** — a retrying client recovers within a bounded
//!   window after a server crash/restart, on every architecture.
//! * **SYN-flood resilience** — under a flood, SOFT-LRP's legitimate
//!   goodput beats 4.4BSD's (ratio > 1).

use lrp::apps::{shared, PacedRpcClient, RpcServer, Shared, TcpBulkMetrics, TcpBulkReceiver};
use lrp::core::{
    AppCtx, AppLogic, Architecture, CrashEvent, Host, HostFaultPlan, SockProto, SyscallOp,
    SyscallRet, World,
};
use lrp::experiments::{crash_recovery, host_config, HOST_A, HOST_B};
use lrp::net::FaultPlan;
use lrp::sim::{SimDuration, SimTime};
use lrp::stack::SockId;
use lrp::wire::Endpoint;

const PORT: u16 = 6400;

/// A TCP client that connects, sends once after a delay, then blocks in
/// `recv` and records whatever comes back — made to observe error
/// surfacing, not data.
struct TcpProbe {
    dst: Endpoint,
    send_after: SimDuration,
    log: Shared<Vec<String>>,
    sock_cell: Shared<Option<SockId>>,
    sock: Option<SockId>,
    state: u8,
}

impl TcpProbe {
    fn new(
        dst: Endpoint,
        send_after: SimDuration,
        log: Shared<Vec<String>>,
        sock_cell: Shared<Option<SockId>>,
    ) -> Self {
        TcpProbe {
            dst,
            send_after,
            log,
            sock_cell,
            sock: None,
            state: 0,
        }
    }
}

impl AppLogic for TcpProbe {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Tcp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                *self.sock_cell.borrow_mut() = Some(s);
                self.state = 1;
                SyscallOp::Connect {
                    sock: s,
                    dst: self.dst,
                }
            }
            (1, SyscallRet::Ok) => {
                self.log.borrow_mut().push("connected".into());
                self.state = 2;
                SyscallOp::Sleep(self.send_after)
            }
            (2, SyscallRet::Ok) => {
                self.state = 3;
                SyscallOp::Send {
                    sock: self.sock.expect("socket"),
                    data: vec![0xAB; 1024],
                }
            }
            (3, SyscallRet::Sent(_)) => {
                self.state = 4;
                SyscallOp::Recv {
                    sock: self.sock.expect("socket"),
                    max_len: 65_536,
                }
            }
            (4, SyscallRet::Data(d)) => {
                self.log.borrow_mut().push(format!("data:{}", d.len()));
                SyscallOp::Recv {
                    sock: self.sock.expect("socket"),
                    max_len: 65_536,
                }
            }
            (s, SyscallRet::Err(e)) => {
                self.log.borrow_mut().push(format!("err@{s}:{e:?}"));
                self.state = 5;
                SyscallOp::Close {
                    sock: self.sock.expect("socket"),
                }
            }
            (5, SyscallRet::Ok) => {
                self.log.borrow_mut().push("closed".into());
                SyscallOp::Exit
            }
            (s, r) => panic!("probe state {s}: {r:?}"),
        }
    }
}

/// Builds probe-vs-bulk-receiver TCP worlds: host 0 runs the probe (A),
/// host 1 the accepting receiver (B). Returns the world plus the probe's
/// log, its socket cell, and the server's pid.
fn build_probe_world(
    arch: Architecture,
    max_retries: u32,
) -> (
    World,
    Shared<Vec<String>>,
    Shared<Option<SockId>>,
    lrp::sched::Pid,
) {
    let mut cfg = host_config(arch);
    cfg.tcp.max_retries = max_retries;
    cfg.tcp.rto_max = SimDuration::from_secs(1);
    let mut world = World::with_defaults();
    let log = shared::<Vec<String>>();
    let sock_cell = shared::<Option<SockId>>();
    let mut a = Host::new(cfg, HOST_A);
    a.spawn_app(
        "probe",
        0,
        0,
        Box::new(TcpProbe::new(
            Endpoint::new(HOST_B, PORT),
            SimDuration::from_millis(100),
            log.clone(),
            sock_cell.clone(),
        )),
    );
    let mut b = Host::new(cfg, HOST_B);
    let server_pid = b.spawn_app(
        "tcp-sink",
        0,
        0,
        Box::new(TcpBulkReceiver::new(PORT, shared::<TcpBulkMetrics>())),
    );
    world.add_host(a);
    world.add_host(b);
    (world, log, sock_cell, server_pid)
}

/// When the peer's link dies, the sender retransmits, gives up, and the
/// blocked `recv` returns `TimedOut`; closing then frees the socket slot.
#[test]
fn retransmit_give_up_surfaces_timed_out() {
    for arch in [Architecture::Bsd, Architecture::SoftLrp] {
        let (mut world, log, sock_cell, _) = build_probe_world(arch, 2);
        // Sever everything toward the server from 50 ms on: the
        // handshake completes, the 100 ms send is never delivered.
        let mut plan = FaultPlan::none();
        plan.pauses = vec![(SimTime::from_millis(50), SimTime::from_secs(1_000))];
        world.set_link_faults(1, plan);
        world.run_until(SimTime::from_secs(10));

        let log = log.borrow();
        assert_eq!(
            log.as_slice(),
            ["connected", "err@4:TimedOut", "closed"],
            "{}: app must observe the give-up as TimedOut",
            arch.name()
        );
        let tcp = world.hosts[0].tcp_totals();
        assert!(
            tcp.retransmits >= 2,
            "{}: give-up only after the retry budget ({tcp:?})",
            arch.name()
        );
        assert!(tcp.timeouts >= 3, "{}: RTO fired repeatedly", arch.name());
        // Close after teardown released the slot: the socket is gone.
        let sock = sock_cell.borrow().expect("probe created a socket");
        assert_eq!(
            world.hosts[0].socket_owner(sock),
            None,
            "{}: socket slot freed after error + close",
            arch.name()
        );
        let errs = lrp::telemetry::conservation_errors(&world);
        assert!(errs.is_empty(), "{}: {}", arch.name(), errs.join("\n"));
    }
}

/// Crashing the server process aborts its established connection with an
/// RST; the remote client's blocked `recv` returns `ConnReset`.
#[test]
fn crash_sends_rst_peer_observes_conn_reset() {
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        let (mut world, log, _cell, server_pid) = build_probe_world(arch, 12);
        world.hosts[1].set_fault_plan(&HostFaultPlan {
            seed: 7,
            crashes: vec![CrashEvent::kill(server_pid, SimTime::from_millis(200))],
        });
        world.run_until(SimTime::from_secs(1));

        let log = log.borrow();
        assert_eq!(
            log.as_slice(),
            ["connected", "err@4:ConnReset", "closed"],
            "{}: crash must surface as ConnReset on the peer",
            arch.name()
        );
        assert_eq!(world.hosts[1].crashes().len(), 1);
        let errs = lrp::telemetry::conservation_errors(&world);
        assert!(errs.is_empty(), "{}: {}", arch.name(), errs.join("\n"));
    }
}

/// Crashing an overloaded NI-LRP server with frames queued in its NI
/// channel re-attributes those frames to the `owner_dead` bucket — and
/// the ledger still balances.
#[test]
fn crash_unmaps_channels_into_owner_dead() {
    let mut world = World::with_defaults();
    let mut a = Host::new(host_config(Architecture::NiLrp), HOST_A);
    a.spawn_app(
        "paced",
        0,
        0,
        Box::new(PacedRpcClient::new(
            Endpoint::new(HOST_B, PORT),
            5000,
            SimDuration::from_micros(200),
        )),
    );
    let mut b = Host::new(host_config(Architecture::NiLrp), HOST_B);
    // 1 ms of work per request vs one request per 200 µs: the channel
    // backs up fast.
    let server_pid = b.spawn_app(
        "slow-server",
        0,
        0,
        Box::new(RpcServer::new(PORT, SimDuration::from_millis(1))),
    );
    b.set_fault_plan(&HostFaultPlan {
        seed: 3,
        crashes: vec![CrashEvent::kill(server_pid, SimTime::from_millis(100))],
    });
    world.add_host(a);
    world.add_host(b);
    world.run_until(SimTime::from_millis(250));

    let ledger = world.hosts[1].packet_ledger();
    assert!(
        ledger.owner_dead > 0,
        "queued channel frames must be re-attributed: {ledger:?}"
    );
    let errs = lrp::telemetry::conservation_errors(&world);
    assert!(errs.is_empty(), "{}", errs.join("\n"));
}

/// After the crash/restart, the retrying client recovers within a
/// bounded window on every architecture.
#[test]
fn recovery_is_bounded_on_every_architecture() {
    for arch in lrp::experiments::all_architectures() {
        let p = crash_recovery::measure_recovery(arch, SimTime::from_secs(1));
        let recovery = p
            .recovery_ms
            .unwrap_or_else(|| panic!("{}: client never recovered: {p:?}", arch.name()));
        assert!(
            recovery < 200.0,
            "{}: recovery within one retry/backoff cycle, got {recovery:.2} ms ({p:?})",
            arch.name()
        );
        assert!(p.retries > 0, "{}: outage forced retries", arch.name());
        assert!(p.timeouts > 0, "{}: deadlines fired", arch.name());
        assert!(p.conserved, "{}: ledgers balance: {p:?}", arch.name());
    }
}

/// Under the SYN flood (SYN cache on), SOFT-LRP keeps serving legitimate
/// HTTP clients while 4.4BSD starves: the goodput ratio exceeds 1.
#[test]
fn syn_flood_goodput_ratio_lrp_over_bsd() {
    let d = SimTime::from_millis(1_500);
    let bsd = crash_recovery::measure_flood(Architecture::Bsd, crash_recovery::FLOOD_PPS, d);
    let lrp = crash_recovery::measure_flood(Architecture::SoftLrp, crash_recovery::FLOOD_PPS, d);
    assert!(
        bsd.conserved && lrp.conserved,
        "ledgers balance under flood"
    );
    assert!(
        bsd.syn_cache_evictions > 0,
        "BSD's overflowing backlog exercises the SYN cache: {bsd:?}"
    );
    assert!(
        lrp.http_tps > bsd.http_tps,
        "SOFT-LRP goodput must beat 4.4BSD under flood: {lrp:?} vs {bsd:?}"
    );
}
