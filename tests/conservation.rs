//! Packet conservation (DESIGN.md §7), checked end-to-end through the
//! telemetry ledger: every frame the NIC accepts must be accounted for in
//! exactly one disposition bucket — delivered, dropped (at a named drop
//! point), absorbed by reassembly, forwarded, flushed with a destroyed
//! channel, or still in flight — under every architecture, at overload.
//!
//! Also pins the telemetry layer's zero-impact claim directly: the same
//! scenario with telemetry on and off produces bit-identical kernel
//! state.

use lrp::apps::{shared, BlastSink};
use lrp::core::{Architecture, Host, HostConfig, World};
use lrp::net::{Injector, Pattern};
use lrp::sim::SimTime;
use lrp::telemetry::{conservation_errors, ledger_json, report_and_check, Json};
use lrp::wire::{udp, Frame, Ipv4Addr};

const OVERLOAD_PPS: f64 = 20_000.0;
const DURATION: SimTime = SimTime::from_secs(1);

fn overloaded_world(arch: Architecture) -> World {
    let (mut world, _metrics) = lrp::experiments::fig3::build(arch, OVERLOAD_PPS, false);
    world.run_until(DURATION);
    world
}

#[test]
fn ledger_balances_under_overload_for_every_architecture() {
    for arch in lrp::experiments::all_architectures() {
        let world = overloaded_world(arch);
        let errs = conservation_errors(&world);
        assert!(errs.is_empty(), "{arch:?}: {errs:?}");

        let host = &world.hosts[0];
        let ledger = host.packet_ledger();
        // The partition, by construction and by value.
        assert_eq!(ledger.accepted, ledger.disposed(), "{arch:?}: {ledger:?}");
        // Spot-check buckets against independent counters.
        assert_eq!(ledger.accepted, host.nic.stats().rx_frames, "{arch:?}");
        assert_eq!(ledger.delivered_udp, host.stats.udp_delivered, "{arch:?}");
        assert!(
            ledger.delivered_udp > 0,
            "{arch:?}: overload run delivered nothing"
        );
        // At 20 000 pkts/s every architecture is saturated: something must
        // have been refused somewhere (ring, early discard, or drop point).
        assert!(
            ledger.nic_ring_drops + ledger.nic_early_discards + ledger.host_dropped() > 0,
            "{arch:?}: no losses at overload — not actually overloaded? {ledger:?}"
        );
    }
}

#[test]
fn report_and_check_exports_the_balanced_ledger() {
    let world = overloaded_world(Architecture::SoftLrp);
    let report = report_and_check(&world, "conservation-test");
    let host = report
        .as_arr()
        .expect("array of hosts")
        .first()
        .expect("one host");
    assert_eq!(host.get("conserved").and_then(Json::as_bool), Some(true));
    let exported = host.get("ledger").expect("ledger");
    // The JSON export is the same ledger, field for field.
    assert_eq!(
        exported.render(),
        ledger_json(&world.hosts[0].packet_ledger()).render()
    );
    let accepted = exported.get("accepted").and_then(Json::as_u64).unwrap();
    let disposed = exported.get("disposed").and_then(Json::as_u64).unwrap();
    assert_eq!(accepted, disposed);
}

/// The Figure-3 blast scenario, built directly (not via
/// `lrp_experiments::host_config`, which forces telemetry on) so the
/// telemetry flag can be varied.
fn blast_world(arch: Architecture, telemetry: bool) -> World {
    const BLAST_SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    let mut world = World::with_defaults();
    let mut cfg = HostConfig::new(arch);
    cfg.telemetry = telemetry;
    let mut server = Host::new(cfg, SERVER);
    server.spawn_app("blast-sink", 0, 0, Box::new(BlastSink::new(9000, shared())));
    let b = world.add_host(server);
    let inj = Injector::new(
        Pattern::Poisson { pps: OVERLOAD_PPS },
        SimTime::from_millis(50),
        7,
        move |seq| {
            let mut payload = [0u8; 14];
            payload[..8].copy_from_slice(&seq.to_be_bytes());
            Frame::ipv4(udp::build_datagram(
                BLAST_SRC,
                SERVER,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &payload,
                false,
            ))
        },
    );
    world.add_injector(b, inj);
    world.run_until(DURATION);
    world
}

fn kernel_state(h: &lrp::core::Host) -> String {
    let s = &h.stats;
    let mut drops: Vec<String> = s.drops.iter().map(|(k, v)| format!("{k:?}={v}")).collect();
    drops.sort();
    format!(
        "{s_udp} {s_bytes} [{drops}] {hw} {soft} {ctx} {nic:?} {charged} {rxf}",
        s_udp = s.udp_delivered,
        s_bytes = s.udp_delivered_bytes,
        drops = drops.join(","),
        hw = s.hw_chunks,
        soft = s.soft_jobs,
        ctx = s.ctx_switches,
        nic = h.nic.stats(),
        charged = h.sched.total_charged(),
        rxf = h.rx_frames()
    )
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    for arch in lrp::experiments::all_architectures() {
        let on = blast_world(arch, true);
        let off = blast_world(arch, false);
        assert_eq!(
            kernel_state(&on.hosts[0]),
            kernel_state(&off.hosts[0]),
            "{arch:?}: telemetry perturbed the kernel state"
        );
        // And the instrumented run really did record — including the
        // observability layer (profiler, timeline), which must be busy on
        // the "on" side and empty on the "off" side while the kernel
        // state above stays bit-identical.
        assert!(on.hosts[0].telemetry().enabled());
        assert!(on.hosts[0].packet_ledger().conserved());
        assert!(on.hosts[0].telemetry().profiler().total() > 0);
        assert!(!on.hosts[0].telemetry().timeline().rows().is_empty());
        assert!(!off.hosts[0].telemetry().enabled());
        assert_eq!(off.hosts[0].telemetry().profiler().total(), 0);
        assert!(off.hosts[0].telemetry().timeline().rows().is_empty());
    }
}

/// Same zero-impact claim over a request-reply workload, which exercises
/// the span-tracing paths (tx-minted spans, reply continuation) that the
/// one-way blast does not.
#[test]
fn telemetry_does_not_perturb_request_reply() {
    fn rtt_world(telemetry: bool) -> World {
        let mut cfg = HostConfig::new(Architecture::NiLrp);
        cfg.telemetry = telemetry;
        let (mut world, metrics) = lrp::experiments::table1::build_rtt(cfg, 100);
        world.run_until(SimTime::from_secs(2));
        assert!(metrics.borrow().done, "ping-pong did not finish");
        world
    }
    let on = rtt_world(true);
    let off = rtt_world(false);
    for i in 0..2 {
        assert_eq!(
            kernel_state(&on.hosts[i]),
            kernel_state(&off.hosts[i]),
            "host {i}: telemetry perturbed the kernel state"
        );
    }
    assert!(!on.hosts[0].telemetry().span_log().is_empty());
    assert!(off.hosts[0].telemetry().span_log().is_empty());
}

/// The quantile sketches are deterministic observers: rerunning the same
/// seeded blast produces bit-identical sketch state (the merge/aggregation
/// story across hosts and seeds depends on this), and the sketch stays
/// within its error bound of the exact histogram it shadows.
#[test]
fn sketches_are_deterministic_and_agree_with_exact_histograms() {
    let a = blast_world(Architecture::NiLrp, true);
    let b = blast_world(Architecture::NiLrp, true);
    let (ta, tb) = (a.hosts[0].telemetry(), b.hosts[0].telemetry());
    assert!(ta.arrival_to_deliver_sketch.count() > 0);
    assert_eq!(ta.arrival_to_deliver_sketch, tb.arrival_to_deliver_sketch);
    assert_eq!(ta.channel_residency_sketch, tb.channel_residency_sketch);
    assert_eq!(ta.softirq_dispatch_sketch, tb.softirq_dispatch_sketch);
    // Sketch and exact histogram describe the same samples: counts match
    // exactly, quantiles within the two estimators' combined quantization.
    let (h, s) = (&ta.arrival_to_deliver, &ta.arrival_to_deliver_sketch);
    assert_eq!(h.count(), s.count());
    assert_eq!(h.max(), s.max());
    for q in [0.5, 0.9, 0.99, 0.999] {
        let (eh, es) = (h.quantile(q), s.quantile(q));
        let tol = (eh.max(es) as f64 * (1.0 / 16.0 + s.relative_error())) as u64 + 64;
        assert!(
            eh.abs_diff(es) <= tol,
            "q={q}: exact {eh} vs sketch {es} (tol {tol})"
        );
    }
}
