//! Cross-refactor goldens for the modular-TCP split: with the default
//! controller (NewReno) the refactored stack must be *byte-identical* to
//! the pre-refactor monolithic `tcp.rs` on representative experiment
//! cells. The pinned values below were captured on the monolith
//! immediately before the `crates/stack/src/tcp/` module split; any
//! drift means the `CongestionControl` / `AckStrategy` / `LossRecovery`
//! seams changed behaviour, not just structure.

use lrp::core::Architecture;
use lrp::experiments::{fault_sweep, fig3};
use lrp::sim::SimTime;

/// Digest of one fault-sweep cell: every TCP-visible counter plus the
/// goodput bits. Any congestion-control change shows up here.
fn sweep_digest(arch: Architecture, profile: &'static str, rate: f64) -> String {
    let plan = match profile {
        "bernoulli" => fault_sweep::bernoulli_plan(0xFA00, rate),
        "burst" => fault_sweep::burst_plan(0xFA00, rate),
        _ => unreachable!(),
    };
    let p = fault_sweep::measure(arch, profile, plan, rate, 256 << 10, SimTime::from_secs(30));
    format!(
        "{:016x}|{}|{}|{}|{}|{}|{}|{}",
        p.goodput_mbps.to_bits(),
        p.bytes,
        p.done,
        p.retransmits,
        p.fast_retransmits,
        p.timeouts,
        p.checksum_drops,
        p.conserved
    )
}

/// fig3 (UDP blast) exercises the full host path around TCP; its
/// delivered-rate bits must not move either.
fn fig3_digest(arch: Architecture) -> String {
    let p = fig3::measure(arch, 9_500.0, SimTime::from_secs(1));
    format!("{:016x}", p.delivered.to_bits())
}

#[test]
fn newreno_default_fault_sweep_cells_bit_identical_to_pre_refactor() {
    let cases: &[(Architecture, &'static str, f64, &'static str)] = &[
        (
            Architecture::Bsd,
            "bernoulli",
            0.05,
            "3fedf765f628e065|262144|true|3|1|2|0|true",
        ),
        (
            Architecture::SoftLrp,
            "bernoulli",
            0.05,
            "3fe87df418910e4a|262144|true|4|1|3|0|true",
        ),
        (
            Architecture::SoftLrp,
            "burst",
            0.05,
            "3ff074377c84e46b|262144|true|6|0|2|0|true",
        ),
        (
            Architecture::NiLrp,
            "burst",
            0.10,
            "3fea7232fd8ebf04|262144|true|7|0|3|0|true",
        ),
    ];
    for (arch, profile, rate, want) in cases {
        let got = sweep_digest(*arch, profile, *rate);
        assert_eq!(
            &got,
            want,
            "fault_sweep {}/{profile}@{rate} drifted across the modular-TCP refactor",
            arch.name()
        );
    }
}

#[test]
fn newreno_default_fig3_points_bit_identical_to_pre_refactor() {
    let cases: &[(Architecture, &'static str)] = &[
        (Architecture::Bsd, "40b5aa0000000000"),
        (Architecture::SoftLrp, "40c05c0000000000"),
        (Architecture::NiLrp, "40c28e0000000000"),
    ];
    for (arch, want) in cases {
        let got = fig3_digest(*arch);
        assert_eq!(
            &got,
            want,
            "fig3 {} delivered-rate drifted across the modular-TCP refactor",
            arch.name()
        );
    }
}
