//! Cross-crate integration tests: behaviours that only emerge when the
//! demux table, NIC, scheduler, stack and host cooperate.

use lrp::core::{
    AppCtx, AppLogic, Architecture, Host, HostConfig, SockProto, SyscallOp, SyscallRet, World,
};
use lrp::sim::{SimDuration, SimTime};
use lrp::stack::SockId;
use lrp::wire::{Endpoint, Ipv4Addr};
use std::cell::RefCell;
use std::rc::Rc;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A client that performs sequential TCP request/response transactions.
struct SerialClient {
    dst: Endpoint,
    remaining: u32,
    sock: Option<SockId>,
    state: u8,
    done: Rc<RefCell<u32>>,
}

impl AppLogic for SerialClient {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Sleep(SimDuration::from_millis(5))
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, _) => {
                self.state = 1;
                SyscallOp::Socket(SockProto::Tcp)
            }
            (1, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                self.state = 2;
                SyscallOp::Connect {
                    sock: s,
                    dst: self.dst,
                }
            }
            (2, SyscallRet::Ok) => {
                self.state = 3;
                SyscallOp::Send {
                    sock: self.sock.unwrap(),
                    data: b"req".to_vec(),
                }
            }
            (3, SyscallRet::Sent(_)) => {
                self.state = 4;
                SyscallOp::Recv {
                    sock: self.sock.unwrap(),
                    max_len: 65_536,
                }
            }
            (4, SyscallRet::Data(_)) => {
                self.state = 5;
                SyscallOp::Close {
                    sock: self.sock.take().unwrap(),
                }
            }
            (5, _) => {
                *self.done.borrow_mut() += 1;
                self.remaining -= 1;
                if self.remaining == 0 {
                    SyscallOp::Exit
                } else {
                    self.state = 0;
                    SyscallOp::Sleep(SimDuration::from_millis(1))
                }
            }
            (s, r) => panic!("serial client state {s}: {r:?}"),
        }
    }
}

/// Accept-respond-close server.
struct OneShotServer {
    port: u16,
    lsock: Option<SockId>,
    conn: Option<SockId>,
    state: u8,
}

impl AppLogic for OneShotServer {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Tcp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.lsock = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            (1, SyscallRet::Ok) => {
                self.state = 2;
                SyscallOp::Listen {
                    sock: self.lsock.unwrap(),
                    backlog: 8,
                }
            }
            (2, SyscallRet::Ok) => {
                self.state = 3;
                SyscallOp::Accept {
                    sock: self.lsock.unwrap(),
                }
            }
            (3, SyscallRet::Accepted(c)) => {
                self.conn = Some(c);
                self.state = 4;
                SyscallOp::Recv {
                    sock: c,
                    max_len: 65_536,
                }
            }
            (4, SyscallRet::Data(_)) => {
                self.state = 5;
                SyscallOp::Send {
                    sock: self.conn.unwrap(),
                    data: vec![0x5A; 500],
                }
            }
            (5, SyscallRet::Sent(_)) => {
                self.state = 6;
                SyscallOp::Close {
                    sock: self.conn.take().unwrap(),
                }
            }
            (6, _) => {
                self.state = 3;
                SyscallOp::Accept {
                    sock: self.lsock.unwrap(),
                }
            }
            (s, r) => panic!("server state {s}: {r:?}"),
        }
    }
}

/// NI-LRP reclaims connection channels in TIME_WAIT (§4.2): after a burst
/// of sequential connections, the NIC's channel count returns to the
/// baseline instead of accumulating one channel per past connection.
#[test]
fn ni_lrp_time_wait_channel_reclamation() {
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.tcp.time_wait = SimDuration::from_secs(30); // Long TIME_WAIT.
    cfg.time_wait_channel_reclaim = true;
    let done = Rc::new(RefCell::new(0u32));
    let mut world = World::with_defaults();
    let mut ha = Host::new(cfg, A);
    ha.spawn_app(
        "client",
        0,
        0,
        Box::new(SerialClient {
            dst: Endpoint::new(B, 80),
            remaining: 10,
            sock: None,
            state: 0,
            done: done.clone(),
        }),
    );
    let mut hb = Host::new(cfg, B);
    hb.spawn_app(
        "server",
        0,
        0,
        Box::new(OneShotServer {
            port: 80,
            lsock: None,
            conn: None,
            state: 0,
        }),
    );
    world.add_host(ha);
    world.add_host(hb);
    world.run_until(SimTime::from_secs(10));
    assert_eq!(*done.borrow(), 10, "all transactions completed");
    // Server channels: fragment + listener + (children either closed or in
    // TIME_WAIT with their channel reclaimed). Allow a little slack for a
    // connection mid-teardown at the cutoff.
    let chans = world.hosts[1].nic.channel_count();
    assert!(
        chans <= 4,
        "TIME_WAIT channels must be reclaimed on NI-LRP: {chans} live"
    );
}

/// Without reclamation the same workload pins one NI channel per
/// TIME_WAIT connection.
#[test]
fn ni_lrp_without_reclamation_channels_accumulate() {
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.tcp.time_wait = SimDuration::from_secs(30);
    cfg.time_wait_channel_reclaim = false;
    let done = Rc::new(RefCell::new(0u32));
    let mut world = World::with_defaults();
    let mut ha = Host::new(cfg, A);
    ha.spawn_app(
        "client",
        0,
        0,
        Box::new(SerialClient {
            dst: Endpoint::new(B, 80),
            remaining: 10,
            sock: None,
            state: 0,
            done: done.clone(),
        }),
    );
    let mut hb = Host::new(cfg, B);
    hb.spawn_app(
        "server",
        0,
        0,
        Box::new(OneShotServer {
            port: 80,
            lsock: None,
            conn: None,
            state: 0,
        }),
    );
    world.add_host(ha);
    world.add_host(hb);
    world.run_until(SimTime::from_secs(10));
    assert_eq!(*done.borrow(), 10);
    let chans = world.hosts[1].nic.channel_count();
    assert!(
        chans >= 10,
        "without reclamation, TIME_WAIT pins channels: only {chans} live"
    );
}

/// The demux table shrinks back after connection churn: no leaked filters.
#[test]
fn demux_table_no_filter_leak() {
    let cfg = HostConfig::new(Architecture::SoftLrp);
    let done = Rc::new(RefCell::new(0u32));
    let mut world = World::with_defaults();
    let mut ha = Host::new(cfg, A);
    ha.spawn_app(
        "client",
        0,
        0,
        Box::new(SerialClient {
            dst: Endpoint::new(B, 80),
            remaining: 20,
            sock: None,
            state: 0,
            done: done.clone(),
        }),
    );
    let mut hb = Host::new(cfg, B);
    hb.spawn_app(
        "server",
        0,
        0,
        Box::new(OneShotServer {
            port: 80,
            lsock: None,
            conn: None,
            state: 0,
        }),
    );
    world.add_host(ha);
    world.add_host(hb);
    // Run long enough for every TIME_WAIT (30 s default) to expire.
    world.run_until(SimTime::from_secs(45));
    assert_eq!(*done.borrow(), 20);
    // Server: only the listener's wildcard filter remains.
    assert!(
        world.hosts[1].nic.demux.len() <= 2,
        "server leaked demux filters: {}",
        world.hosts[1].nic.demux.len()
    );
    // Client: every per-connection filter (wildcard from the implicit
    // bind plus the exact 5-tuple) must be gone too.
    assert!(
        world.hosts[0].nic.demux.len() <= 2,
        "client leaked demux filters: {}",
        world.hosts[0].nic.demux.len()
    );
}

/// CPU-time conservation: everything charged to processes equals what the
/// scheduler handed out; no charge is lost or double-counted across the
/// interrupt/softirq/process contexts.
#[test]
fn cpu_charge_conservation_under_load() {
    let (mut world, _m) = lrp::experiments::fig3::build(Architecture::Bsd, 9_000.0, false);
    world.run_until(SimTime::from_secs(2));
    let host = &world.hosts[0];
    let total = host.sched.total_charged();
    let sum: lrp::sim::SimDuration = host
        .sched
        .procs()
        .iter()
        .map(|p| p.acct.total())
        .fold(lrp::sim::SimDuration::ZERO, |a, b| a + b);
    assert_eq!(sum, total, "charges must balance");
    // Sanity: the host was busy most of the time at 9k pkts/s.
    assert!(
        total.as_secs_f64() > 1.0,
        "expected a busy host, charged only {total}"
    );
}
