//! Determinism: the repository's reproducibility claim. Identical
//! configurations must produce bit-identical results — this is what makes
//! the regenerated figures trustworthy.

use lrp::core::Architecture;
use lrp::experiments::{fig3, fig5, table2};
use lrp::sim::SimTime;

#[test]
fn fig3_point_is_bit_identical_across_runs() {
    let a = fig3::measure(Architecture::SoftLrp, 9_500.0, SimTime::from_secs(1));
    let b = fig3::measure(Architecture::SoftLrp, 9_500.0, SimTime::from_secs(1));
    assert_eq!(a.delivered.to_bits(), b.delivered.to_bits());
}

#[test]
fn fig5_point_is_bit_identical_across_runs() {
    let a = fig5::measure(Architecture::Bsd, 8_000.0, SimTime::from_secs(2));
    let b = fig5::measure(Architecture::Bsd, 8_000.0, SimTime::from_secs(2));
    assert_eq!(a.http_tps.to_bits(), b.http_tps.to_bits());
    assert_eq!(a.fail_rate.to_bits(), b.fail_rate.to_bits());
}

#[test]
fn full_host_state_identical_across_runs() {
    // Deeper than a summary statistic: every counter the kernel kept.
    let run = || {
        let (mut world, _m) = fig3::build(Architecture::NiLrp, 11_000.0, true);
        world.run_until(SimTime::from_secs(1));
        let h = &world.hosts[0];
        (
            h.stats.clone(),
            h.nic.stats(),
            h.sched.total_charged(),
            h.rx_frames(),
        )
    };
    let (s1, n1, c1, r1) = run();
    let (s2, n2, c2, r2) = run();
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
    assert_eq!(n1, n2);
    assert_eq!(c1, c2);
    assert_eq!(r1, r2);
}

#[test]
fn table2_cell_is_identical_across_runs() {
    let a = table2::measure(Architecture::SoftLrp, table2::Variant::Fast);
    let b = table2::measure(Architecture::SoftLrp, table2::Variant::Fast);
    assert_eq!(a.worker_elapsed_s.to_bits(), b.worker_elapsed_s.to_bits());
    assert_eq!(a.rpc_rate.to_bits(), b.rpc_rate.to_bits());
}
