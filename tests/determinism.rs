//! Determinism: the repository's reproducibility claim. Identical
//! configurations must produce bit-identical results — this is what makes
//! the regenerated figures trustworthy.

use lrp::core::Architecture;
use lrp::experiments::{fig3, fig5, table2};
use lrp::sim::SimTime;

#[test]
fn fig3_point_is_bit_identical_across_runs() {
    let a = fig3::measure(Architecture::SoftLrp, 9_500.0, SimTime::from_secs(1));
    let b = fig3::measure(Architecture::SoftLrp, 9_500.0, SimTime::from_secs(1));
    assert_eq!(a.delivered.to_bits(), b.delivered.to_bits());
}

#[test]
fn fig5_point_is_bit_identical_across_runs() {
    let a = fig5::measure(Architecture::Bsd, 8_000.0, SimTime::from_secs(2));
    let b = fig5::measure(Architecture::Bsd, 8_000.0, SimTime::from_secs(2));
    assert_eq!(a.http_tps.to_bits(), b.http_tps.to_bits());
    assert_eq!(a.fail_rate.to_bits(), b.fail_rate.to_bits());
}

#[test]
fn full_host_state_identical_across_runs() {
    // Deeper than a summary statistic: every counter the kernel kept.
    let run = || {
        let (mut world, _m) = fig3::build(Architecture::NiLrp, 11_000.0, true);
        world.run_until(SimTime::from_secs(1));
        let h = &world.hosts[0];
        (
            h.stats.clone(),
            h.nic.stats(),
            h.sched.total_charged(),
            h.rx_frames(),
        )
    };
    let (s1, n1, c1, r1) = run();
    let (s2, n2, c2, r2) = run();
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
    assert_eq!(n1, n2);
    assert_eq!(c1, c2);
    assert_eq!(r1, r2);
}

/// Pre-SMP-refactor golden values for the Figure-3 blast scenario
/// (Poisson arrivals, 12 000 pkts/s offered, 1 s, three seeds). Captured
/// on the single-CPU host before `Vec<Cpu>` existed; an `ncpus = 1` host
/// must reproduce them bit-for-bit — same seeds, same event order.
/// Each row: (seed, arch, delivered-rate f64 bits, FNV-1a over the full
/// host state: stats, NIC stats, charged time, rx frame count).
const FIG3_GOLDEN: &[(u64, Architecture, u64, u64)] = &[
    (7, Architecture::Bsd, 0x40ab0c0000000000, 0xc7d7a13a0dd0a888),
    (
        7,
        Architecture::SoftLrp,
        0x40be100000000000,
        0xce3168dc747137aa,
    ),
    (
        7,
        Architecture::NiLrp,
        0x40c5300000000000,
        0x2ef2de8308903242,
    ),
    (
        11,
        Architecture::Bsd,
        0x40a9080000000000,
        0x7c7f96907699e4fb,
    ),
    (
        11,
        Architecture::SoftLrp,
        0x40bdbc0000000000,
        0xe48e30867580dc72,
    ),
    (
        11,
        Architecture::NiLrp,
        0x40c5310000000000,
        0x017b84eeb719f052,
    ),
    (
        23,
        Architecture::Bsd,
        0x40aca00000000000,
        0xe258b4e8907abaa3,
    ),
    (
        23,
        Architecture::SoftLrp,
        0x40be500000000000,
        0x4885ccc2f2cdf929,
    ),
    (
        23,
        Architecture::NiLrp,
        0x40c5300000000000,
        0x7e698acbf280cd9e,
    ),
];

fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Serializes the counters the goldens cover from explicit named fields,
/// with drops sorted by name. Hashing `Debug` output would silently tie
/// the goldens to `HashMap` iteration order (not stable across processes)
/// and to the exact field set of `HostStats` (which may legitimately grow).
fn host_state_string(h: &lrp::core::Host) -> String {
    let s = &h.stats;
    let mut drops: Vec<String> = s.drops.iter().map(|(k, v)| format!("{k:?}={v}")).collect();
    drops.sort();
    let n = h.nic.stats();
    format!(
        "udp={} udpB={} tcpB={} drops=[{}] hw={} soft={} ctx={} acc={} \
         nic(rx={} intr={} ring={} early={} tx={} ifq={}) charged={} rxf={}",
        s.udp_delivered,
        s.udp_delivered_bytes,
        s.tcp_delivered_bytes,
        drops.join(","),
        s.hw_chunks,
        s.soft_jobs,
        s.ctx_switches,
        s.tcp_accepted,
        n.rx_frames,
        n.interrupts,
        n.ring_drops,
        n.early_discards,
        n.tx_frames,
        n.ifq_drops,
        h.sched.total_charged(),
        h.rx_frames()
    )
}

#[test]
fn fig3_matches_pre_smp_baseline_for_three_seeds() {
    for &(seed, arch, delivered_bits, state_fnv) in FIG3_GOLDEN {
        let p = fig3::measure_seeded(arch, 12_000.0, true, seed, SimTime::from_secs(1));
        assert_eq!(
            p.delivered.to_bits(),
            delivered_bits,
            "delivered rate drifted from pre-SMP baseline (seed {seed}, {arch:?})"
        );
        let (mut world, _m) = fig3::build_seeded(arch, 12_000.0, true, seed);
        world.run_until(SimTime::from_secs(1));
        let state = host_state_string(&world.hosts[0]);
        assert_eq!(
            fnv1a(&state),
            state_fnv,
            "host state drifted from pre-SMP baseline (seed {seed}, {arch:?}): {state}"
        );
    }
}

/// The timer wheel must be observationally equivalent to the legacy
/// binary heap: same seed, same architecture, bit-identical delivered
/// rate and full host state — on every architecture. The wheel preserves
/// the `(time, seq)` FIFO tie-break, so nothing downstream may notice
/// which queue implementation ran.
#[test]
fn wheel_and_heap_produce_identical_results_on_all_architectures() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let run = |queue: lrp::sim::QueueImpl| {
            let (mut world, _m) = fig3::build_seeded(arch, 12_000.0, true, 7);
            world.use_queue_impl(queue);
            world.run_until(SimTime::from_secs(1));
            (host_state_string(&world.hosts[0]), world.events_processed())
        };
        let (heap_state, heap_events) = run(lrp::sim::QueueImpl::Heap);
        let (wheel_state, wheel_events) = run(lrp::sim::QueueImpl::Wheel);
        assert_eq!(
            heap_state, wheel_state,
            "queue implementations diverged ({arch:?})"
        );
        assert_eq!(
            heap_events, wheel_events,
            "event counts diverged ({arch:?})"
        );
    }
}

/// Frame-arena recycling is a pure allocation strategy: a fault-heavy
/// TCP run (bursty loss, retransmissions, duplicated frames) must be
/// byte-identical with pooling on and off. This pins the fault stage's
/// copy-free duplication — sharing one buffer between both deliveries
/// may not change what any host observes.
#[test]
fn fault_sweep_results_identical_with_and_without_frame_pooling() {
    use lrp::experiments::fault_sweep;
    use lrp::stack::tcp::CcAlgo;
    let run = |pooled: bool| {
        lrp::wire::set_frame_pooling(pooled);
        let mut plan = fault_sweep::burst_plan(0xB57, 0.02);
        plan.duplicate_p = 0.05;
        let (mut world, _m) =
            fault_sweep::build_cc(Architecture::Bsd, CcAlgo::NewReno, plan, 1 << 18);
        world.run_until(SimTime::from_secs(10));
        let digest = (
            host_state_string(&world.hosts[0]),
            host_state_string(&world.hosts[1]),
            world.events_processed(),
        );
        lrp::wire::set_frame_pooling(true);
        digest
    };
    assert_eq!(run(true), run(false), "frame pooling changed results");
}

#[test]
fn table2_cell_is_identical_across_runs() {
    let a = table2::measure(Architecture::SoftLrp, table2::Variant::Fast);
    let b = table2::measure(Architecture::SoftLrp, table2::Variant::Fast);
    assert_eq!(a.worker_elapsed_s.to_bits(), b.worker_elapsed_s.to_bits());
    assert_eq!(a.rpc_rate.to_bits(), b.rpc_rate.to_bits());
}
