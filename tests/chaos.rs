//! Chaos soak: randomized fault schedules over every architecture.
//!
//! Each generated schedule combines link faults (Bernoulli or
//! Gilbert–Elliott loss, corruption, duplication, bounded reordering, a
//! timed link pause) with NIC faults (a ring stall window, interrupt
//! coalescing), then drives the Figure-3 UDP blast scenario under it.
//! Three invariants must survive arbitrary schedules:
//!
//! 1. **No panic** — malformed arrival orders, duplicate floods and
//!    device stalls never crash the kernel model.
//! 2. **Conservation** — every accepted frame is attributed to exactly
//!    one disposition bucket, faults included.
//! 3. **Determinism** — the same seed reproduces the exact same final
//!    host state, bit for bit, on every architecture.
//!
//! The proptest shim generates cases deterministically per test name, so
//! CI runs a fixed seed set.

use lrp::apps::{shared, Shared, TcpBulkMetrics, TcpBulkReceiver};
use lrp::core::{
    AppCtx, AppLogic, Architecture, CrashEvent, DropPoint, Errno, Host, HostFaultPlan, SockProto,
    SyscallOp, SyscallRet, World,
};
use lrp::experiments::{crash_recovery, fault_sweep, fig3, host_config, HOST_A, HOST_B};
use lrp::net::FaultPlan;
use lrp::nic::NicFaultPlan;
use lrp::sched::Pid;
use lrp::sim::{SimDuration, SimTime};
use lrp::stack::SockId;
use lrp::wire::Endpoint;
use proptest::prelude::*;

/// One randomly drawn fault schedule.
#[derive(Clone, Debug)]
struct Schedule {
    seed: u64,
    pps: f64,
    bursty: bool,
    loss: f64,
    corrupt_p: f64,
    duplicate_p: f64,
    reorder_p: f64,
    reorder_delay_us: u64,
    pause: Option<(u64, u64)>,
    nic_stall: Option<(u64, u64)>,
    coalesce_us: u64,
}

impl Schedule {
    fn link_plan(&self) -> FaultPlan {
        let mut plan = if self.loss == 0.0 {
            FaultPlan::none()
        } else if self.bursty {
            // Mean burst of 12 frames, 70% in-burst loss.
            let p_bg = 1.0 / 12.0;
            let pi_bad = (self.loss / 0.7).min(0.9);
            FaultPlan::gilbert_elliott(self.seed, p_bg * pi_bad / (1.0 - pi_bad), p_bg, 0.0, 0.7)
        } else {
            FaultPlan::bernoulli(self.seed, self.loss)
        };
        plan.seed = self.seed;
        plan.corrupt_p = self.corrupt_p;
        plan.duplicate_p = self.duplicate_p;
        plan.reorder_p = self.reorder_p;
        plan.reorder_max_delay = SimDuration::from_micros(self.reorder_delay_us);
        if let Some((start_ms, dur_ms)) = self.pause {
            plan.pauses = vec![(
                SimTime::from_millis(start_ms),
                SimTime::from_millis(start_ms + dur_ms),
            )];
        }
        plan
    }

    fn nic_plan(&self) -> NicFaultPlan {
        let mut plan = NicFaultPlan::none();
        if let Some((start_ms, dur_ms)) = self.nic_stall {
            let start = start_ms * 1_000_000;
            plan.stall_ns = vec![(start, start + dur_ms * 1_000_000)];
        }
        plan.coalesce_ns = self.coalesce_us * 1_000;
        plan
    }
}

/// Runs the blast under `sched` on `arch`; asserts conservation and
/// fault-stage attribution; returns a digest of the final host state.
fn run_digest(arch: Architecture, sched: &Schedule) -> String {
    let (mut world, metrics) = fig3::build_seeded(arch, sched.pps, true, sched.seed);
    world.hosts[0].nic.set_faults(sched.nic_plan());
    world.set_link_faults(0, sched.link_plan());
    world.run_until(SimTime::from_secs(1));

    let errs = lrp::telemetry::conservation_errors(&world);
    assert!(
        errs.is_empty(),
        "conservation violated on {} under {sched:?}:\n{}",
        arch.name(),
        errs.join("\n")
    );
    let fs = world
        .link_fault_stats(0)
        .copied()
        .expect("fault plan installed");
    assert_eq!(
        fs.delivered,
        fs.offered - fs.dropped + fs.duplicated,
        "fault stage accounts for every frame on {}: {fs:?}",
        arch.name()
    );
    let h = &world.hosts[0];
    // HostStats contains a HashMap (per-instance iteration order), so
    // render its drop counts sorted for a stable digest.
    let mut drops: Vec<String> = h
        .stats
        .drops
        .iter()
        .map(|(k, v)| format!("{k:?}={v}"))
        .collect();
    drops.sort();
    format!(
        "udp={} udpB={} drops=[{}] hw={} soft={} ctx={}|{:?}|{:?}|{:?}|{}|{}",
        h.stats.udp_delivered,
        h.stats.udp_delivered_bytes,
        drops.join(","),
        h.stats.hw_chunks,
        h.stats.soft_jobs,
        h.stats.ctx_switches,
        h.nic.stats(),
        h.packet_ledger(),
        fs,
        h.sched.total_charged(),
        metrics.borrow().received
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn chaos_soak(
        seed in any::<u32>(),
        pps in 2_000.0f64..8_000.0,
        bursty in any::<bool>(),
        loss in 0.0f64..0.3,
        corrupt_p in 0.0f64..0.05,
        duplicate_p in 0.0f64..0.05,
        reorder_p in 0.0f64..0.12,
        reorder_delay_us in 50u64..800,
        pause_on in any::<bool>(),
        pause_start_ms in 200u64..500,
        pause_dur_ms in 50u64..250,
        stall_on in any::<bool>(),
        stall_start_ms in 100u64..600,
        stall_dur_ms in 20u64..150,
        coalesce_us in 0u64..250,
    ) {
        let sched = Schedule {
            seed: seed as u64,
            pps,
            bursty,
            loss,
            corrupt_p,
            duplicate_p,
            reorder_p,
            reorder_delay_us,
            pause: pause_on.then_some((pause_start_ms, pause_dur_ms)),
            nic_stall: stall_on.then_some((stall_start_ms, stall_dur_ms)),
            coalesce_us,
        };
        for arch in [
            Architecture::Bsd,
            Architecture::EarlyDemux,
            Architecture::SoftLrp,
            Architecture::NiLrp,
        ] {
            let first = run_digest(arch, &sched);
            let second = run_digest(arch, &sched);
            prop_assert_eq!(
                &first,
                &second,
                "same seed must be bit-identical on {}",
                arch.name()
            );
        }
    }
}

/// One randomly drawn end-host crash schedule for the resilient-RPC
/// world: crash the server (optionally restarting it with jitter), and
/// optionally kill the client outright partway through.
#[derive(Clone, Debug)]
struct CrashSchedule {
    seed: u64,
    server_crash_ms: u64,
    restart: Option<(u64, u64)>,
    kill_client_ms: Option<u64>,
}

/// Looks a process up by name on a host (panics if absent).
fn pid_by_name(host: &lrp::core::Host, name: &str) -> Pid {
    host.sched
        .procs()
        .iter()
        .find(|p| p.name == name)
        .map(|p| p.pid)
        .unwrap_or_else(|| panic!("no process named {name}"))
}

/// Runs the crash-recovery world under `sched` on `arch`; asserts
/// conservation (the `owner_dead` and backlog buckets included — the
/// ledger's `disposed()` sums them) and that crash/restart logs match the
/// schedule; returns a digest of the final state.
fn run_crash_digest(arch: Architecture, sched: &CrashSchedule) -> String {
    let (mut world, cstats, sstats) = crash_recovery::build_recovery(arch);
    let server_pid = pid_by_name(&world.hosts[1], "rpc-server");
    let mut crashes = vec![match sched.restart {
        Some((after_ms, jitter_ms)) => CrashEvent {
            kind: lrp::core::FaultKind::Process,
            pid: server_pid,
            at: SimTime::from_millis(sched.server_crash_ms),
            restart_after: Some(SimDuration::from_millis(after_ms)),
            restart_jitter: SimDuration::from_millis(jitter_ms),
        },
        None => CrashEvent::kill(server_pid, SimTime::from_millis(sched.server_crash_ms)),
    }];
    // A second crash addressed to the *original* pid must follow the
    // reincarnation chain to the live incarnation.
    if sched.restart.is_some() {
        crashes.push(CrashEvent::crash_restart(
            server_pid,
            SimTime::from_millis(sched.server_crash_ms + 400),
            SimDuration::from_millis(50),
        ));
    }
    world.hosts[1].set_fault_plan(&HostFaultPlan {
        seed: sched.seed,
        crashes,
    });
    if let Some(kill_ms) = sched.kill_client_ms {
        let client_pid = pid_by_name(&world.hosts[0], "resilient-client");
        world.hosts[0].set_fault_plan(&HostFaultPlan {
            seed: sched.seed ^ 1,
            crashes: vec![CrashEvent::kill(client_pid, SimTime::from_millis(kill_ms))],
        });
    }
    world.run_until(SimTime::from_secs(1));

    let errs = lrp::telemetry::conservation_errors(&world);
    assert!(
        errs.is_empty(),
        "conservation violated on {} under {sched:?}:\n{}",
        arch.name(),
        errs.join("\n")
    );
    let server = &world.hosts[1];
    assert_eq!(
        server.crashes().len(),
        if sched.restart.is_some() { 2 } else { 1 },
        "every scheduled server crash executes on {}",
        arch.name()
    );
    assert_eq!(
        server.restarts().len(),
        server.crashes().len() - usize::from(sched.restart.is_none()),
        "every crash with a restart half respawns on {}",
        arch.name()
    );
    let c = cstats.borrow();
    let s = sstats.borrow();
    format!(
        "crashes={:?} restarts={:?} ledger={:?} client=[ok={} retries={} timeouts={} giveups={}] server=[served={} shed={}]",
        server.crashes(),
        server.restarts(),
        server.packet_ledger(),
        c.completions.len(),
        c.retries,
        c.timeouts,
        c.giveups,
        s.served,
        s.shed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn crash_chaos(
        seed in any::<u32>(),
        server_crash_ms in 100u64..400,
        restart_on in any::<bool>(),
        restart_after_ms in 50u64..250,
        jitter_ms in 0u64..80,
        kill_client in any::<bool>(),
        kill_client_ms in 300u64..700,
    ) {
        let sched = CrashSchedule {
            seed: seed as u64,
            server_crash_ms,
            restart: restart_on.then_some((restart_after_ms, jitter_ms)),
            kill_client_ms: kill_client.then_some(kill_client_ms),
        };
        for arch in [
            Architecture::Bsd,
            Architecture::EarlyDemux,
            Architecture::SoftLrp,
            Architecture::NiLrp,
        ] {
            let first = run_crash_digest(arch, &sched);
            let second = run_crash_digest(arch, &sched);
            prop_assert_eq!(
                &first,
                &second,
                "same crash schedule must be bit-identical on {}",
                arch.name()
            );
        }
    }
}

/// An inert [`HostFaultPlan`] must be byte-identical to no plan at all:
/// `set_fault_plan` detaches on the empty plan and draws no randomness.
#[test]
fn inert_host_fault_plan_matches_no_plan() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let digest = |attach_inert: bool| {
            let (mut world, cstats, _sstats) = crash_recovery::build_recovery(arch);
            // Replace the builder's crash plan. The inert plan detaches
            // entirely; the alternative stays attached but schedules its
            // only crash far past the run window (zero jitter) — an
            // armed-but-unfired plan must perturb nothing either.
            if attach_inert {
                world.hosts[1].set_fault_plan(&HostFaultPlan::none());
            } else {
                let pid = pid_by_name(&world.hosts[1], "rpc-server");
                world.hosts[1].set_fault_plan(&HostFaultPlan {
                    seed: 99,
                    crashes: vec![CrashEvent::kill(pid, SimTime::from_secs(100))],
                });
            }
            world.run_until(SimTime::from_millis(600));
            assert!(world.hosts[1].crashes().is_empty());
            format!(
                "{:?}|{:?}|{}",
                world.hosts[1].stats,
                world.hosts[1].packet_ledger(),
                cstats.borrow().completions.len()
            )
        };
        assert_eq!(
            digest(true),
            digest(false),
            "inert host fault plan must not perturb {}",
            arch.name()
        );
    }
}

// ---- client-side SYN_SENT crash coverage ----

/// What a [`ConnectProbe`] observed, recorded for the test to inspect
/// after the world ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct ProbeLog {
    /// Outcome of the `connect` syscall.
    connect: Option<Result<(), Errno>>,
    /// Outcome of the blocking `recv` issued after a successful connect.
    io: Option<Result<usize, Errno>>,
}

/// Minimal TCP client: sleeps 5 ms, connects, records the connect
/// errno; on success blocks in `recv` and records that errno too. Lets
/// the tests pin exactly which error the kernel surfaces when the peer
/// never answers or dies.
struct ConnectProbe {
    dst: Endpoint,
    log: Shared<ProbeLog>,
    sock: Option<SockId>,
}

impl ConnectProbe {
    fn new(dst: Endpoint, log: Shared<ProbeLog>) -> Self {
        ConnectProbe {
            dst,
            log,
            sock: None,
        }
    }
}

impl AppLogic for ConnectProbe {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Sleep(SimDuration::from_millis(5))
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            // Sleep finished: create the socket.
            SyscallRet::Ok if self.sock.is_none() => SyscallOp::Socket(SockProto::Tcp),
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Connect {
                    sock: s,
                    dst: self.dst,
                }
            }
            // Connect succeeded: block waiting for data that never comes.
            SyscallRet::Ok => {
                self.log.borrow_mut().connect = Some(Ok(()));
                SyscallOp::Recv {
                    sock: self.sock.expect("connected socket"),
                    max_len: 4096,
                }
            }
            SyscallRet::Data(d) => {
                self.log.borrow_mut().io = Some(Ok(d.len()));
                SyscallOp::Exit
            }
            SyscallRet::Err(e) => {
                let mut log = self.log.borrow_mut();
                if log.connect.is_none() {
                    log.connect = Some(Err(e));
                } else {
                    log.io = Some(Err(e));
                }
                SyscallOp::Exit
            }
            _ => SyscallOp::Exit,
        }
    }
}

/// TCP port the probe worlds use.
const PROBE_PORT: u16 = 6400;

/// Two-host world: a [`ConnectProbe`] on A dialing B. `listen` spawns a
/// bulk receiver on B; without it the SYN hits a listener-less host.
/// `max_retries` shortens the retransmission death spiral for the tests.
fn probe_world(arch: Architecture, listen: bool, max_retries: u32) -> (World, Shared<ProbeLog>) {
    let mut world = World::with_defaults();
    let log = shared::<ProbeLog>();
    let mut cfg = host_config(arch);
    cfg.tcp.max_retries = max_retries;
    let mut a = Host::new(cfg, HOST_A);
    a.spawn_app(
        "probe",
        0,
        0,
        Box::new(ConnectProbe::new(
            Endpoint::new(HOST_B, PROBE_PORT),
            log.clone(),
        )),
    );
    let mut b = Host::new(cfg, HOST_B);
    if listen {
        b.spawn_app(
            "tcp-sink",
            0,
            0,
            Box::new(TcpBulkReceiver::new(PROBE_PORT, shared::<TcpBulkMetrics>())),
        );
    }
    world.add_host(a);
    world.add_host(b);
    (world, log)
}

/// A SYN into a host with no listener is silently dropped (no RST — the
/// kernel only charges the lookup cost), so the client retransmits from
/// SYN_SENT until retries are exhausted and `connect` must surface
/// `Err(TimedOut)`. Conservation holds on both hosts throughout.
#[test]
fn connect_to_listenerless_host_times_out() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (mut world, log) = probe_world(arch, false, 2);
        world.run_until(SimTime::from_secs(20));
        assert_eq!(
            log.borrow().connect,
            Some(Err(Errno::TimedOut)),
            "SYN blackhole must surface TimedOut from connect on {}",
            arch.name()
        );
        // Where the SYN dies depends on the architecture: protocol-time
        // socket lookup on BSD, host demux on Early-Demux/SOFT-LRP, or
        // on-NIC demux (an early discard) on NI-LRP. Either way it is a
        // counted drop, never an RST.
        let b = &world.hosts[1];
        assert!(
            b.stats.dropped(DropPoint::NoSocket)
                + b.stats.dropped(DropPoint::Channel)
                + b.nic.stats().early_discards
                > 0,
            "the listener-less host drops the SYN at lookup or demux on {}",
            arch.name()
        );
        let errs = lrp::telemetry::conservation_errors(&world);
        assert!(
            errs.is_empty(),
            "conservation violated on {}:\n{}",
            arch.name(),
            errs.join("\n")
        );
    }
}

/// Mid-handshake introspection: freeze the listener-less probe while the
/// client's SYN is still unanswered and the `SockStats` surface must
/// report the half-open socket — TCP, `SYN_SENT`, the dialed remote —
/// then crash the client out of that state and keep conserving.
#[test]
fn netstat_reports_syn_sent_before_client_crash() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (mut world, log) = probe_world(arch, false, 12);
        let probe = pid_by_name(&world.hosts[0], "probe");
        world.hosts[0].set_fault_plan(&HostFaultPlan {
            seed: 3,
            crashes: vec![CrashEvent::kill(probe, SimTime::from_millis(40))],
        });
        // Connect fires at 5 ms; by 10 ms the SYN is in the blackhole and
        // the socket sits half-open in SYN_SENT.
        world.run_until(SimTime::from_millis(10));
        let netstat = world.hosts[0].host_netstat();
        let half_open = netstat
            .iter()
            .find(|s| s.proto == SockProto::Tcp)
            .unwrap_or_else(|| panic!("no TCP socket in netstat on {}", arch.name()));
        let tcp = half_open
            .tcp
            .as_ref()
            .unwrap_or_else(|| panic!("no TCP detail on {}", arch.name()));
        assert_eq!(
            tcp.state.name(),
            "SYN_SENT",
            "unanswered connect must sit half-open on {}",
            arch.name()
        );
        assert_eq!(
            half_open.remote,
            Some(Endpoint::new(HOST_B, PROBE_PORT)),
            "the half-open socket remembers whom it dialed on {}",
            arch.name()
        );
        assert_eq!(half_open.recv_q, 0);
        // The crash at 40 ms lands mid-SYN_SENT: connect never returns,
        // the world survives, conservation holds on both hosts.
        world.run_until(SimTime::from_secs(5));
        assert_eq!(world.hosts[0].crashes().len(), 1);
        assert_eq!(
            *log.borrow(),
            ProbeLog::default(),
            "a process crashed in SYN_SENT never observes its connect on {}",
            arch.name()
        );
        assert!(
            world.hosts[0].host_netstat().is_empty(),
            "the crashed client's socket must be reaped on {}",
            arch.name()
        );
        let errs = lrp::telemetry::conservation_errors(&world);
        assert!(
            errs.is_empty(),
            "conservation violated on {}:\n{}",
            arch.name(),
            errs.join("\n")
        );
    }
}

/// Killing the server after the handshake aborts its sockets with an RST
/// per RFC 793; the client blocked in `recv` must be woken with
/// `Err(ConnReset)`. Conservation holds with the `owner_dead` bucket
/// absorbing the dead process's queued frames.
#[test]
fn server_crash_surfaces_conn_reset() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (mut world, log) = probe_world(arch, true, 12);
        let sink = pid_by_name(&world.hosts[1], "tcp-sink");
        world.hosts[1].set_fault_plan(&HostFaultPlan {
            seed: 7,
            crashes: vec![CrashEvent::kill(sink, SimTime::from_millis(50))],
        });
        world.run_until(SimTime::from_secs(5));
        let l = *log.borrow();
        assert_eq!(
            l.connect,
            Some(Ok(())),
            "handshake completes before the crash on {}",
            arch.name()
        );
        assert_eq!(
            l.io,
            Some(Err(Errno::ConnReset)),
            "the crash RST must surface ConnReset from the blocked recv on {}",
            arch.name()
        );
        assert_eq!(world.hosts[1].crashes().len(), 1);
        let errs = lrp::telemetry::conservation_errors(&world);
        assert!(
            errs.is_empty(),
            "conservation violated on {}:\n{}",
            arch.name(),
            errs.join("\n")
        );
    }
}

/// Runs the bulk-transfer world with the *client* killed at `kill_us`
/// microseconds — bracketing its connect at 5 ms, so the crash lands
/// before the socket exists, mid-SYN_SENT, or just after establishment —
/// and returns a digest of the final state. Panics and conservation are
/// checked inside.
fn run_connect_crash_digest(arch: Architecture, kill_us: u64, seed: u64) -> String {
    let (mut world, metrics) = fault_sweep::build(arch, FaultPlan::none(), 128 * 1024);
    let src = pid_by_name(&world.hosts[0], "tcp-src");
    world.hosts[0].set_fault_plan(&HostFaultPlan {
        seed,
        crashes: vec![CrashEvent::kill(src, SimTime::from_micros(kill_us))],
    });
    world.run_until(SimTime::from_secs(2));
    let errs = lrp::telemetry::conservation_errors(&world);
    assert!(
        errs.is_empty(),
        "conservation violated on {} with client killed at {kill_us} us:\n{}",
        arch.name(),
        errs.join("\n")
    );
    assert_eq!(
        world.hosts[0].crashes().len(),
        1,
        "the scheduled client crash executes on {}",
        arch.name()
    );
    let m = metrics.borrow();
    format!(
        "{:?}|{:?}|bytes={} done={} aborted={}",
        world.hosts[0].packet_ledger(),
        world.hosts[1].packet_ledger(),
        m.bytes,
        m.done,
        m.aborted
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash the client while its connect is in (or about to be in)
    /// flight: no panic, ledgers conserved (`owner_dead` absorbing
    /// whatever the dead process had queued), and the same kill time is
    /// bit-identical on every architecture.
    fn syn_sent_crash_chaos(
        kill_us in 3_000u64..9_000,
        seed in any::<u32>(),
    ) {
        for arch in [
            Architecture::Bsd,
            Architecture::EarlyDemux,
            Architecture::SoftLrp,
            Architecture::NiLrp,
        ] {
            let first = run_connect_crash_digest(arch, kill_us, seed as u64);
            let second = run_connect_crash_digest(arch, kill_us, seed as u64);
            prop_assert_eq!(
                &first,
                &second,
                "same client-crash schedule must be bit-identical on {}",
                arch.name()
            );
        }
    }
}

// ---- whole-host reboot coverage ----

/// Runs the adversarial SYN-flood world (stateless cookies engaged) with
/// the victim power-cycled mid-flood; asserts no panic, conservation
/// with the `reboot_flushed` bucket folded in, and that exactly the
/// scheduled reboot executed. Returns a digest of the final state.
fn run_reboot_flood_digest(
    arch: Architecture,
    syn_pps: f64,
    reboot_ms: u64,
    boot_delay_ms: u64,
) -> String {
    use lrp::experiments::syn_flood::{self, Defense};
    let (mut world, metrics) = syn_flood::build(
        syn_flood::config(arch, Defense::Cookies),
        syn_pps,
        Some((
            SimTime::from_millis(reboot_ms),
            SimDuration::from_millis(boot_delay_ms),
        )),
    );
    world.run_until(SimTime::from_millis(1_200));

    let errs = lrp::telemetry::conservation_errors(&world);
    assert!(
        errs.is_empty(),
        "conservation violated on {} (reboot at {reboot_ms} ms under {syn_pps} SYN/s):\n{}",
        arch.name(),
        errs.join("\n")
    );
    let server = &world.hosts[1];
    assert_eq!(
        server.reboots(),
        &[SimTime::from_millis(reboot_ms)],
        "exactly the scheduled reboot executes on {}",
        arch.name()
    );
    assert!(
        !server.is_down(),
        "the host must be back up after the boot delay on {}",
        arch.name()
    );
    let (tx, fails): (u64, u64) = metrics
        .iter()
        .map(|m| {
            let m = m.borrow();
            (m.transactions, m.failures)
        })
        .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
    let ledger = server.packet_ledger();
    format!(
        "reboots={:?} flushed={} stalled={} ledger={:?}|{:?}|tx={} fails={}",
        server.reboots(),
        ledger.reboot_flushed,
        ledger.nic_stall_drops,
        ledger,
        world.hosts[0].packet_ledger(),
        tx,
        fails
    )
}

proptest! {
    // Four cases: each runs 8 flooded worlds (4 architectures, twice
    // for bit-identity), which is the most expensive soak in this file.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Power-cycle the flooded victim at an arbitrary point: no panic,
    /// both ledgers conserved (`reboot_flushed` and `nic_stall_drops`
    /// absorbing the teardown and the dead-NIC window), and the same
    /// schedule is bit-identical on every architecture.
    fn reboot_during_flood_chaos(
        syn_pps in 500.0f64..2_500.0,
        reboot_ms in 200u64..800,
        boot_delay_ms in 20u64..200,
    ) {
        for arch in [
            Architecture::Bsd,
            Architecture::EarlyDemux,
            Architecture::SoftLrp,
            Architecture::NiLrp,
        ] {
            let first = run_reboot_flood_digest(arch, syn_pps, reboot_ms, boot_delay_ms);
            let second = run_reboot_flood_digest(arch, syn_pps, reboot_ms, boot_delay_ms);
            prop_assert_eq!(
                &first,
                &second,
                "same reboot schedule must be bit-identical on {}",
                arch.name()
            );
        }
    }
}

/// An armed reboot plan whose event lies beyond the end of the run must
/// be byte-identical to no plan at all: arming draws no randomness and
/// the pending event perturbs neither timers nor traffic.
#[test]
fn armed_unfired_reboot_plan_matches_no_plan() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let digest = |arm: bool| {
            let (mut world, cstats, _sstats) = crash_recovery::build_recovery(arch);
            // Replace the builder's crash plan either way (mirrors
            // `inert_host_fault_plan_matches_no_plan`).
            if arm {
                world.hosts[1].set_fault_plan(&HostFaultPlan {
                    seed: 0xB007,
                    crashes: vec![CrashEvent::reboot(
                        SimTime::from_secs(100),
                        SimDuration::from_millis(80),
                    )],
                });
            } else {
                world.hosts[1].set_fault_plan(&HostFaultPlan::none());
            }
            world.run_until(SimTime::from_millis(600));
            assert!(world.hosts[1].reboots().is_empty());
            assert!(world.hosts[1].crashes().is_empty());
            format!(
                "{:?}|{:?}|{}",
                world.hosts[1].stats,
                world.hosts[1].packet_ledger(),
                cstats.borrow().completions.len()
            )
        };
        assert_eq!(
            digest(false),
            digest(true),
            "an armed-but-unfired reboot plan must not perturb {}",
            arch.name()
        );
    }
}

/// A fault-free plan through the fault stage must be byte-identical to no
/// plan at all: the inert path draws no randomness and perturbs nothing.
#[test]
fn inert_plan_matches_no_plan() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let bare = {
            let (mut world, m) = fig3::build_seeded(arch, 6_000.0, true, 11);
            world.run_until(SimTime::from_secs(1));
            format!("{:?}|{}", world.hosts[0].stats, m.borrow().received)
        };
        let inert = {
            let (mut world, m) = fig3::build_seeded(arch, 6_000.0, true, 11);
            world.set_link_faults(0, FaultPlan::none());
            world.hosts[0].nic.set_faults(NicFaultPlan::none());
            world.run_until(SimTime::from_secs(1));
            format!("{:?}|{}", world.hosts[0].stats, m.borrow().received)
        };
        assert_eq!(bare, inert, "inert faults must not perturb {}", arch.name());
    }
}
