//! Tier-1 tests for the time-resolved observability layer: the
//! simulated-cycle profiler (cross-checked against the scheduler's own
//! accounting), the CPU-charge attribution report (the paper's
//! mis-accounting claim, pinned), the metrics timeline, causal request
//! spans, and the bounded trace ring.

use std::collections::BTreeMap;

use lrp::core::{Architecture, HostConfig, DEFAULT_TRACE_CAP, TIMELINE_COLUMNS};
use lrp::experiments::{livelock_timeline as lt, table1};
use lrp::sim::{SimTime, TraceEvent, TraceRing};
use lrp::telemetry::{attribution_json, folded_stacks, span_breakdown_json, span_paths, Json};

/// The profiler is fed at the same charging choke point as the
/// scheduler's per-process accounting, so for every process the profiler's
/// per-account cycle sums must equal `CpuAccounting` exactly — under all
/// four architectures, at overload.
#[test]
fn profiler_agrees_with_scheduler_accounting() {
    for arch in lrp::experiments::all_architectures() {
        let r = lt::run_arch(arch, SimTime::from_millis(300));
        let host = &r.world.hosts[0];

        let mut per: BTreeMap<(u32, &str), u64> = BTreeMap::new();
        let mut billed_total = 0u64;
        for (k, ns) in host.telemetry().profiler().iter() {
            if let (Some(pid), Some(acct)) = (k.billed, k.account) {
                *per.entry((pid, acct)).or_default() += ns;
                billed_total += ns;
            }
        }

        for p in host.sched.procs() {
            for (acct, want) in [
                ("user", p.acct.user),
                ("system", p.acct.system),
                ("interrupt", p.acct.interrupt),
            ] {
                let got = per.get(&(p.pid.0, acct)).copied().unwrap_or(0);
                assert_eq!(
                    got,
                    want.as_nanos(),
                    "{arch:?}: pid {} ({}) {acct} cycles diverge from scheduler accounting",
                    p.pid.0,
                    p.name
                );
            }
        }
        // And nothing was billed to a pid the scheduler doesn't know.
        let t = host.sched.account_totals();
        assert_eq!(
            billed_total,
            t.user.as_nanos() + t.system.as_nanos() + t.interrupt.as_nanos(),
            "{arch:?}: profiler billed cycles outside the process table"
        );
    }
}

/// The paper's accounting claim, pinned: under Figure-3 overload BSD
/// bills a large share of protocol cycles to a process other than the
/// datagrams' receiver, while the LRP architectures bill essentially all
/// protocol cycles to the receiver.
#[test]
fn charge_attribution_pins_the_paper_claim() {
    for arch in lrp::experiments::all_architectures() {
        let r = lt::run_arch(arch, SimTime::from_secs(1));
        let attr = attribution_json(&r.world.hosts[0]);
        let receiver = attr
            .get("receiver_fraction")
            .and_then(Json::as_f64)
            .unwrap();
        match arch {
            Architecture::Bsd => assert!(
                r.misattributed > 0.20,
                "BSD misattributed only {:.1}% of protocol cycles",
                r.misattributed * 100.0
            ),
            Architecture::SoftLrp | Architecture::NiLrp => {
                assert!(
                    r.misattributed < 0.01,
                    "{arch:?} misattributed {:.1}%",
                    r.misattributed * 100.0
                );
                assert!(
                    receiver > 0.99,
                    "{arch:?} billed only {:.1}% to the receiver",
                    receiver * 100.0
                );
            }
            Architecture::EarlyDemux => {}
        }
    }
}

/// Folded flamegraph stacks of the pinned sub-run (NI-LRP, 1 simulated
/// second, seed 7 — the CI quick run) against the checked-in golden file.
/// Regenerate with:
/// `cargo run --release -p lrp-experiments --bin livelock_timeline -- --quick`
/// and copy `results/livelock_timeline-nilrp.folded` over the golden.
#[test]
fn folded_stacks_match_golden() {
    let r = lt::run_arch(Architecture::NiLrp, SimTime::from_secs(1));
    let folded = folded_stacks(&r.world.hosts[0], "nilrp");
    let golden = include_str!("golden/livelock_timeline.folded");
    assert_eq!(
        folded, golden,
        "folded stacks diverge from tests/golden/livelock_timeline.folded"
    );
}

/// Timeline sanity: rows sampled every 10 ms with strictly increasing
/// timestamps, cumulative columns monotone, per-process CPU series
/// aligned with the rows.
#[test]
fn timeline_samples_are_periodic_and_monotone() {
    let r = lt::run_arch(Architecture::NiLrp, SimTime::from_millis(500));
    let tele = r.world.hosts[0].telemetry();
    let tl = tele.timeline();
    assert_eq!(tl.columns(), TIMELINE_COLUMNS);
    let rows = tl.rows();
    assert!(rows.len() >= 40, "only {} samples in 500 ms", rows.len());
    assert_eq!(tl.dropped(), 0);

    let col = |name: &str| tl.columns().iter().position(|c| *c == name).unwrap();
    let cumulative = [
        col("delivered_udp"),
        col("host_dropped"),
        col("nic_ring_drops"),
        col("charged_ns"),
    ];
    for w in rows.windows(2) {
        assert!(w[0].t_ns < w[1].t_ns, "timestamps not increasing");
        for &c in &cumulative {
            assert!(
                w[0].values[c] <= w[1].values[c],
                "cumulative column {} decreased",
                tl.columns()[c]
            );
        }
    }
    // The blast delivered something and the samples saw it.
    let last = rows.last().unwrap();
    assert!(last.values[col("delivered_udp")] > 0);
    assert_eq!(tele.timeline_proc_cpu().len(), rows.len());
}

/// Ring-buffer contract at capacity: overflow drops the oldest events,
/// the drop counter is exact, memory stays bounded.
#[test]
fn trace_ring_overflow_drops_oldest() {
    let mut ring = TraceRing::new(4);
    for i in 0..10u64 {
        ring.record(TraceEvent {
            t_ns: i,
            kind: "rx-dma",
            stage: "test",
            id: i,
            cpu: 0,
            dur_ns: 0,
        });
    }
    assert_eq!(ring.len(), 4);
    assert_eq!(ring.recorded(), 10);
    assert_eq!(ring.overwritten(), 6);
    let ts: Vec<u64> = ring.iter().map(|e| e.t_ns).collect();
    assert_eq!(ts, vec![6, 7, 8, 9], "oldest events must go first");
}

/// Under a fig3-scale overload the host's trace ring wraps: it must stay
/// at its configured capacity with the loss accounted for, and the
/// retained window must be the most recent events.
#[test]
fn trace_ring_is_bounded_under_overload() {
    let r = lt::run_arch(Architecture::Bsd, SimTime::from_secs(1));
    let ring = &r.world.hosts[0].telemetry().trace;
    assert!(
        ring.recorded() > DEFAULT_TRACE_CAP as u64,
        "overload run recorded only {} events — not enough to wrap",
        ring.recorded()
    );
    assert_eq!(ring.len(), DEFAULT_TRACE_CAP);
    assert_eq!(ring.overwritten(), ring.recorded() - ring.len() as u64);
    // The retained window is the tail of the run, not the head.
    let first_kept = ring.iter().next().unwrap().t_ns;
    assert!(first_kept > 0, "ring still holds the very first event");
}

/// Causal request spans over the RTT workload: every ping-pong round is
/// one span from the client's send through the server back to the
/// client's receive, and the critical-path breakdown covers the pipeline
/// legs.
#[test]
fn rtt_spans_are_complete_per_round() {
    const ROUNDS: u64 = 20;
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.telemetry = true;
    let (mut world, metrics) = table1::build_rtt(cfg, ROUNDS);
    world.run_until(SimTime::from_millis(10 * ROUNDS + 1_000));
    assert!(metrics.borrow().done, "ping-pong did not finish");

    let paths = span_paths(&world);
    assert_eq!(paths.len(), ROUNDS as usize, "one span per round");
    for p in &paths {
        assert_eq!(p.events.first().unwrap().0, "tx", "span starts at send");
        for stage in ["rx", "deliver", "recv"] {
            assert!(
                p.events.iter().any(|&(s, _)| s == stage),
                "span {:#x} missing stage {stage}: {:?}",
                p.span,
                p.events
            );
        }
        // Request and reply both traversed the wire.
        assert!(p.events.iter().filter(|&&(s, _)| s == "rx").count() >= 2);
        assert!(p.total_ns() > 0);
    }

    let b = span_breakdown_json(&world, "recv");
    assert_eq!(b.get("spans").and_then(Json::as_u64), Some(ROUNDS));
    assert_eq!(b.get("complete").and_then(Json::as_u64), Some(ROUNDS));
    assert_eq!(b.get("events_dropped").and_then(Json::as_u64), Some(0));
    let legs = b.get("legs").unwrap();
    for leg in ["tx->rx", "deliver->recv"] {
        let count = legs
            .get(leg)
            .and_then(|l| l.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(count > 0, "breakdown missing leg {leg}");
    }
    let mean = b
        .get("end_to_end")
        .and_then(|e| e.get("mean_ns"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        (100_000.0..10_000_000.0).contains(&mean),
        "implausible per-request latency: {mean} ns"
    );
}
