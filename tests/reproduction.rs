//! Reproduction shape tests: small-scale versions of the paper's
//! experiments with assertions on *who wins and by roughly how much* —
//! the invariants that make this a reproduction rather than a demo.
//!
//! Durations are kept short so the suite stays fast; the full sweeps live
//! in the `lrp-experiments` binaries.

use lrp::core::Architecture;
use lrp::experiments::{fig3, fig5, mlfrr, table1};
use lrp::sim::SimTime;

const SECS2: SimTime = SimTime::from_secs(2);

#[test]
fn fig3_overload_ordering() {
    // At 16k pkts/s offered — past every system's saturation — the paper's
    // ordering must hold: NI-LRP > SOFT-LRP > Early-Demux ≈> BSD.
    let bsd = fig3::measure(Architecture::Bsd, 16_000.0, SECS2).delivered;
    let ed = fig3::measure(Architecture::EarlyDemux, 16_000.0, SECS2).delivered;
    let soft = fig3::measure(Architecture::SoftLrp, 16_000.0, SECS2).delivered;
    let ni = fig3::measure(Architecture::NiLrp, 16_000.0, SECS2).delivered;
    assert!(ni > soft, "NI-LRP ({ni}) must beat SOFT-LRP ({soft})");
    assert!(soft > ed, "SOFT-LRP ({soft}) must beat Early-Demux ({ed})");
    assert!(
        ed > bsd,
        "Early-Demux ({ed}) must beat BSD ({bsd}) in deep overload"
    );
    assert!(
        bsd < 0.3 * ni,
        "BSD ({bsd}) must have collapsed relative to NI-LRP ({ni})"
    );
}

#[test]
fn fig3_bsd_livelocks() {
    // The paper: BSD approaches livelock near 20k pkts/s.
    let p = fig3::measure(Architecture::Bsd, 22_000.0, SECS2);
    assert!(
        p.delivered < 500.0,
        "BSD at 22k pkts/s should be (nearly) livelocked, got {}",
        p.delivered
    );
}

#[test]
fn fig3_ni_lrp_flat_under_overload() {
    // NI-LRP's throughput stays at its maximum as offered load grows.
    let at12k = fig3::measure(Architecture::NiLrp, 12_000.0, SECS2).delivered;
    let at20k = fig3::measure(Architecture::NiLrp, 20_000.0, SECS2).delivered;
    let ratio = at20k / at12k;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "NI-LRP must be flat: 12k->{at12k}, 20k->{at20k}"
    );
    // And the plateau lands near the paper's 11 163 pkts/s.
    assert!(
        (9_500.0..=12_500.0).contains(&at20k),
        "NI-LRP plateau {at20k} out of calibration"
    );
}

#[test]
fn fig3_bsd_peak_calibated() {
    // The paper's BSD peak is ~7 400 pkts/s.
    let peak = fig3::measure(Architecture::Bsd, 7_000.0, SECS2).delivered;
    assert!(
        (6_300.0..=8_100.0).contains(&peak),
        "BSD near-peak throughput {peak} out of calibration"
    );
}

#[test]
fn fig3_soft_lrp_declines_gently() {
    // SOFT-LRP declines with demux overhead but far outlives BSD.
    let peak = fig3::measure(Architecture::SoftLrp, 9_000.0, SECS2).delivered;
    let deep = fig3::measure(Architecture::SoftLrp, 22_000.0, SECS2).delivered;
    assert!(
        deep > 0.5 * peak,
        "SOFT-LRP at 22k ({deep}) vs peak ({peak})"
    );
    assert!(deep < peak, "soft demux cost must show up as a decline");
}

#[test]
fn fig5_syn_flood_separation() {
    // At 12k SYN/s the BSD HTTP server is (nearly) livelocked; SOFT-LRP
    // keeps serving.
    let d = SimTime::from_secs(3);
    let bsd = fig5::measure(Architecture::Bsd, 12_000.0, d).http_tps;
    let lrp = fig5::measure(Architecture::SoftLrp, 12_000.0, d).http_tps;
    assert!(
        lrp > 5.0 * bsd.max(1.0),
        "SOFT-LRP ({lrp}) must dwarf BSD ({bsd}) under SYN flood"
    );
    assert!(lrp > 200.0, "SOFT-LRP must still serve real traffic: {lrp}");
}

#[test]
fn mlfrr_ordering_spot_checks() {
    // Spot checks in place of the full binary search: BSD loses packets at
    // 8k Poisson; SOFT-LRP does not; NI-LRP survives 9.5k.
    let d = SimTime::from_secs(2);
    assert!(
        !mlfrr::loss_free(Architecture::Bsd, 8_000.0, d),
        "BSD should drop at 8k Poisson"
    );
    assert!(
        mlfrr::loss_free(Architecture::SoftLrp, 7_800.0, d),
        "SOFT-LRP should be loss-free at 7.8k"
    );
    assert!(
        mlfrr::loss_free(Architecture::NiLrp, 9_500.0, d),
        "NI-LRP should be loss-free at 9.5k"
    );
}

#[test]
fn table1_low_load_parity() {
    // The paper's point: LRP costs nothing at low load. RTTs within 20%.
    let bsd = table1::measure_rtt(lrp::core::HostConfig::new(Architecture::Bsd), 300);
    let soft = table1::measure_rtt(lrp::core::HostConfig::new(Architecture::SoftLrp), 300);
    let ni = table1::measure_rtt(lrp::core::HostConfig::new(Architecture::NiLrp), 300);
    for (name, v) in [("SOFT-LRP", soft), ("NI-LRP", ni)] {
        let ratio = v / bsd;
        assert!(
            (0.7..=1.2).contains(&ratio),
            "{name} RTT {v:.0}us vs BSD {bsd:.0}us: outside parity band"
        );
    }
}

#[test]
fn table1_udp_bandwidth_ordering() {
    // UDP goodput: NI-LRP >= SOFT-LRP >= BSD > SunOS+Fore (paper: 92/86/82/64).
    let bsd = table1::measure_udp_mbps(lrp::core::HostConfig::new(Architecture::Bsd), 200);
    let soft = table1::measure_udp_mbps(lrp::core::HostConfig::new(Architecture::SoftLrp), 200);
    let ni = table1::measure_udp_mbps(lrp::core::HostConfig::new(Architecture::NiLrp), 200);
    let sunos = table1::measure_udp_mbps(lrp::core::HostConfig::sunos_fore(), 200);
    assert!(
        ni >= soft && soft >= bsd,
        "ordering: ni={ni:.0} soft={soft:.0} bsd={bsd:.0}"
    );
    assert!(
        sunos < bsd,
        "the Fore-driver baseline must be slowest: {sunos:.0}"
    );
    assert!(
        (70.0..=110.0).contains(&bsd),
        "BSD UDP goodput {bsd:.0} Mb/s out of range"
    );
}

#[test]
fn fig5_console_dead_vs_responsive() {
    // The paper's informal result: at 10k SYN/s the BSD server console
    // appears dead; the LRP console stays responsive.
    let d = SimTime::from_secs(3);
    let (_, bsd_served) = fig5::measure_console_lag(Architecture::Bsd, 10_000.0, d);
    let (lrp_lag, lrp_served) = fig5::measure_console_lag(Architecture::SoftLrp, 10_000.0, d);
    assert!(
        bsd_served < 30,
        "BSD console must be dead: served {bsd_served}"
    );
    assert!(
        lrp_served > 200,
        "LRP console must be responsive: served {lrp_served}"
    );
    assert!(lrp_lag < 10_000.0, "LRP console lag small: {lrp_lag}us");
}
