//! CPU fairness under network load (the paper's Table 2, condensed): a
//! compute-heavy worker shares a server with two chatty RPC servers.
//! Under BSD, the interrupt time of the RPC traffic is charged to
//! whichever process happens to run — slowing the worker; under LRP it is
//! charged to the processes that receive the traffic.
//!
//! Run with: `cargo run --release --example rpc_fairness`

use lrp::core::Architecture;
use lrp::experiments::table2::{self, Variant};

fn main() {
    println!("Worker: a single RPC needing 11.5 s of CPU (fair share: 33%).");
    println!("Two RPC servers on the same machine are driven at capacity.\n");
    println!("system   | worker elapsed | worker CPU share | RPC/s (both servers)");
    println!("---------+----------------+------------------+---------------------");
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let row = table2::measure(arch, Variant::Fast);
        println!(
            "{:8} | {:>13.1}s | {:>15.0}% | {:>8.0}",
            row.system,
            row.worker_elapsed_s,
            row.worker_share * 100.0,
            row.rpc_rate
        );
    }
    println!();
    println!("The worker's completion time stretches under 4.4BSD although it");
    println!("never touches the network: it pays, in scheduler priority, for");
    println!("interrupt processing that belongs to its neighbours.");
}
