//! Receiver livelock in three acts: blast a server at increasing rates
//! under 4.4BSD and under NI-LRP, and watch one collapse while the other
//! saturates flat (the paper's Figure 3, condensed).
//!
//! Run with: `cargo run --release --example udp_livelock`

use lrp::core::Architecture;
use lrp::experiments::fig3;
use lrp::sim::SimTime;

fn main() {
    println!("offered pkts/s |   4.4BSD |   NI-LRP   (delivered pkts/s)");
    println!("---------------+----------+---------");
    for rate in [4_000.0, 8_000.0, 12_000.0, 16_000.0, 20_000.0, 24_000.0] {
        let bsd = fig3::measure(Architecture::Bsd, rate, SimTime::from_secs(2));
        let ni = fig3::measure(Architecture::NiLrp, rate, SimTime::from_secs(2));
        println!(
            "{:>14} | {:>8.0} | {:>8.0}{}",
            rate,
            bsd.delivered,
            ni.delivered,
            if bsd.delivered < rate * 0.2 && rate > 10_000.0 {
                "   <- BSD livelocked; NI-LRP discards early on the NIC"
            } else {
                ""
            }
        );
    }
    println!();
    println!("4.4BSD spends the whole CPU on interrupts and softirq protocol");
    println!("processing for packets it then drops at the socket queue; NI-LRP");
    println!("drops excess packets on the network interface before the host");
    println!("spends a single cycle on them.");
}
