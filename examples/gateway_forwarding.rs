//! An LRP gateway (the paper's §3.5): traffic to a host "behind" the
//! gateway is forwarded by the IP forwarding daemon, whose scheduling
//! priority bounds the CPU that transit traffic may consume — while the
//! capture tap shows the packets in flight.
//!
//! Run with: `cargo run --release --example gateway_forwarding`

use lrp::apps::{shared, BlastSink, MeteredCompute, SinkMetrics};
use lrp::core::{Architecture, Host, HostConfig, World};
use lrp::net::{Injector, Pattern};
use lrp::sim::SimTime;
use lrp::wire::{udp, Frame, Ipv4Addr};

const GATEWAY: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const BEHIND: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
const SOURCE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

fn run(nice: i8) -> (f64, f64) {
    let mut world = World::with_defaults();
    let mut gw = Host::new(HostConfig::new(Architecture::SoftLrp), GATEWAY);
    gw.enable_forwarding(nice);
    let slices = shared::<u64>();
    gw.spawn_app(
        "local-job",
        0,
        0,
        Box::new(MeteredCompute::new(slices.clone())),
    );

    let sink = shared::<SinkMetrics>();
    let mut behind = Host::new(HostConfig::new(Architecture::SoftLrp), BEHIND);
    behind.spawn_app("sink", 0, 0, Box::new(BlastSink::new(7000, sink.clone())));

    let g = world.add_host(gw);
    world.add_host(behind);
    world.add_route_via(BEHIND, g);
    let inj = Injector::new(
        Pattern::FixedRate { pps: 10_000.0 },
        SimTime::from_millis(20),
        42,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                SOURCE,
                BEHIND,
                6000,
                7000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    world.add_injector(g, inj);
    let duration = SimTime::from_secs(2);
    world.run_until(duration);
    let forwarded = sink.borrow().series.steady_rate(5);
    let local = *slices.borrow() as f64 / duration.as_secs_f64() / 10.0; // % of a CPU
    (forwarded, local)
}

fn main() {
    // First, a short capture of what transit traffic looks like.
    let mut world = World::with_defaults();
    world.enable_capture(5);
    let mut gw = Host::new(HostConfig::new(Architecture::SoftLrp), GATEWAY);
    gw.enable_forwarding(0);
    let sink = shared::<SinkMetrics>();
    let mut behind = Host::new(HostConfig::new(Architecture::SoftLrp), BEHIND);
    behind.spawn_app("sink", 0, 0, Box::new(BlastSink::new(7000, sink.clone())));
    let g = world.add_host(gw);
    world.add_host(behind);
    world.add_route_via(BEHIND, g);
    let mut inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(5),
        1,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                SOURCE,
                BEHIND,
                6000,
                7000,
                (seq & 0xFFFF) as u16,
                b"transit payload",
                false,
            ))
        },
    );
    inj.until = SimTime::from_millis(8);
    world.add_injector(g, inj);
    world.run_until(SimTime::from_millis(50));
    println!("capture tap (host 0 = gateway, host 1 = destination):");
    for (t, h, s) in world.capture() {
        println!("  [{t:>12}] host{h}  {s}");
    }

    // Then the resource-control result: the daemon's niceness is the knob.
    println!("\n10k pkts/s of transit traffic through a SOFT-LRP gateway that");
    println!("also runs a local compute job:\n");
    println!("ipfwd nice | forwarded pkts/s | local job CPU share");
    println!("-----------+------------------+--------------------");
    for nice in [-10i8, 0, 20] {
        let (fwd, local) = run(nice);
        println!("{nice:>10} | {fwd:>16.0} | {local:>17.0}%");
    }
    println!();
    println!("Renicing the forwarding daemon is the paper's §3.5 point: transit");
    println!("traffic becomes a schedulable activity like any other, instead of");
    println!("stolen interrupt time.");
}
