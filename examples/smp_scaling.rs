//! Quickstart for the SMP host model: the same overloaded UDP blast
//! served by one CPU and by four, under 4.4BSD and NI-LRP.
//!
//! Run with: `cargo run --release --example smp_scaling`
//!
//! One CPU of 4.4BSD livelocks — all cycles go to interrupts and eager
//! protocol work for packets that are later discarded. Four CPUs with
//! RSS-steered receive queues buy BSD headroom but not stability, while
//! NI-LRP scales its delivered throughput with the added CPUs and stays
//! flat past saturation.

use lrp::core::Architecture;
use lrp::experiments::smp_scaling;
use lrp::sim::SimTime;

fn main() {
    let duration = SimTime::from_secs(1);
    let offered = 30_000.0;
    println!(
        "UDP blast at {offered:.0} pkts/s over {} flows, 1 s:\n",
        smp_scaling::FLOWS
    );
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        for ncpus in [1, 4] {
            let p = smp_scaling::measure(arch, ncpus, offered, duration);
            let util: Vec<String> = p
                .cpu_util
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect();
            println!(
                "  {:>7} x{}: delivered {:>6.0} pkts/s, cpu util [{}], ipis {}",
                arch.name(),
                ncpus,
                p.delivered,
                util.join(" "),
                p.ipis
            );
        }
    }
    println!(
        "\nNI-LRP turns added CPUs into delivered packets; BSD turns them\n\
         into more interrupt context to waste."
    );
}
