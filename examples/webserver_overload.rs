//! A web server under SYN-flood attack (the paper's Figure 5 scenario,
//! condensed): eight HTTP clients against a server while a flood of fake
//! connection requests hits another port on the same machine.
//!
//! Run with: `cargo run --release --example webserver_overload`

use lrp::core::Architecture;
use lrp::experiments::fig5;
use lrp::sim::SimTime;

fn main() {
    let duration = SimTime::from_secs(5);
    println!("HTTP transactions/s while a SYN flood hits a dummy port:\n");
    println!("SYN flood pkts/s |  4.4BSD | SOFT-LRP");
    println!("-----------------+---------+---------");
    for rate in [0.0, 5_000.0, 10_000.0, 20_000.0] {
        let bsd = fig5::measure(Architecture::Bsd, rate, duration);
        let lrp = fig5::measure(Architecture::SoftLrp, rate, duration);
        println!(
            "{:>16} | {:>7.0} | {:>7.0}",
            rate, bsd.http_tps, lrp.http_tps
        );
    }
    println!();
    println!("Under 4.4BSD, SYN processing runs in software-interrupt context at");
    println!("a priority above every server process: a high enough SYN rate");
    println!("starves the HTTP daemons outright. Under SOFT-LRP the dummy");
    println!("socket's listen backlog fills, protocol processing for it is");
    println!("disabled, and the flood is discarded at its own NI channel for the");
    println!("cost of demultiplexing alone — HTTP traffic never shares a queue");
    println!("with it.");
}
