//! Quickstart: build two hosts, send UDP datagrams through the full
//! simulated stack under the SOFT-LRP architecture, and print what the
//! kernel saw.
//!
//! Run with: `cargo run --release --example quickstart`

use lrp::core::{
    AppCtx, AppLogic, Architecture, Host, HostConfig, SockProto, SyscallOp, SyscallRet, World,
};
use lrp::sim::SimTime;
use lrp::stack::SockId;
use lrp::wire::{Endpoint, Ipv4Addr};
use std::cell::RefCell;
use std::rc::Rc;

const SENDER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const RECEIVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const PORT: u16 = 9999;

/// An application that sends ten greetings, one per millisecond.
struct Greeter {
    sock: Option<SockId>,
    sent: u32,
}

impl AppLogic for Greeter {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: 4000,
                }
            }
            SyscallRet::Sent(_) => SyscallOp::Sleep(lrp::sim::SimDuration::from_millis(1)),
            _ => {
                if self.sent == 10 {
                    return SyscallOp::Exit;
                }
                self.sent += 1;
                SyscallOp::SendTo {
                    sock: self.sock.expect("socket"),
                    dst: Endpoint::new(RECEIVER, PORT),
                    data: format!("greeting #{}", self.sent).into_bytes(),
                }
            }
        }
    }
}

/// An application that receives and prints greetings.
struct Listener {
    sock: Option<SockId>,
    inbox: Rc<RefCell<Vec<String>>>,
}

impl AppLogic for Listener {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: PORT,
                }
            }
            SyscallRet::DataFrom(from, data) => {
                self.inbox.borrow_mut().push(format!(
                    "[{:>9}] {} from {from}",
                    format!("{}", ctx.now),
                    String::from_utf8_lossy(&data),
                ));
                SyscallOp::Recv {
                    sock: self.sock.expect("socket"),
                    max_len: 65_536,
                }
            }
            _ => SyscallOp::Recv {
                sock: self.sock.expect("socket"),
                max_len: 65_536,
            },
        }
    }
}

fn main() {
    let inbox = Rc::new(RefCell::new(Vec::new()));

    // A world is a set of hosts joined by 155 Mbit/s ATM-like links.
    let mut world = World::with_defaults();

    let mut tx_host = Host::new(HostConfig::new(Architecture::SoftLrp), SENDER);
    tx_host.spawn_app(
        "greeter",
        0,
        0,
        Box::new(Greeter {
            sock: None,
            sent: 0,
        }),
    );

    let mut rx_host = Host::new(HostConfig::new(Architecture::SoftLrp), RECEIVER);
    rx_host.spawn_app(
        "listener",
        0,
        0,
        Box::new(Listener {
            sock: None,
            inbox: inbox.clone(),
        }),
    );

    world.add_host(tx_host);
    world.add_host(rx_host);
    world.run_until(SimTime::from_millis(100));

    println!("Messages delivered through the simulated SOFT-LRP stack:");
    for line in inbox.borrow().iter() {
        println!("  {line}");
    }
    let rx = &world.hosts[1];
    println!("\nReceiver kernel counters:");
    println!("  frames received at NIC : {}", rx.nic.stats().rx_frames);
    println!("  hardware interrupts    : {}", rx.nic.stats().interrupts);
    println!("  datagrams delivered    : {}", rx.stats.udp_delivered);
    println!("  drops (all points)     : {}", rx.stats.total_drops());
    println!("  demux outcomes         : {:?}", rx.nic.demux.stats());
}
