//! Property test: the firmware-style demux table agrees with a naive
//! reference classifier on arbitrary packets.

use lrp_demux::{ChannelId, DemuxTable, Verdict};
use lrp_wire::{ipv4, proto, tcp, udp, Endpoint, FlowKey, Frame, Ipv4Addr};
use proptest::prelude::*;
use std::collections::HashMap;

const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A naive reference: linear scan over registered keys.
struct Reference {
    exact: HashMap<FlowKey, ChannelId>,
}

impl Reference {
    fn classify(&self, frame: &Frame) -> Verdict {
        let bytes = match frame {
            Frame::Arp(_) => return Verdict::ArpDaemon,
            Frame::Ipv4(b) => b,
        };
        let Ok((ih, payload)) = ipv4::parse(bytes) else {
            return Verdict::Malformed;
        };
        if ih.dst != LOCAL {
            return Verdict::Forward;
        }
        if ih.is_fragment() && !ih.is_first_fragment() {
            return Verdict::Fragment;
        }
        let ports = match ih.proto {
            proto::ICMP => return Verdict::IcmpDaemon,
            proto::UDP => udp::parse_ports(payload).map(|(p, _)| p),
            proto::TCP => tcp::parse_ports(payload).map(|(p, _)| p),
            _ => return Verdict::NoMatch,
        };
        let Ok((sport, dport)) = ports else {
            return Verdict::Malformed;
        };
        let local = Endpoint::new(ih.dst, dport);
        let remote = Endpoint::new(ih.src, sport);
        if let Some(&c) = self.exact.get(&FlowKey::new(ih.proto, local, remote)) {
            return Verdict::Endpoint(c);
        }
        if let Some(&c) = self.exact.get(&FlowKey::listening(ih.proto, local)) {
            return Verdict::Endpoint(c);
        }
        Verdict::NoMatch
    }
}

#[derive(Debug, Clone)]
enum PacketSpec {
    Udp {
        sport: u16,
        dport: u16,
        src_last: u8,
        dst_local: bool,
    },
    Tcp {
        sport: u16,
        dport: u16,
        src_last: u8,
        syn: bool,
    },
    Frag {
        dport: u16,
        first: bool,
    },
    Icmp,
    Arp,
    Garbage(Vec<u8>),
}

fn arb_packet() -> impl Strategy<Value = PacketSpec> {
    prop_oneof![
        (any::<u16>(), 0u16..16, any::<u8>(), any::<bool>()).prop_map(
            |(sport, dport, src_last, dst_local)| PacketSpec::Udp {
                sport,
                dport: 7000 + dport,
                src_last,
                dst_local
            }
        ),
        (any::<u16>(), 0u16..16, any::<u8>(), any::<bool>()).prop_map(
            |(sport, dport, src_last, syn)| PacketSpec::Tcp {
                sport,
                dport: 7000 + dport,
                src_last,
                syn
            }
        ),
        (0u16..16, any::<bool>()).prop_map(|(dport, first)| PacketSpec::Frag {
            dport: 7000 + dport,
            first
        }),
        Just(PacketSpec::Icmp),
        Just(PacketSpec::Arp),
        proptest::collection::vec(any::<u8>(), 0..60).prop_map(PacketSpec::Garbage),
    ]
}

fn materialize(spec: &PacketSpec) -> Frame {
    let peer = |last: u8| Ipv4Addr::new(10, 0, 0, last);
    match spec {
        PacketSpec::Udp {
            sport,
            dport,
            src_last,
            dst_local,
        } => {
            let dst = if *dst_local {
                LOCAL
            } else {
                Ipv4Addr::new(10, 0, 9, 9)
            };
            Frame::ipv4(udp::build_datagram(
                peer(*src_last),
                dst,
                *sport,
                *dport,
                1,
                b"payload",
                true,
            ))
        }
        PacketSpec::Tcp {
            sport,
            dport,
            src_last,
            syn,
        } => {
            let h = tcp::TcpHeader {
                src_port: *sport,
                dst_port: *dport,
                seq: 1,
                ack: 0,
                flags: if *syn {
                    tcp::flags::SYN
                } else {
                    tcp::flags::ACK
                },
                window: 8192,
                mss: None,
            };
            Frame::ipv4(tcp::build_datagram(peer(*src_last), LOCAL, &h, 2, b""))
        }
        PacketSpec::Frag { dport, first } => {
            let seg = udp::build(peer(1), LOCAL, 55, *dport, &[0u8; 3000], false);
            let frags = ipv4::fragment(peer(1), LOCAL, proto::UDP, 3, &seg, 1500);
            Frame::ipv4(frags[usize::from(!*first)].clone())
        }
        PacketSpec::Icmp => Frame::ipv4(lrp_wire::icmp::build_datagram(
            peer(1),
            LOCAL,
            4,
            &lrp_wire::icmp::IcmpMessage {
                kind: lrp_wire::icmp::IcmpType::EchoRequest,
                ident: 1,
                seq: 1,
                payload: vec![],
            },
        )),
        PacketSpec::Arp => Frame::arp(vec![
            0, 1, 0, 0, 0, 0, 0, 1, 10, 0, 0, 1, 10, 0, 0, 2, 0, 0, 0, 0,
        ]),
        PacketSpec::Garbage(b) => Frame::ipv4(b.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn demux_matches_reference(
        listeners in proptest::collection::btree_set(0u16..16, 0..8),
        connected in proptest::collection::btree_set((0u16..16, any::<u16>(), any::<u8>()), 0..8),
        packets in proptest::collection::vec(arb_packet(), 1..60),
    ) {
        let mut table = DemuxTable::new(64, LOCAL);
        let mut reference = Reference { exact: HashMap::new() };
        let mut next = 0u32;
        for port in &listeners {
            let k = FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 7000 + port));
            table.register(k, ChannelId(next)).unwrap();
            reference.exact.insert(k, ChannelId(next));
            next += 1;
            let kt = FlowKey::listening(proto::TCP, Endpoint::new(LOCAL, 7000 + port));
            table.register(kt, ChannelId(next)).unwrap();
            reference.exact.insert(kt, ChannelId(next));
            next += 1;
        }
        for (dport, sport, src_last) in &connected {
            let k = FlowKey::new(
                proto::TCP,
                Endpoint::new(LOCAL, 7000 + dport),
                Endpoint::new(Ipv4Addr::new(10, 0, 0, *src_last), *sport),
            );
            if table.register(k, ChannelId(next)).is_ok() {
                reference.exact.insert(k, ChannelId(next));
                next += 1;
            }
        }
        for spec in &packets {
            let frame = materialize(spec);
            prop_assert_eq!(
                table.classify(&frame),
                reference.classify(&frame),
                "spec: {:?}", spec
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// RSS steering invariant: the flow hash is a pure function of the
    /// 5-tuple. Two frames of the same flow — different payloads, idents,
    /// checksum settings — must produce identical keys, hashes and queue
    /// assignments, and the queue is always in range.
    #[test]
    fn rss_hash_is_payload_independent(
        sport in any::<u16>(),
        dport in any::<u16>(),
        src_last in any::<u8>(),
        ident in any::<u16>(),
        payload_a in proptest::collection::vec(any::<u8>(), 0..64),
        payload_b in proptest::collection::vec(any::<u8>(), 0..64),
        nqueues in 1usize..9,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, src_last);
        let a = Frame::ipv4(udp::build_datagram(
            src, LOCAL, sport, dport, 1, &payload_a, true,
        ));
        let b = Frame::ipv4(udp::build_datagram(
            src, LOCAL, sport, dport, ident, &payload_b, false,
        ));
        let ka = lrp_demux::rss_flow_key(&a, LOCAL).unwrap();
        let kb = lrp_demux::rss_flow_key(&b, LOCAL).unwrap();
        prop_assert_eq!(ka, kb, "flow key must ignore payload and ident");
        prop_assert_eq!(lrp_demux::rss_hash(&ka), lrp_demux::rss_hash(&kb));
        let q = lrp_demux::rss_queue(&ka, nqueues);
        prop_assert_eq!(lrp_demux::rss_queue(&kb, nqueues), q);
        prop_assert!(q < nqueues, "queue {} out of range {}", q, nqueues);
        // With one queue everything lands on queue 0 (the ncpus=1 case).
        prop_assert_eq!(lrp_demux::rss_queue(&ka, 1), 0);
    }

    /// The RSS key extractor agrees with the demux classifier about which
    /// flow a frame belongs to: whenever classify() finds an endpoint, the
    /// extracted key's 5-tuple resolves to the same channel.
    #[test]
    fn rss_key_agrees_with_classify(
        listeners in proptest::collection::btree_set(0u16..16, 1..8),
        packets in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        let mut table = DemuxTable::new(64, LOCAL);
        let mut next = 0u32;
        for port in &listeners {
            for p in [proto::UDP, proto::TCP] {
                table
                    .register(
                        FlowKey::listening(p, Endpoint::new(LOCAL, 7000 + port)),
                        ChannelId(next),
                    )
                    .unwrap();
                next += 1;
            }
        }
        for spec in &packets {
            let frame = materialize(spec);
            let verdict = table.classify(&frame);
            let key = lrp_demux::rss_flow_key(&frame, LOCAL);
            if let Verdict::Endpoint(chan) = verdict {
                let k = key.expect("endpoint match implies a transport flow");
                prop_assert_eq!(
                    table.lookup_flow(k.proto, k.local, k.remote),
                    Some(chan),
                    "spec: {:?}", spec
                );
            }
        }
    }
}

/// Anchors the hash algorithm itself: if the mixing function changes, flows
/// silently migrate between queues mid-rollout on real hardware. The exact
/// values are arbitrary; their stability is the point.
#[test]
fn rss_hash_golden_values_are_stable() {
    let k1 = FlowKey::new(
        proto::UDP,
        Endpoint::new(LOCAL, 9000),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 3), 6000),
    );
    let k2 = FlowKey::new(
        proto::TCP,
        Endpoint::new(LOCAL, 80),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 5000),
    );
    assert_eq!(lrp_demux::rss_hash(&k1), 0xe04efbd2);
    assert_eq!(lrp_demux::rss_hash(&k2), 0x4a78dcfa);
}

/// Traffic without a transport flow steers to queue 0: non-first fragments,
/// ICMP, ARP, non-local and malformed frames all yield no key.
#[test]
fn rss_flow_key_none_for_unclassifiable_traffic() {
    for spec in [
        PacketSpec::Frag {
            dport: 7000,
            first: false,
        },
        PacketSpec::Icmp,
        PacketSpec::Arp,
        PacketSpec::Garbage(vec![0x45, 0, 0]),
        PacketSpec::Udp {
            sport: 1,
            dport: 2,
            src_last: 3,
            dst_local: false,
        },
    ] {
        let frame = materialize(&spec);
        assert_eq!(
            lrp_demux::rss_flow_key(&frame, LOCAL),
            None,
            "spec: {spec:?}"
        );
    }
}
