//! Early packet demultiplexing — the heart of LRP (§3.2 of the paper).
//!
//! The paper requires the demux function to be *self-contained*, with
//! "minimal requirements on its execution environment (non-blocking, no
//! dynamic memory allocation, no timers)", so that it can run either in NIC
//! firmware (NI-LRP) or in the host interrupt handler (SOFT-LRP). This
//! crate honours that constraint: classification allocates nothing — the
//! endpoint table is a fixed-capacity open-addressing hash table allocated
//! once at channel-registration time, and packet parsing borrows from the
//! frame.
//!
//! Classification rules (matching the paper):
//!
//! - TCP/UDP packets match an endpoint by exact 5-tuple first (connected
//!   sockets), then by wildcard `(proto, local_port)` (listening or
//!   unconnected sockets).
//! - A non-first IP fragment has no transport header, so it cannot be
//!   classified; it goes to a **special fragment channel** that the IP
//!   reassembly code consults when it misses fragments.
//! - ICMP and ARP go to per-protocol **proxy daemon** channels (§3.5).
//! - Packets whose destination address is not local go to the IP
//!   **forwarding daemon** channel.
//! - Anything unmatched or malformed is reported as such; the NI drops it.
//!
//! # Examples
//!
//! ```
//! use lrp_demux::{DemuxTable, Verdict, ChannelId};
//! use lrp_wire::{udp, Frame, FlowKey, Endpoint, Ipv4Addr, proto};
//!
//! let local = Ipv4Addr::new(10, 0, 0, 2);
//! let mut table = DemuxTable::new(64, local);
//! let sock = Endpoint::new(local, 7777);
//! table.register(FlowKey::listening(proto::UDP, sock), ChannelId(3)).unwrap();
//!
//! let dgram = udp::build_datagram(Ipv4Addr::new(10, 0, 0, 1), local, 5, 7777, 1, b"hi", true);
//! let verdict = table.classify(&Frame::ipv4(dgram));
//! assert_eq!(verdict, Verdict::Endpoint(ChannelId(3)));
//! ```

#![warn(missing_docs)]

use lrp_wire::{ipv4, proto, tcp, udp, Endpoint, FlowKey, Frame, Ipv4Addr};

/// Identifies one NI channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

/// The classification result for one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver to the endpoint's NI channel.
    Endpoint(ChannelId),
    /// A non-first IP fragment: deliver to the special fragment channel.
    Fragment,
    /// ICMP: deliver to the ICMP proxy daemon's channel.
    IcmpDaemon,
    /// ARP: deliver to the ARP proxy daemon's channel.
    ArpDaemon,
    /// Destination is not a local address: deliver to the IP-forwarding
    /// daemon's channel.
    Forward,
    /// No endpoint is bound to the destination: drop.
    NoMatch,
    /// The packet failed basic validation: drop.
    Malformed,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Used(FlowKey, ChannelId),
}

/// Errors from table mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The table is full; no channel can be registered.
    Full,
    /// The key is already registered.
    Exists,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Full => write!(f, "demux table full"),
            TableError::Exists => write!(f, "flow key already registered"),
        }
    }
}

impl std::error::Error for TableError {}

/// The endpoint match table: a fixed-capacity open-addressing hash table
/// suitable for NIC firmware (no allocation after construction).
#[derive(Debug)]
pub struct DemuxTable {
    slots: Box<[Slot]>,
    used: usize,
    local_addr: Ipv4Addr,
    /// Statistics: classification calls by outcome.
    stats: DemuxStats,
}

/// Counters describing classification outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DemuxStats {
    /// Frames matched to an endpoint channel.
    pub endpoint: u64,
    /// Non-first fragments routed to the fragment channel.
    pub fragment: u64,
    /// Frames routed to proxy daemons (ICMP + ARP + forward).
    pub daemon: u64,
    /// Frames with no matching endpoint.
    pub no_match: u64,
    /// Malformed frames.
    pub malformed: u64,
}

// FNV-1a over the flow key; cheap enough for firmware and good enough for a
// load factor kept under 50%.
fn hash_key(k: &FlowKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    feed(k.proto);
    for b in k.local.addr.octets() {
        feed(b);
    }
    for b in k.local.port.to_be_bytes() {
        feed(b);
    }
    for b in k.remote.addr.octets() {
        feed(b);
    }
    for b in k.remote.port.to_be_bytes() {
        feed(b);
    }
    h
}

impl DemuxTable {
    /// Creates a table able to hold `capacity` endpoints, for a host whose
    /// (single-interface) address is `local_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, local_addr: Ipv4Addr) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        // Size to 2x capacity (next power of two) to keep probes short.
        let size = (capacity * 2).next_power_of_two();
        DemuxTable {
            slots: vec![Slot::Empty; size].into_boxed_slice(),
            used: 0,
            local_addr,
            stats: DemuxStats::default(),
        }
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.used
    }

    /// True if no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Classification statistics so far.
    pub fn stats(&self) -> DemuxStats {
        self.stats
    }

    /// The host address this table classifies for.
    pub fn local_addr(&self) -> Ipv4Addr {
        self.local_addr
    }

    /// Registers a flow key to a channel.
    ///
    /// Connected sockets register an exact 5-tuple; listening/unconnected
    /// sockets register a wildcard key ([`FlowKey::listening`]).
    pub fn register(&mut self, key: FlowKey, chan: ChannelId) -> Result<(), TableError> {
        if self.used * 2 >= self.slots.len() {
            return Err(TableError::Full);
        }
        let mask = self.slots.len() - 1;
        let mut idx = (hash_key(&key) as usize) & mask;
        let mut first_tombstone = None;
        loop {
            match self.slots[idx] {
                Slot::Used(k, _) if k == key => return Err(TableError::Exists),
                Slot::Used(..) => idx = (idx + 1) & mask,
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(idx);
                    }
                    idx = (idx + 1) & mask;
                }
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(idx);
                    self.slots[target] = Slot::Used(key, chan);
                    self.used += 1;
                    return Ok(());
                }
            }
        }
    }

    /// Removes a flow key; returns the channel it mapped to, if any.
    pub fn unregister(&mut self, key: &FlowKey) -> Option<ChannelId> {
        let mask = self.slots.len() - 1;
        let mut idx = (hash_key(key) as usize) & mask;
        loop {
            match self.slots[idx] {
                Slot::Used(k, c) if k == *key => {
                    self.slots[idx] = Slot::Tombstone;
                    self.used -= 1;
                    return Some(c);
                }
                Slot::Empty => return None,
                _ => idx = (idx + 1) & mask,
            }
        }
    }

    /// Looks up an exact key. No allocation.
    pub fn lookup(&self, key: &FlowKey) -> Option<ChannelId> {
        let mask = self.slots.len() - 1;
        let mut idx = (hash_key(key) as usize) & mask;
        loop {
            match self.slots[idx] {
                Slot::Used(k, c) if k == *key => return Some(c),
                Slot::Empty => return None,
                _ => idx = (idx + 1) & mask,
            }
        }
    }

    /// Looks up a transport flow: exact 5-tuple first, then the wildcard
    /// (listening) key. No allocation.
    pub fn lookup_flow(
        &self,
        ip_proto: u8,
        local: Endpoint,
        remote: Endpoint,
    ) -> Option<ChannelId> {
        if let Some(c) = self.lookup(&FlowKey::new(ip_proto, local, remote)) {
            return Some(c);
        }
        self.lookup(&FlowKey::listening(ip_proto, local))
    }

    /// Classifies one frame. This is the function the paper places either
    /// in NIC firmware or in the host interrupt handler.
    ///
    /// No allocation, no blocking, no timers: suitable for either context.
    pub fn classify(&mut self, frame: &Frame) -> Verdict {
        let v = self.classify_inner(frame);
        match v {
            Verdict::Endpoint(_) => self.stats.endpoint += 1,
            Verdict::Fragment => self.stats.fragment += 1,
            Verdict::IcmpDaemon | Verdict::ArpDaemon | Verdict::Forward => self.stats.daemon += 1,
            Verdict::NoMatch => self.stats.no_match += 1,
            Verdict::Malformed => self.stats.malformed += 1,
        }
        v
    }

    fn classify_inner(&self, frame: &Frame) -> Verdict {
        let bytes = match frame {
            Frame::Arp(_) => return Verdict::ArpDaemon,
            Frame::Ipv4(b) => b,
        };
        let Ok(ih) = ipv4::Ipv4Header::decode(bytes) else {
            return Verdict::Malformed;
        };
        if ih.dst != self.local_addr {
            return Verdict::Forward;
        }
        // Non-first fragments carry no transport header; the paper routes
        // them to a special channel checked by IP reassembly.
        if ih.is_fragment() && !ih.is_first_fragment() {
            return Verdict::Fragment;
        }
        let payload = &bytes[ipv4::HEADER_LEN..ih.total_len as usize];
        match ih.proto {
            proto::ICMP => Verdict::IcmpDaemon,
            proto::UDP => {
                let Ok((uh, _)) = udp::parse_ports(payload) else {
                    return Verdict::Malformed;
                };
                let local = Endpoint::new(ih.dst, uh.1);
                let remote = Endpoint::new(ih.src, uh.0);
                match self.lookup_flow(proto::UDP, local, remote) {
                    Some(c) => Verdict::Endpoint(c),
                    None => Verdict::NoMatch,
                }
            }
            proto::TCP => {
                let Ok((th, _)) = tcp::parse_ports(payload) else {
                    return Verdict::Malformed;
                };
                let local = Endpoint::new(ih.dst, th.1);
                let remote = Endpoint::new(ih.src, th.0);
                match self.lookup_flow(proto::TCP, local, remote) {
                    Some(c) => Verdict::Endpoint(c),
                    None => Verdict::NoMatch,
                }
            }
            _ => Verdict::NoMatch,
        }
    }
}

/// RSS-style receive hash over a flow key (§SMP extension). The hash feeds
/// multi-queue RX steering: every frame of one flow must land on the same
/// RX queue, so the hash covers exactly the fields that identify the flow
/// — protocol, addresses, ports — and nothing else. It is independent of
/// payload bytes, lengths, TTL and checksums *by construction*: a
/// [`FlowKey`] carries none of those.
///
/// The same FNV-1a mix as the endpoint table uses, folded to 32 bits, so
/// NIC steering and channel lookup agree on what "a flow" is.
pub fn rss_hash(key: &FlowKey) -> u32 {
    let h = hash_key(key);
    (h ^ (h >> 32)) as u32
}

/// Maps a flow key to an RX queue index in `0..nqueues`.
///
/// # Panics
///
/// Panics if `nqueues` is zero.
pub fn rss_queue(key: &FlowKey, nqueues: usize) -> usize {
    assert!(nqueues > 0, "a NIC has at least one RX queue");
    rss_hash(key) as usize % nqueues
}

/// Extracts the full 5-tuple flow key an RSS engine would hash, using the
/// *same* parsing as [`DemuxTable::classify`] so steering and demux agree.
/// Returns `None` for traffic that has no transport flow (ARP, ICMP,
/// non-first fragments, malformed or non-local frames) — the NIC steers
/// those to queue 0, where the fragment/proxy machinery lives.
pub fn rss_flow_key(frame: &Frame, local_addr: Ipv4Addr) -> Option<FlowKey> {
    let bytes = match frame {
        Frame::Arp(_) => return None,
        Frame::Ipv4(b) => b,
    };
    let ih = ipv4::Ipv4Header::decode(bytes).ok()?;
    if ih.dst != local_addr {
        return None;
    }
    if ih.is_fragment() && !ih.is_first_fragment() {
        return None;
    }
    let payload = &bytes[ipv4::HEADER_LEN..ih.total_len as usize];
    match ih.proto {
        proto::UDP => {
            let (sport, dport) = udp::parse_ports(payload).ok()?.0;
            Some(FlowKey::new(
                proto::UDP,
                Endpoint::new(ih.dst, dport),
                Endpoint::new(ih.src, sport),
            ))
        }
        proto::TCP => {
            let (sport, dport) = tcp::parse_ports(payload).ok()?.0;
            Some(FlowKey::new(
                proto::TCP,
                Endpoint::new(ih.dst, dport),
                Endpoint::new(ih.src, sport),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_wire::tcp::flags;

    const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const PEER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn table() -> DemuxTable {
        DemuxTable::new(32, LOCAL)
    }

    fn udp_frame(sport: u16, dport: u16) -> Frame {
        Frame::ipv4(udp::build_datagram(
            PEER, LOCAL, sport, dport, 1, b"x", true,
        ))
    }

    fn tcp_frame(sport: u16, dport: u16, fl: u8) -> Frame {
        let h = tcp::TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq: 1,
            ack: 0,
            flags: fl,
            window: 1024,
            mss: None,
        };
        Frame::ipv4(tcp::build_datagram(PEER, LOCAL, &h, 2, b""))
    }

    #[test]
    fn udp_wildcard_match() {
        let mut t = table();
        t.register(
            FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 53)),
            ChannelId(1),
        )
        .unwrap();
        assert_eq!(
            t.classify(&udp_frame(999, 53)),
            Verdict::Endpoint(ChannelId(1))
        );
        assert_eq!(t.classify(&udp_frame(999, 54)), Verdict::NoMatch);
        assert_eq!(t.stats().endpoint, 1);
        assert_eq!(t.stats().no_match, 1);
    }

    #[test]
    fn exact_match_beats_wildcard() {
        let mut t = table();
        let local = Endpoint::new(LOCAL, 80);
        t.register(FlowKey::listening(proto::TCP, local), ChannelId(1))
            .unwrap();
        t.register(
            FlowKey::new(proto::TCP, local, Endpoint::new(PEER, 5000)),
            ChannelId(2),
        )
        .unwrap();
        assert_eq!(
            t.classify(&tcp_frame(5000, 80, flags::ACK)),
            Verdict::Endpoint(ChannelId(2))
        );
        // A SYN from a different client port falls back to the listener.
        assert_eq!(
            t.classify(&tcp_frame(5001, 80, flags::SYN)),
            Verdict::Endpoint(ChannelId(1))
        );
    }

    #[test]
    fn non_first_fragment_goes_to_fragment_channel() {
        let mut t = table();
        t.register(
            FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
            ChannelId(4),
        )
        .unwrap();
        let udp_seg = udp::build(PEER, LOCAL, 1, 9000, &[0u8; 4000], true);
        let frags = ipv4::fragment(PEER, LOCAL, proto::UDP, 77, &udp_seg, 1500);
        assert!(frags.len() > 1);
        // First fragment carries the UDP header: endpoint match.
        assert_eq!(
            t.classify(&Frame::ipv4(frags[0].clone())),
            Verdict::Endpoint(ChannelId(4))
        );
        // Later fragments cannot be classified.
        assert_eq!(
            t.classify(&Frame::ipv4(frags[1].clone())),
            Verdict::Fragment
        );
    }

    #[test]
    fn icmp_and_arp_route_to_daemons() {
        let mut t = table();
        let icmp_pkt = lrp_wire::icmp::build_datagram(
            PEER,
            LOCAL,
            3,
            &lrp_wire::icmp::IcmpMessage {
                kind: lrp_wire::icmp::IcmpType::EchoRequest,
                ident: 1,
                seq: 1,
                payload: vec![],
            },
        );
        assert_eq!(t.classify(&Frame::ipv4(icmp_pkt)), Verdict::IcmpDaemon);
        assert_eq!(t.classify(&Frame::arp(vec![0; 20])), Verdict::ArpDaemon);
        assert_eq!(t.stats().daemon, 2);
    }

    #[test]
    fn non_local_destination_forwards() {
        let mut t = table();
        let other = Ipv4Addr::new(10, 0, 0, 99);
        let dgram = udp::build_datagram(PEER, other, 1, 2, 1, b"x", true);
        assert_eq!(t.classify(&Frame::ipv4(dgram)), Verdict::Forward);
    }

    #[test]
    fn malformed_rejected() {
        let mut t = table();
        assert_eq!(
            t.classify(&Frame::ipv4(vec![0x45, 0, 0])),
            Verdict::Malformed
        );
        // Corrupted IP checksum.
        let mut dgram = udp::build_datagram(PEER, LOCAL, 1, 2, 1, b"x", true);
        dgram[9] ^= 0xFF;
        assert_eq!(t.classify(&Frame::ipv4(dgram)), Verdict::Malformed);
        assert_eq!(t.stats().malformed, 2);
    }

    #[test]
    fn register_duplicate_fails() {
        let mut t = table();
        let k = FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 1));
        t.register(k, ChannelId(1)).unwrap();
        assert_eq!(t.register(k, ChannelId(2)), Err(TableError::Exists));
    }

    #[test]
    fn table_fills_up() {
        let mut t = DemuxTable::new(2, LOCAL);
        // Capacity 2 => table size 4 => at most 2 entries (load factor 1/2).
        t.register(
            FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 1)),
            ChannelId(1),
        )
        .unwrap();
        t.register(
            FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 2)),
            ChannelId(2),
        )
        .unwrap();
        assert_eq!(
            t.register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 3)),
                ChannelId(3),
            ),
            Err(TableError::Full)
        );
    }

    #[test]
    fn unregister_then_reuse() {
        let mut t = table();
        let k = FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 7));
        t.register(k, ChannelId(9)).unwrap();
        assert_eq!(t.unregister(&k), Some(ChannelId(9)));
        assert_eq!(t.unregister(&k), None);
        assert_eq!(t.len(), 0);
        t.register(k, ChannelId(10)).unwrap();
        assert_eq!(t.lookup(&k), Some(ChannelId(10)));
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut t = DemuxTable::new(8, LOCAL);
        let keys: Vec<FlowKey> = (0..8)
            .map(|i| FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 100 + i)))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            t.register(*k, ChannelId(i as u32)).unwrap();
        }
        // Remove every other key, then verify the rest still resolve.
        for k in keys.iter().step_by(2) {
            t.unregister(k);
        }
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(t.lookup(k), None);
            } else {
                assert_eq!(t.lookup(k), Some(ChannelId(i as u32)));
            }
        }
    }
}
