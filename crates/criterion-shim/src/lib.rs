//! Offline stand-in for the `criterion` crate.
//!
//! The real criterion cannot be fetched in this build environment, so this
//! crate provides the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `throughput` / `bench_function` /
//! `finish`, `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simple wall-clock timing with
//! a mean/min/max report — no statistics, plots, or HTML output.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for the following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: a warm-up iteration, then `sample_size` timed
    /// samples, and prints mean/min/max (plus throughput if annotated).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // Warm-up (untimed in the report).
        f(&mut b);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            let per_iter = if b.iters > 0 {
                b.elapsed / b.iters as u32
            } else {
                b.elapsed
            };
            samples.push(per_iter);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        print!(
            "{}/{:<40} mean {:>12?}  min {:>12?}  max {:>12?}",
            self.name, id, mean, min, max
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                print!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64());
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                print!(
                    "  {:>9.1} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
                );
            }
            _ => {}
        }
        println!();
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, accumulating one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Re-export so `criterion::black_box` also works.
pub use std::hint::black_box;

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + 2 samples, one iter each
        assert_eq!(count, 3);
    }
}
