//! Bounded packet-lifecycle trace ring.
//!
//! Instrumented components record [`TraceEvent`]s — timestamped, labelled
//! points in a packet's life (rx-DMA, demux verdict, queue enqueue/dequeue,
//! early discard, softirq dispatch, protocol processing, socket delivery,
//! receive wakeup) — into a [`TraceRing`] of fixed capacity. When the ring
//! is full the oldest events are overwritten, so a long run keeps the tail
//! of its history at bounded memory cost.
//!
//! Recording is pure bookkeeping: it never touches simulated time, the
//! event queue, or any RNG, so enabling a trace cannot perturb a
//! deterministic run.
//!
//! Two export formats are supported:
//!
//! * [`TraceRing::to_jsonl`] — one JSON object per line, convenient for
//!   `jq`/grep-style analysis;
//! * [`TraceRing::to_chrome_trace`] — the chrome://tracing (Perfetto) JSON
//!   array format, where events with a duration render as spans.

use std::fmt::Write as _;

/// One timestamped point in a packet's lifecycle.
///
/// `kind` and `stage` are static labels (event class and qualifier — e.g.
/// kind `"drop"`, stage `"SockBuf"`); `id` correlates events belonging to
/// the same object (channel id, socket id, or a packet counter), and
/// `dur_ns` is non-zero only for span events such as protocol processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event, in nanoseconds.
    pub t_ns: u64,
    /// Event class: `"rx-dma"`, `"demux"`, `"enqueue"`, `"dequeue"`,
    /// `"drop"`, `"softirq"`, `"proto"`, `"deliver"`, `"wakeup"`, `"recv"`.
    pub kind: &'static str,
    /// Qualifier within the class: queue name, drop point, protocol.
    pub stage: &'static str,
    /// Correlator: channel/socket id or packet ordinal, 0 when unused.
    pub id: u64,
    /// CPU on which the event occurred.
    pub cpu: u32,
    /// Span length in nanoseconds; 0 for instant events.
    pub dur_ns: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s, overwriting oldest-first.
///
/// Stored as a flat `Vec` with a wrap cursor: recording at capacity is a
/// single indexed store, not a dequeue/enqueue pair — this sits on the
/// per-packet hot path whenever telemetry is on.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    cap: usize,
    recorded: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` events (`cap == 0` records
    /// nothing but still counts).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            buf: Vec::with_capacity(cap.min(4096)),
            head: 0,
            cap,
            recorded: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else if self.cap > 0 {
            // Full: overwrite the oldest in place.
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Renders the ring as JSON Lines: one object per event, oldest-first.
    ///
    /// Labels are static identifiers chosen by the instrumentation, so no
    /// string escaping is required.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 96);
        for ev in self.iter() {
            let _ = writeln!(
                out,
                "{{\"t_ns\":{},\"kind\":\"{}\",\"stage\":\"{}\",\"id\":{},\"cpu\":{},\"dur_ns\":{}}}",
                ev.t_ns, ev.kind, ev.stage, ev.id, ev.cpu, ev.dur_ns
            );
        }
        out
    }

    /// Renders the ring in the chrome://tracing JSON format.
    ///
    /// Instant events use phase `"i"`; events with a duration use phase
    /// `"X"` (complete) so viewers draw them as spans. Timestamps are in
    /// microseconds as the format requires, carried with three decimal
    /// places so nanosecond resolution survives.
    pub fn to_chrome_trace(&self, pid: u32) -> String {
        let mut out = String::with_capacity(self.buf.len() * 160 + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let us = ev.t_ns / 1000;
            let frac = ev.t_ns % 1000;
            let _ = write!(
                out,
                "{{\"name\":\"{}:{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},",
                ev.kind,
                ev.stage,
                ev.kind,
                if ev.dur_ns > 0 { "X" } else { "i" },
                us,
                frac
            );
            if ev.dur_ns > 0 {
                let dus = ev.dur_ns / 1000;
                let dfrac = ev.dur_ns % 1000;
                let _ = write!(out, "\"dur\":{dus}.{dfrac:03},");
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(
                out,
                "\"pid\":{},\"tid\":{},\"args\":{{\"id\":{}}}}}",
                pid, ev.cpu, ev.id
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: &'static str) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            kind,
            stage: "s",
            id: t,
            cpu: 0,
            dur_ns: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.record(ev(t, "rx-dma"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.overwritten(), 2);
        let ts: Vec<u64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut r = TraceRing::new(0);
        r.record(ev(1, "drop"));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 1);
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let mut r = TraceRing::new(8);
        r.record(ev(1500, "enqueue"));
        r.record(TraceEvent {
            t_ns: 2500,
            kind: "proto",
            stage: "udp",
            id: 7,
            cpu: 1,
            dur_ns: 800,
        });
        let s = r.to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ns\":1500,\"kind\":\"enqueue\",\"stage\":\"s\",\"id\":1500,\"cpu\":0,\"dur_ns\":0}"
        );
        assert!(lines[1].contains("\"dur_ns\":800"));
    }

    #[test]
    fn chrome_trace_spans_and_instants() {
        let mut r = TraceRing::new(8);
        r.record(ev(1500, "drop"));
        r.record(TraceEvent {
            t_ns: 2000,
            kind: "proto",
            stage: "udp",
            id: 3,
            cpu: 2,
            dur_ns: 1250,
        });
        let s = r.to_chrome_trace(42);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("]}"));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":1.250"));
        assert!(s.contains("\"pid\":42"));
        assert!(s.contains("\"tid\":2"));
    }
}
