//! Measurement primitives used by experiments and kernels.
//!
//! Everything here is deliberately simple and allocation-light:
//!
//! - [`Counter`] — monotonically increasing event counts with named drops.
//! - [`Welford`] — streaming mean / variance (for latency summaries).
//! - [`Histogram`] — log-bucketed latency histogram with percentiles.
//! - [`TimeWeighted`] — time-weighted average of a gauge (queue lengths).
//! - [`RateSeries`] — per-interval event rates (throughput-over-time plots).

use crate::time::{SimDuration, SimTime};

/// A simple monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean and variance via Welford's algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation, or 0 for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A log-bucketed histogram for non-negative integer samples (e.g. latency
/// in nanoseconds).
///
/// Buckets have ~9% relative width (32 sub-buckets per power of two), which
/// is plenty for percentile reporting in the experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Highest valid bucket index (the bucket of `u64::MAX`).
    fn last_index() -> usize {
        ((64 - SUB_BUCKET_BITS as usize) + 1) * SUB_BUCKETS as usize - 1
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64;
        let shift = msb - SUB_BUCKET_BITS as u64 + 1;
        let exp = shift as usize;
        let mantissa = ((value >> shift) - SUB_BUCKETS / 2) as usize;
        // Each exponent level above the linear range contributes half a
        // sub-bucket row of new buckets.
        SUB_BUCKETS as usize + exp * (SUB_BUCKETS as usize / 2) + mantissa
            - (SUB_BUCKETS as usize / 2)
    }

    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS as usize {
            return index as u64;
        }
        let rel = index - SUB_BUCKETS as usize / 2;
        let exp = rel / (SUB_BUCKETS as usize / 2);
        let mantissa = rel % (SUB_BUCKETS as usize / 2) + SUB_BUCKETS as usize / 2;
        (mantissa as u64) << exp
    }

    /// Records one sample.
    ///
    /// Bucket storage grows lazily to the highest index touched, so the
    /// histogram's cache footprint tracks its sample range instead of the
    /// full 64-octave table.
    pub fn record(&mut self, value: u64) {
        // `index_of` maps every u64 inside the bucket range; saturate
        // defensively rather than clamp-and-lie, and let `quantile`
        // report the exact tracked `max` for the top occupied bucket.
        let idx = Self::index_of(value).min(Self::last_index());
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `q` in `[0, 1]`, to bucket precision. A
    /// quantile that resolves to the highest occupied bucket reports the
    /// exact tracked maximum (so `quantile(1.0) == max()`), rather than
    /// reconstructing that bucket's lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "invalid quantile: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                if seen == self.count {
                    // Highest occupied bucket: the tracked max is exact.
                    return self.max;
                }
                return Self::value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50) to bucket precision.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Folds `other` into `self`: buckets are summed element-wise and the
    /// exact count/sum/min/max tracking is preserved, so the result is
    /// identical to having recorded both sample streams into one
    /// histogram. Used to fold per-CPU histograms into per-host reports.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

/// Time-weighted average of a gauge, e.g. a queue length.
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Creates a gauge with initial value 0 at time `start`.
    pub fn new(start: SimTime) -> Self {
        TimeWeighted {
            value: 0.0,
            last_change: start,
            weighted_sum: 0.0,
            start,
            max: 0.0,
        }
    }

    /// Sets the gauge to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_change).as_nanos() as f64;
        self.weighted_sum += self.value * dt;
        self.value = value;
        self.last_change = now;
        self.max = self.max.max(value);
    }

    /// Current gauge value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value the gauge has held.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_nanos() as f64;
        if total == 0.0 {
            return self.value;
        }
        let dt = now.since(self.last_change).as_nanos() as f64;
        (self.weighted_sum + self.value * dt) / total
    }
}

/// Event counts bucketed into fixed time intervals, for rate-over-time
/// series (e.g. delivered packets per second during an overload run).
#[derive(Clone, Debug)]
pub struct RateSeries {
    interval: SimDuration,
    start: SimTime,
    buckets: Vec<u64>,
}

impl RateSeries {
    /// Creates a series with the given bucketing interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        RateSeries {
            interval,
            start,
            buckets: Vec::new(),
        }
    }

    /// Records `n` events at time `now`.
    pub fn record(&mut self, now: SimTime, n: u64) {
        let idx = (now.since(self.start).as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Per-bucket event counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Per-bucket rates in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.interval.as_secs_f64();
        self.buckets.iter().map(|&b| b as f64 / secs).collect()
    }

    /// Average rate over buckets `[skip..]`, events/second.
    ///
    /// Skipping leading buckets discards warm-up transients.
    pub fn steady_rate(&self, skip: usize) -> f64 {
        if self.buckets.len() <= skip {
            return 0.0;
        }
        let slice = &self.buckets[skip..];
        let total: u64 = slice.iter().sum();
        total as f64 / (slice.len() as f64 * self.interval.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-9);
        // Sample variance of this classic set is 32/7.
        assert!((w.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(11);
        for _ in 0..10_000 {
            h.record(rng.next_below(1_000_000));
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Uniform distribution: p50 should be near 500k within bucket error.
        assert!((400_000..600_000).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert!((h.mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_large_value_bucket_error_bounded() {
        let mut h = Histogram::new();
        let v = 1_000_000_007;
        h.record(v);
        let q = h.quantile(0.5);
        let err = (q as f64 - v as f64).abs() / v as f64;
        assert!(err < 0.10, "bucket error {err} too large (q={q})");
    }

    #[test]
    fn time_weighted_average() {
        let t0 = SimTime::ZERO;
        let mut g = TimeWeighted::new(t0);
        g.set(SimTime::from_micros(0), 10.0);
        g.set(SimTime::from_micros(10), 20.0);
        // 10us at 10, then 10us at 20 => average 15 over 20us.
        assert!((g.average(SimTime::from_micros(20)) - 15.0).abs() < 1e-9);
        assert_eq!(g.max(), 20.0);
        assert_eq!(g.current(), 20.0);
    }

    #[test]
    fn rate_series_buckets() {
        let mut r = RateSeries::new(SimTime::ZERO, SimDuration::from_secs(1));
        r.record(SimTime::from_millis(100), 5);
        r.record(SimTime::from_millis(900), 5);
        r.record(SimTime::from_millis(1500), 7);
        assert_eq!(r.buckets(), &[10, 7]);
        assert_eq!(r.rates_per_sec(), vec![10.0, 7.0]);
        assert!((r.steady_rate(0) - 8.5).abs() < 1e-9);
        assert!((r.steady_rate(1) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rate_series_skip_beyond_len() {
        let r = RateSeries::new(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(r.steady_rate(5), 0.0);
    }

    #[test]
    fn histogram_top_bucket_quantile_is_exact_max() {
        // A single sample of 1000 lands in the bucket whose lower bound is
        // 992; p100 must still report the exact sample.
        let mut h = Histogram::new();
        h.record(1_000);
        assert_eq!(h.quantile(1.0), 1_000);
        assert_eq!(h.median(), 1_000);
        for _ in 0..99 {
            h.record(100);
        }
        assert_eq!(h.quantile(1.0), 1_000);
        assert_eq!(h.quantile(0.5), 100);
    }

    #[test]
    fn histogram_saturation_keeps_exact_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_equals_whole_stream() {
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(3);
        for i in 0..10_000u64 {
            let v = rng.next_below(1 << 40);
            whole.record(v);
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
        assert_eq!(a.mean(), whole.mean());
    }

    #[test]
    fn histogram_merge_empty_boundaries() {
        // empty.merge(empty) stays empty with min sentinel intact.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), 0);
        assert_eq!(e.max(), 0);
        // empty.merge(x) == x, and x.merge(empty) == x.
        let mut x = Histogram::new();
        x.record(7);
        x.record(u64::MAX);
        let mut from_empty = Histogram::new();
        from_empty.merge(&x);
        assert_eq!(from_empty, x);
        let snapshot = x.clone();
        x.merge(&Histogram::new());
        assert_eq!(x, snapshot);
        // Exact max/min tracking survives the fold.
        assert_eq!(x.max(), u64::MAX);
        assert_eq!(x.min(), 7);
        assert_eq!(x.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_bucket_edges_roundtrip() {
        // Every representable bucket lower edge maps back to its own
        // index, and the value just below it to the previous index.
        // Index 975 is index_of(u64::MAX), the last reachable bucket.
        for idx in 0..=975usize {
            let v = Histogram::value_of(idx);
            assert_eq!(Histogram::index_of(v), idx, "edge v={v}");
            if v > 0 {
                assert_eq!(Histogram::index_of(v - 1), idx - 1, "below edge v={v}");
            }
        }
    }

    #[test]
    fn histogram_index_value_monotone() {
        // value_of(index_of(v)) must be <= v and within ~9% below it.
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 65_535, 1 << 30] {
            let idx = Histogram::index_of(v);
            let back = Histogram::value_of(idx);
            assert!(back <= v, "v={v} back={back}");
            if v >= 32 {
                assert!((v - back) as f64 / v as f64 <= 0.07, "v={v} back={back}");
            } else {
                assert_eq!(back, v);
            }
        }
    }
}
