//! Simulated time.
//!
//! Time is an absolute count of nanoseconds since the start of the
//! simulation ([`SimTime`]); intervals are [`SimDuration`]. Both are thin
//! wrappers around `u64`, so arithmetic is exact and total ordering is
//! trivial. One `u64` of nanoseconds covers ~584 years of simulated time,
//! far beyond any experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any the simulation will reach; used as a sentinel
    /// for "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, which keeps
    /// accounting code robust against same-instant races.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (rounded to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scales the duration by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, t + d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_micros(10));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max_saturating() {
        let a = SimDuration::from_micros(3);
        let b = SimDuration::from_micros(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_micros(4));
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::NEVER
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
