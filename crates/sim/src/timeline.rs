//! Interval-sampled metrics timelines.
//!
//! A [`MetricsTimeline`] is a fixed-column time-series table: the caller
//! registers column names once, then pushes one row of `u64` samples per
//! sampling instant (driven from *simulated* time, so recording is
//! deterministic). Columns are cumulative counters or instantaneous
//! gauges; rate computation (delta over interval) is left to exporters so
//! the recorded data stays raw.
//!
//! Memory is bounded: past [`MetricsTimeline::cap`] rows, new samples are
//! counted but not stored.

/// One sampled row: the simulated timestamp plus one value per column.
#[derive(Clone, Debug)]
pub struct TimelineRow {
    /// Simulated time of the sample, nanoseconds.
    pub t_ns: u64,
    /// Column values, aligned with [`MetricsTimeline::columns`].
    pub values: Vec<u64>,
}

/// A bounded, fixed-column time-series of `u64` samples.
#[derive(Clone, Debug)]
pub struct MetricsTimeline {
    columns: Vec<&'static str>,
    rows: Vec<TimelineRow>,
    cap: usize,
    dropped: u64,
}

/// Default maximum number of stored rows (at a 10 ms tick this covers
/// more than 2.5 simulated hours).
pub const DEFAULT_TIMELINE_CAP: usize = 1 << 20;

impl MetricsTimeline {
    /// A timeline with the given column names and the default row cap.
    pub fn new(columns: Vec<&'static str>) -> Self {
        Self::with_cap(columns, DEFAULT_TIMELINE_CAP)
    }

    /// A timeline with an explicit row cap.
    pub fn with_cap(columns: Vec<&'static str>, cap: usize) -> Self {
        Self {
            columns,
            rows: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Registered column names.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Records one row. `values` must be aligned with [`Self::columns`].
    /// Rows past the cap are counted in [`Self::dropped`] and discarded.
    pub fn push(&mut self, t_ns: u64, values: Vec<u64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        if self.rows.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.rows.push(TimelineRow { t_ns, values });
    }

    /// Stored rows, in recording order.
    pub fn rows(&self) -> &[TimelineRow] {
        &self.rows
    }

    /// Rows discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The value of column `name` in row `row`, if both exist.
    pub fn value(&self, row: usize, name: &str) -> Option<u64> {
        let col = self.columns.iter().position(|c| *c == name)?;
        self.rows.get(row).map(|r| r.values[col])
    }

    /// Gnuplot-ready rendering: a `#`-prefixed header naming the columns
    /// (first column `t_s`, seconds), then one whitespace-separated row
    /// per sample.
    pub fn gnuplot_columns(&self) -> String {
        let mut out = String::from("# t_s");
        for c in &self.columns {
            out.push(' ');
            out.push_str(c);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:.6}", r.t_ns as f64 / 1e9));
            for v in &r.values {
                out.push(' ');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let mut t = MetricsTimeline::new(vec!["delivered", "depth"]);
        t.push(10_000_000, vec![5, 2]);
        t.push(20_000_000, vec![9, 0]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.value(0, "delivered"), Some(5));
        assert_eq!(t.value(1, "depth"), Some(0));
        assert_eq!(t.value(1, "missing"), None);
    }

    #[test]
    fn cap_bounds_memory() {
        let mut t = MetricsTimeline::with_cap(vec!["x"], 2);
        for i in 0..5 {
            t.push(i * 1_000, vec![i]);
        }
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn gnuplot_rendering() {
        let mut t = MetricsTimeline::new(vec!["a", "b"]);
        t.push(1_500_000_000, vec![1, 2]);
        let g = t.gnuplot_columns();
        assert_eq!(g, "# t_s a b\n1.500000 1 2\n");
    }
}
