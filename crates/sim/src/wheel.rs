//! Hierarchical timer wheel: the default event-queue implementation.
//!
//! Seven levels of 64 slots each, with slot width growing by 64× per
//! level (level 0 is 1 ns per slot), cover ~73 simulated minutes of
//! lookahead; anything further sits in a sorted **overflow level** that
//! cascades into the near wheels as the cursor advances. Schedule and
//! cancel are O(1) amortized and cancellation *removes* the entry — no
//! dead weight survives, which is the fix for the legacy heap's
//! lazy-cancel bloat.
//!
//! Determinism contract: pops come out in `(time, seq)` order — earliest
//! time first, FIFO among equal times — exactly like the legacy
//! [`crate::heap::HeapQueue`]. The dual-implementation property test in
//! `tests/queue_equivalence.rs` drives both with random
//! schedule/cancel/pop interleavings and asserts identical streams.
//!
//! Placement uses the classic XOR rule: an entry due at `T` lives at the
//! level of the highest 6-bit group in which `T` differs from the wheel
//! cursor (`elapsed`), in slot `(T >> 6·level) & 63`. This keeps an
//! entry's location a pure function of `(elapsed, T)`, so `cancel` can
//! recompute it from the time stored in the [`EventKey`] instead of
//! maintaining a per-entry index map on the hot path.

use std::collections::{BTreeMap, VecDeque};

use crate::event::EventKey;
use crate::time::SimTime;

/// Slots per level (64 = one 6-bit group of the time).
const SLOTS: usize = 64;
/// Bits per level.
const BITS: u32 = 6;
/// Wheel levels; beyond `64^LEVELS` ns of lookahead entries overflow.
const LEVELS: usize = 7;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// One level: 64 slot buckets. Occupancy bitmaps live in a packed
/// array on the wheel itself so the per-pop level scan reads one cache
/// line instead of seven ~1.5 KB-apart ones.
struct Level<E> {
    slots: [Vec<Entry<E>>; SLOTS],
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A deterministic event queue backed by a hierarchical timer wheel.
pub struct TimerWheel<E> {
    /// Per-level occupancy bitmaps: bit i set = slot i non-empty, so
    /// finding the next occupied slot is a mask + trailing-zero count.
    occupied: [u64; LEVELS],
    levels: Vec<Level<E>>,
    /// Entries beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BTreeMap<(u64, u64), E>,
    /// Due entries in pop order: the drained earliest slot, sorted.
    ready: VecDeque<Entry<E>>,
    /// The wheel cursor: all entries still stored have `time >= elapsed`
    /// (entries scheduled in the past are clamped into `ready`).
    elapsed: u64,
    next_seq: u64,
    len: usize,
    /// Reusable drain buffer: slot `Vec`s are swapped through it so
    /// their capacity survives instead of being reallocated per drain.
    scratch: Vec<Entry<E>>,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The level an entry due at `when` occupies with the cursor at
/// `elapsed`: the highest 6-bit group where they differ. `LEVELS` means
/// overflow.
#[inline]
fn level_for(elapsed: u64, when: u64) -> usize {
    let masked = elapsed ^ when;
    if masked == 0 {
        return 0;
    }
    let sig = 63 - masked.leading_zeros();
    ((sig / BITS) as usize).min(LEVELS)
}

#[inline]
fn slot_of(when: u64, level: usize) -> usize {
    ((when >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// The absolute start time of `slot` at `level`, relative to the
/// cursor's position (higher groups are taken from `elapsed`).
#[inline]
fn slot_start(elapsed: u64, level: usize, slot: usize) -> u64 {
    let shift = BITS * level as u32;
    let block = 1u64 << (shift + BITS); // width of the whole level
    (elapsed & !(block - 1)) | ((slot as u64) << shift)
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            occupied: [0; LEVELS],
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BTreeMap::new(),
            ready: VecDeque::new(),
            elapsed: 0,
            next_seq: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules `event` at absolute `time`; returns its cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = EventKey::new(seq, time);
        let t = time.as_nanos();
        // Entries at or before the cursor — or interleaving with already
        // drained-but-unpopped entries — go straight into the sorted
        // ready buffer so `(time, seq)` pop order is preserved.
        let into_ready = t <= self.elapsed
            || self
                .ready
                .back()
                .is_some_and(|b| t < b.time.as_nanos() || t == b.time.as_nanos());
        if into_ready {
            let entry = Entry { time, seq, event };
            // Find the insertion point from the back: almost always the
            // end (same-time FIFO), occasionally a few steps in.
            let mut i = self.ready.len();
            while i > 0 && self.ready[i - 1].time > time {
                i -= 1;
            }
            self.ready.insert(i, entry);
        } else {
            self.insert(Entry { time, seq, event });
        }
        self.len += 1;
        key
    }

    /// Places an entry into the wheel proper (or overflow). Caller
    /// guarantees `time > elapsed` and no ready-buffer interleaving.
    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.time.as_nanos();
        let level = level_for(self.elapsed, t);
        if level >= LEVELS {
            self.overflow.insert((t, entry.seq), entry.event);
            return;
        }
        let slot = slot_of(t, level);
        self.levels[level].slots[slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Cancels a scheduled entry, removing it outright. Returns `true`
    /// if it was still pending.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let (seq, time) = (key.seq(), key.time());
        let t = time.as_nanos();
        // Overflow first: an entry may still sit there even if the
        // cursor has since advanced to within wheel range of it.
        if self.overflow.remove(&(t, seq)).is_some() {
            self.len -= 1;
            return true;
        }
        if t > self.elapsed {
            let level = level_for(self.elapsed, t);
            if level < LEVELS {
                let slot = slot_of(t, level);
                let bucket = &mut self.levels[level].slots[slot];
                if let Some(i) = bucket.iter().position(|e| e.seq == seq) {
                    bucket.swap_remove(i);
                    if bucket.is_empty() {
                        self.occupied[level] &= !(1 << slot);
                    }
                    self.len -= 1;
                    return true;
                }
            }
        }
        // Already drained into the ready buffer (or clamped there).
        if let Some(i) = self.ready.iter().position(|e| e.seq == seq) {
            self.ready.remove(i);
            self.len -= 1;
            return true;
        }
        false
    }

    /// First occupied slot at `level` at or after the cursor's position,
    /// if any. The XOR placement invariant guarantees no occupied slot
    /// precedes the cursor within a level.
    #[inline]
    fn next_slot(&self, level: usize) -> Option<usize> {
        let cur = slot_of(self.elapsed, level);
        let masked = self.occupied[level] & (!0u64 << cur);
        (masked != 0).then(|| masked.trailing_zeros() as usize)
    }

    /// Moves overflow entries that now fit the wheel into it.
    fn migrate_overflow(&mut self) {
        while let Some((&(t, _), _)) = self.overflow.first_key_value() {
            if level_for(self.elapsed, t) >= LEVELS {
                break;
            }
            let ((t, seq), event) = self.overflow.pop_first().expect("checked");
            self.insert(Entry {
                time: SimTime::from_nanos(t),
                seq,
                event,
            });
        }
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::NEVER)
    }

    /// Removes and returns the earliest pending entry if it is due at or
    /// before `limit` — one scan instead of a peek/pop pair. The common
    /// case (one entry in the due slot, empty ready buffer) pops straight
    /// out of the slot without a buffer round-trip.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if let Some(front) = self.ready.front() {
            if front.time > limit {
                return None;
            }
            let e = self.ready.pop_front().expect("checked");
            self.len -= 1;
            return Some((e.time, e.event));
        }
        loop {
            self.migrate_overflow();
            // Lowest non-empty level holds the earliest wheel entry.
            let Some(level) = self.occupied.iter().position(|&o| o != 0) else {
                // Wheel empty: jump the cursor to the far future — unless
                // even the nearest overflow entry is past the limit.
                let (&(t, _), _) = self.overflow.first_key_value()?;
                if SimTime::from_nanos(t) > limit {
                    return None;
                }
                self.elapsed = t;
                continue;
            };
            let slot = self.next_slot(level).expect("level occupied");
            let start = slot_start(self.elapsed, level, slot);
            // Every entry in the earliest slot is at or after its start;
            // if even that is past the limit, nothing is due.
            if SimTime::from_nanos(start) > limit {
                return None;
            }
            self.elapsed = start;
            if level == 0 {
                let bucket = &mut self.levels[0].slots[slot];
                if bucket.len() == 1 {
                    // Fast path: the due slot holds exactly one entry.
                    let e = bucket.pop().expect("len checked");
                    self.occupied[0] &= !(1 << slot);
                    if e.time > limit {
                        // Not due yet: park it in the (empty) ready
                        // buffer rather than un-draining the slot.
                        self.ready.push_back(e);
                        return None;
                    }
                    self.len -= 1;
                    return Some((e.time, e.event));
                }
                // Swap the slot through the scratch buffer so Vec
                // capacity is recycled instead of reallocated per drain.
                std::mem::swap(&mut self.scratch, bucket);
                self.occupied[0] &= !(1 << slot);
                // Due: order by (time, seq). Times only differ here when
                // past-clamped entries were folded in.
                self.scratch.sort_unstable_by_key(|e| (e.time, e.seq));
                self.ready.extend(self.scratch.drain(..));
                let front = self.ready.front().expect("slot was occupied");
                if front.time > limit {
                    return None;
                }
                let e = self.ready.pop_front().expect("checked");
                self.len -= 1;
                return Some((e.time, e.event));
            }
            // Cascade one slot down toward level 0, putting the buffer
            // back afterwards so its capacity survives.
            std::mem::swap(&mut self.scratch, &mut self.levels[level].slots[slot]);
            self.occupied[level] &= !(1 << slot);
            let mut entries = std::mem::take(&mut self.scratch);
            for e in entries.drain(..) {
                self.insert(e);
            }
            self.scratch = entries;
        }
    }

    /// The earliest pending time, without removing anything.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut consider = |t: SimTime| match best {
            Some(b) if b <= t => {}
            _ => best = Some(t),
        };
        if let Some(e) = self.ready.front() {
            // Sorted: the front is the buffer minimum, and everything in
            // the wheel is later than the drained slot.
            return Some(e.time);
        }
        if let Some((&(t, _), _)) = self.overflow.first_key_value() {
            consider(SimTime::from_nanos(t));
        }
        if let Some(level) = self.occupied.iter().position(|&o| o != 0) {
            if let Some(slot) = self.next_slot(level) {
                for e in &self.levels[level].slots[slot] {
                    consider(e.time);
                }
            }
        }
        best
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries physically stored (slots + ready + overflow). Equals
    /// [`Self::len`] because cancellation removes entries — the bloat
    /// regression test pins this.
    pub fn internal_len(&self) -> usize {
        let in_slots: usize = self
            .levels
            .iter()
            .map(|l| l.slots.iter().map(Vec::len).sum::<usize>())
            .sum();
        in_slots + self.ready.len() + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn level_placement() {
        assert_eq!(level_for(0, 0), 0);
        assert_eq!(level_for(0, 63), 0);
        assert_eq!(level_for(0, 64), 1);
        assert_eq!(level_for(0, 64 * 64 - 1), 1);
        assert_eq!(level_for(0, 64 * 64), 2);
        assert_eq!(level_for(100, 100), 0);
        // Same 64-block: level 0 regardless of cursor.
        assert_eq!(level_for(130, 131), 0);
        // Far future: overflow.
        assert_eq!(level_for(0, u64::MAX), LEVELS);
    }

    #[test]
    fn pops_across_levels_in_order() {
        let mut w = TimerWheel::new();
        // One entry per level, plus overflow.
        let times = [
            5u64,
            70,
            5000,
            300_000,
            20_000_000,
            1 << 33,
            1 << 40,
            1 << 45,
        ];
        for (i, &ns) in times.iter().enumerate() {
            w.schedule(t(ns), i);
        }
        for (i, &ns) in times.iter().enumerate() {
            assert_eq!(w.pop(), Some((t(ns), i)), "entry {i}");
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_time_fifo_across_placement_paths() {
        let mut w = TimerWheel::new();
        // Entry placed at level 1 that will cascade into the same level-0
        // slot as a directly placed one — FIFO by seq must survive.
        w.schedule(t(100), "first"); // seq 0
        w.schedule(t(40), "early"); // seq 1
        assert_eq!(w.pop(), Some((t(40), "early")));
        // Cursor has advanced; 100 is now level-0-close.
        w.schedule(t(100), "second"); // seq 2
        assert_eq!(w.pop(), Some((t(100), "first")));
        assert_eq!(w.pop(), Some((t(100), "second")));
    }

    #[test]
    fn past_schedule_pops_first() {
        let mut w = TimerWheel::new();
        w.schedule(t(1000), "late");
        assert_eq!(w.pop(), Some((t(1000), "late")));
        // Cursor is near 1000 now; schedule into the past.
        w.schedule(t(2000), "future");
        w.schedule(t(50), "past");
        assert_eq!(w.pop(), Some((t(50), "past")));
        assert_eq!(w.pop(), Some((t(2000), "future")));
    }

    #[test]
    fn cancel_removes_from_every_region() {
        let mut w = TimerWheel::new();
        let near = w.schedule(t(10), "near");
        let mid = w.schedule(t(100_000), "mid");
        let far = w.schedule(t(1 << 50), "far");
        assert_eq!(w.len(), 3);
        assert!(w.cancel(mid));
        assert!(w.cancel(far));
        assert!(!w.cancel(far), "double cancel fails");
        assert_eq!(w.internal_len(), 1);
        assert!(w.cancel(near));
        assert_eq!(w.internal_len(), 0);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cancel_in_ready_buffer() {
        let mut w = TimerWheel::new();
        let a = w.schedule(t(5), 1);
        let b = w.schedule(t(5), 2);
        let _ = a;
        // Drain the slot via peek+pop of the first, then cancel the
        // second while it sits in the ready buffer.
        assert_eq!(w.pop(), Some((t(5), 1)));
        assert!(w.cancel(b));
        assert_eq!(w.pop(), None);
        assert_eq!(w.internal_len(), 0);
    }

    #[test]
    fn overflow_cascades_in() {
        let mut w = TimerWheel::new();
        let horizon = 1u64 << 42; // 64^7 = 2^42
        w.schedule(t(horizon + 500), "far");
        // Nothing near: pop jumps the cursor and cascades overflow in.
        assert_eq!(w.pop(), Some((t(horizon + 500), "far")));
        // Now schedule near the new cursor.
        w.schedule(t(horizon + 600), "near");
        assert_eq!(w.peek_time(), Some(t(horizon + 600)));
        assert_eq!(w.pop(), Some((t(horizon + 600), "near")));
    }

    #[test]
    fn cancel_overflow_entry_after_cursor_advances() {
        let mut w = TimerWheel::new();
        let far = w.schedule(t((1 << 42) + 77), "far");
        w.schedule(t(10), "near");
        assert_eq!(w.pop(), Some((t(10), "near")));
        // The far entry is still in overflow though it would now fit the
        // wheel only after more cursor movement; cancel must find it.
        assert!(w.cancel(far));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        for ns in [9u64, 3, 77, 3, 4096, 1 << 43] {
            w.schedule(t(ns), ns);
        }
        while let Some(pt) = w.peek_time() {
            let (at, _) = w.pop().expect("peeked");
            assert_eq!(pt, at);
        }
        assert!(w.is_empty());
    }
}
