//! Discrete-event simulation engine for the LRP reproduction.
//!
//! This crate provides the deterministic foundation every other crate builds
//! on: simulated time ([`SimTime`], [`SimDuration`]), a stable-ordered event
//! queue ([`EventQueue`]), a seedable pseudo-random number generator
//! ([`SplitMix64`]) and measurement primitives ([`stats`]).
//!
//! Determinism is a hard requirement: two runs of the same experiment with
//! the same seed must produce identical results, so that the paper's figures
//! regenerate reproducibly. The engine is therefore single-threaded, uses
//! integer nanosecond time, and breaks event-time ties by insertion order.
//!
//! # Examples
//!
//! ```
//! use lrp_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(2), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(e, "a");
//! assert_eq!(t.as_micros(), 2);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod heap;
pub mod profile;
pub mod rng;
pub mod sketch;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod wheel;

pub use event::{EventKey, EventQueue, QueueImpl};
pub use heap::HeapQueue;
pub use profile::{CycleAccount, CycleKey, FastHashMap, FoldHasher};
pub use rng::SplitMix64;
pub use sketch::QuantileSketch;
pub use stats::{Counter, Histogram, RateSeries, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
pub use timeline::{MetricsTimeline, TimelineRow};
pub use trace::{TraceEvent, TraceRing};
pub use wheel::TimerWheel;
