//! Deterministic pseudo-random number generation.
//!
//! The simulation must replay bit-identically from a seed, so we use a
//! small, self-contained SplitMix64 generator rather than an OS-seeded
//! source. SplitMix64 passes BigCrush and is more than adequate for
//! workload-generation purposes (inter-arrival jitter, request sizes).

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use lrp_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times in workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean >= 0.0, "invalid mean: {mean}");
        // Avoid ln(0): next_f64 is in [0,1), so 1 - u is in (0,1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability: {p}");
        self.next_f64() < p
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(4);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.next_range(10, 12);
            assert!((10..=12).contains(&x));
            seen_lo |= x == 10;
            seen_hi |= x == 12;
        }
        assert!(seen_lo && seen_hi, "endpoints should both occur");
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SplitMix64::new(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean was {mean}");
    }

    #[test]
    fn bool_probability_roughly_right() {
        let mut r = SplitMix64::new(8);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac was {frac}");
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = SplitMix64::new(9);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 buckets over 160k draws: each should be near 10k.
        let mut r = SplitMix64::new(10);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!(
                (9_500..10_500).contains(b),
                "bucket {i} had {b} (expected ~10000)"
            );
        }
    }
}
