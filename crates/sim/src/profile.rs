//! Simulated-cycle profiling primitives.
//!
//! [`CycleAccount`] accumulates charged simulated time (our "cycles")
//! against a `(cpu, context, stage, billed, account)` key and renders the
//! result as folded stacks — the input format of Brendan Gregg's
//! `flamegraph.pl` — plus per-process totals for cross-checking against
//! the scheduler's charge ledger.
//!
//! The accumulator is deliberately generic: contexts and stages are
//! `&'static str` labels chosen by the caller (the LRP host uses
//! `interrupt`, `softirq`, `app-thread`, `syscall`, `user`, …), billed
//! processes are raw pid numbers.
//!
//! `add` sits on the CPU engine's charging hot path, so accumulation is
//! keyed by the *pointer identity* of the static labels (a cheap integer
//! hash, no string comparisons); every export merges and sorts by label
//! content, so iteration order — and therefore every report — stays
//! deterministic even if the compiler hands out several addresses for
//! one literal.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// One attribution key: where a slice of charged time landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CycleKey {
    /// CPU index the chunk ran on.
    pub cpu: u32,
    /// Execution context (`interrupt`, `softirq`, `syscall`, `user`, …).
    pub context: &'static str,
    /// Pipeline stage within the context (`ip-input`, `recv`, …).
    pub stage: &'static str,
    /// Process the time was billed to; `None` when the chunk ran with no
    /// process context (e.g. an interrupt taken while idle).
    pub billed: Option<u32>,
    /// Accounting bucket label (`user`/`system`/`interrupt`), when billed.
    pub account: Option<&'static str>,
}

/// Multiplicative folding hasher for small fixed-width keys (integer
/// ids, label addresses) — a fraction of SipHash's cost. Not
/// collision-resistant against adversarial keys; use only for
/// simulator-internal identifiers.
#[derive(Clone, Default)]
pub struct FoldHasher(u64);

impl Hasher for FoldHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed by [`FoldHasher`] — the simulator's hot-path map
/// for integer-keyed lookups (pids, socket ids, channel ids).
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FoldHasher>>;

/// Pointer-identity form of a [`CycleKey`]: label addresses instead of
/// label contents. `billed` is offset by one so `None` is 0.
type IdKey = (u32, usize, usize, u64, usize);

fn id_key(k: &CycleKey) -> IdKey {
    (
        k.cpu,
        k.context.as_ptr() as usize,
        k.stage.as_ptr() as usize,
        k.billed.map(|p| p as u64 + 1).unwrap_or(0),
        k.account.map(|a| a.as_ptr() as usize).unwrap_or(0),
    )
}

/// Deterministic accumulator of charged simulated nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct CycleAccount {
    /// Accumulated entries, insertion-ordered; exports merge + sort.
    entries: Vec<(CycleKey, u64)>,
    index: HashMap<IdKey, usize, BuildHasherDefault<FoldHasher>>,
    /// Memo of the most recent `(id-key, slot)`: consecutive chunks on a
    /// busy host usually bill to the same key, and the hot path skips the
    /// hash-map probe entirely when they do.
    last: Option<(IdKey, usize)>,
}

impl CycleAccount {
    /// An empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` charged nanoseconds under `key`.
    #[inline]
    pub fn add(&mut self, key: CycleKey, ns: u64) {
        if ns == 0 {
            return;
        }
        let id = id_key(&key);
        if let Some((last_id, slot)) = self.last {
            if last_id == id {
                self.entries[slot].1 += ns;
                return;
            }
        }
        let slot = match self.index.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = *e.get();
                self.entries[slot].1 += ns;
                slot
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot = self.entries.len();
                v.insert(slot);
                self.entries.push((key, ns));
                slot
            }
        };
        self.last = Some((id, slot));
    }

    /// All entries merged by key content, in deterministic (key) order.
    fn merged(&self) -> BTreeMap<CycleKey, u64> {
        let mut out = BTreeMap::new();
        for &(k, v) in &self.entries {
            *out.entry(k).or_insert(0) += v;
        }
        out
    }

    /// All entries in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleKey, u64)> {
        self.merged().into_iter()
    }

    /// Total nanoseconds recorded.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Nanoseconds recorded per billed pid (unbilled time excluded).
    pub fn per_billed(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for &(k, v) in &self.entries {
            if let Some(pid) = k.billed {
                *out.entry(pid).or_insert(0) += v;
            }
        }
        out
    }

    /// Nanoseconds recorded per billed pid and account label.
    pub fn per_billed_account(&self) -> BTreeMap<(u32, &'static str), u64> {
        let mut out = BTreeMap::new();
        for &(k, v) in &self.entries {
            if let (Some(pid), Some(acct)) = (k.billed, k.account) {
                *out.entry((pid, acct)).or_insert(0) += v;
            }
        }
        out
    }

    /// Nanoseconds recorded per context label.
    pub fn per_context(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for &(k, v) in &self.entries {
            *out.entry(k.context).or_insert(0) += v;
        }
        out
    }

    /// Folded-stack rendering: one line per `(host, cpu, context, stage)`
    /// stack with the summed sample count (nanoseconds), suitable for
    /// `flamegraph.pl`. Lines are sorted, counts merged across billed
    /// processes.
    pub fn folded(&self, host: &str) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for &(k, v) in &self.entries {
            let frame = format!("{host};cpu{};{};{}", k.cpu, k.context, k.stage);
            *merged.entry(frame).or_insert(0) += v;
        }
        let mut out = String::new();
        for (frame, count) in merged {
            out.push_str(&frame);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cpu: u32, ctx: &'static str, stage: &'static str, billed: Option<u32>) -> CycleKey {
        CycleKey {
            cpu,
            context: ctx,
            stage,
            billed,
            account: billed.map(|_| "system"),
        }
    }

    #[test]
    fn totals_and_per_billed() {
        let mut a = CycleAccount::new();
        a.add(key(0, "softirq", "ip-input", Some(1)), 100);
        a.add(key(0, "softirq", "ip-input", Some(1)), 50);
        a.add(key(0, "interrupt", "rx-intr", None), 30);
        a.add(key(1, "user", "compute", Some(2)), 20);
        assert_eq!(a.total(), 200);
        let per = a.per_billed();
        assert_eq!(per.get(&1), Some(&150));
        assert_eq!(per.get(&2), Some(&20));
        assert_eq!(a.per_context().get(&"interrupt"), Some(&30));
    }

    #[test]
    fn zero_adds_are_ignored() {
        let mut a = CycleAccount::new();
        a.add(key(0, "user", "compute", Some(1)), 0);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn iter_is_sorted_and_merged() {
        let mut a = CycleAccount::new();
        a.add(key(1, "user", "compute", Some(2)), 20);
        a.add(key(0, "softirq", "ip-input", Some(1)), 100);
        // Same logical key through a runtime-built address must merge
        // with the literal's entry in exports.
        let ctx: &'static str = Box::leak(String::from("softirq").into_boxed_str());
        a.add(key(0, ctx, "ip-input", Some(1)), 11);
        let got: Vec<(CycleKey, u64)> = a.iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.context, "softirq");
        assert_eq!(got[0].1, 111);
        assert_eq!(got[1].0.context, "user");
        assert_eq!(a.total(), 131);
    }

    #[test]
    fn folded_merges_billed_processes_and_sorts() {
        let mut a = CycleAccount::new();
        a.add(key(0, "softirq", "ip-input", Some(2)), 7);
        a.add(key(0, "softirq", "ip-input", Some(1)), 5);
        a.add(key(0, "interrupt", "rx-intr", None), 3);
        let f = a.folded("hostB");
        assert_eq!(
            f,
            "hostB;cpu0;interrupt;rx-intr 3\nhostB;cpu0;softirq;ip-input 12\n"
        );
    }
}
