//! Simulated-cycle profiling primitives.
//!
//! [`CycleAccount`] accumulates charged simulated time (our "cycles")
//! against a `(cpu, context, stage, billed, account)` key and renders the
//! result as folded stacks — the input format of Brendan Gregg's
//! `flamegraph.pl` — plus per-process totals for cross-checking against
//! the scheduler's charge ledger.
//!
//! The accumulator is deliberately generic: contexts and stages are
//! `&'static str` labels chosen by the caller (the LRP host uses
//! `interrupt`, `softirq`, `app-thread`, `syscall`, `user`, …), billed
//! processes are raw pid numbers. Storage is a `BTreeMap`, so iteration —
//! and therefore every export — is deterministic.

use std::collections::BTreeMap;

/// One attribution key: where a slice of charged time landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CycleKey {
    /// CPU index the chunk ran on.
    pub cpu: u32,
    /// Execution context (`interrupt`, `softirq`, `syscall`, `user`, …).
    pub context: &'static str,
    /// Pipeline stage within the context (`ip-input`, `recv`, …).
    pub stage: &'static str,
    /// Process the time was billed to; `None` when the chunk ran with no
    /// process context (e.g. an interrupt taken while idle).
    pub billed: Option<u32>,
    /// Accounting bucket label (`user`/`system`/`interrupt`), when billed.
    pub account: Option<&'static str>,
}

/// Deterministic accumulator of charged simulated nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct CycleAccount {
    cycles: BTreeMap<CycleKey, u64>,
}

impl CycleAccount {
    /// An empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` charged nanoseconds under `key`.
    pub fn add(&mut self, key: CycleKey, ns: u64) {
        if ns > 0 {
            *self.cycles.entry(key).or_insert(0) += ns;
        }
    }

    /// All entries in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&CycleKey, &u64)> {
        self.cycles.iter()
    }

    /// Total nanoseconds recorded.
    pub fn total(&self) -> u64 {
        self.cycles.values().sum()
    }

    /// Nanoseconds recorded per billed pid (unbilled time excluded).
    pub fn per_billed(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.cycles {
            if let Some(pid) = k.billed {
                *out.entry(pid).or_insert(0) += v;
            }
        }
        out
    }

    /// Nanoseconds recorded per billed pid and account label.
    pub fn per_billed_account(&self) -> BTreeMap<(u32, &'static str), u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.cycles {
            if let (Some(pid), Some(acct)) = (k.billed, k.account) {
                *out.entry((pid, acct)).or_insert(0) += v;
            }
        }
        out
    }

    /// Nanoseconds recorded per context label.
    pub fn per_context(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.cycles {
            *out.entry(k.context).or_insert(0) += v;
        }
        out
    }

    /// Folded-stack rendering: one line per `(host, cpu, context, stage)`
    /// stack with the summed sample count (nanoseconds), suitable for
    /// `flamegraph.pl`. Lines are sorted, counts merged across billed
    /// processes.
    pub fn folded(&self, host: &str) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for (k, v) in &self.cycles {
            let frame = format!("{host};cpu{};{};{}", k.cpu, k.context, k.stage);
            *merged.entry(frame).or_insert(0) += v;
        }
        let mut out = String::new();
        for (frame, count) in merged {
            out.push_str(&frame);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cpu: u32, ctx: &'static str, stage: &'static str, billed: Option<u32>) -> CycleKey {
        CycleKey {
            cpu,
            context: ctx,
            stage,
            billed,
            account: billed.map(|_| "system"),
        }
    }

    #[test]
    fn totals_and_per_billed() {
        let mut a = CycleAccount::new();
        a.add(key(0, "softirq", "ip-input", Some(1)), 100);
        a.add(key(0, "softirq", "ip-input", Some(1)), 50);
        a.add(key(0, "interrupt", "rx-intr", None), 30);
        a.add(key(1, "user", "compute", Some(2)), 20);
        assert_eq!(a.total(), 200);
        let per = a.per_billed();
        assert_eq!(per.get(&1), Some(&150));
        assert_eq!(per.get(&2), Some(&20));
        assert_eq!(a.per_context().get(&"interrupt"), Some(&30));
    }

    #[test]
    fn zero_adds_are_ignored() {
        let mut a = CycleAccount::new();
        a.add(key(0, "user", "compute", Some(1)), 0);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn folded_merges_billed_processes_and_sorts() {
        let mut a = CycleAccount::new();
        a.add(key(0, "softirq", "ip-input", Some(2)), 7);
        a.add(key(0, "softirq", "ip-input", Some(1)), 5);
        a.add(key(0, "interrupt", "rx-intr", None), 3);
        let f = a.folded("hostB");
        assert_eq!(
            f,
            "hostB;cpu0;interrupt;rx-intr 3\nhostB;cpu0;softirq;ip-input 12\n"
        );
    }
}
