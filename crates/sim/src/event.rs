//! The event queue at the heart of the simulation.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by
//! time, with ties broken by insertion order (FIFO). Every scheduled event
//! gets an [`EventKey`] that can be used to cancel it later — cancellation
//! is how the CPU model revokes a "work completes at T" event when an
//! interrupt preempts the work.
//!
//! Two interchangeable implementations sit behind the facade, selected
//! by [`QueueImpl`]:
//!
//! * [`TimerWheel`](crate::wheel::TimerWheel) — the default: a
//!   hierarchical timer wheel with O(1) schedule and a cancel that
//!   *removes* the entry, so cancelled timers cost nothing afterwards.
//! * [`HeapQueue`](crate::heap::HeapQueue) — the original binary heap
//!   (bloat-fixed), kept for A/B benchmarking and as the equivalence
//!   oracle in the dual-implementation property test.
//!
//! Both pop in identical `(time, seq)` order, so world execution — and
//! every golden digest — is bit-identical whichever is active. Build
//! with the `heap-queue` feature to flip the default back to the heap.

use crate::heap::HeapQueue;
use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// A handle identifying one scheduled event, usable for cancellation.
///
/// Carries the event's sequence number and due time; the timer wheel
/// recomputes the entry's slot from the time, which is what makes its
/// cancel O(1) without a per-entry index map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey {
    seq: u64,
    time: SimTime,
}

impl EventKey {
    pub(crate) fn new(seq: u64, time: SimTime) -> Self {
        EventKey { seq, time }
    }

    pub(crate) fn seq(self) -> u64 {
        self.seq
    }

    pub(crate) fn time(self) -> SimTime {
        self.time
    }
}

/// Which event-queue implementation an [`EventQueue`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueImpl {
    /// Hierarchical timer wheel (the default).
    Wheel,
    /// Legacy binary heap with lazy-cancel compaction.
    Heap,
}

impl QueueImpl {
    /// The build default: the wheel, unless the `heap-queue` feature
    /// flips it back to the legacy heap.
    pub fn default_impl() -> Self {
        if cfg!(feature = "heap-queue") {
            QueueImpl::Heap
        } else {
            QueueImpl::Wheel
        }
    }
}

enum Inner<E> {
    Wheel(TimerWheel<E>),
    Heap(HeapQueue<E>),
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which keeps multi-component simulations reproducible.
pub struct EventQueue<E> {
    inner: Inner<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the build-default implementation.
    pub fn new() -> Self {
        Self::with_impl(QueueImpl::default_impl())
    }

    /// Creates an empty queue backed by the given implementation.
    pub fn with_impl(imp: QueueImpl) -> Self {
        let inner = match imp {
            QueueImpl::Wheel => Inner::Wheel(TimerWheel::new()),
            QueueImpl::Heap => Inner::Heap(HeapQueue::new()),
        };
        EventQueue { inner }
    }

    /// Which implementation backs this queue.
    pub fn queue_impl(&self) -> QueueImpl {
        match &self.inner {
            Inner::Wheel(_) => QueueImpl::Wheel,
            Inner::Heap(_) => QueueImpl::Heap,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// Returns a key that can cancel the event as long as it has not fired.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        match &mut self.inner {
            Inner::Wheel(w) => w.schedule(time, event),
            Inner::Heap(h) => h.schedule(time, event),
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now cancelled),
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match &mut self.inner {
            Inner::Wheel(w) => w.cancel(key),
            Inner::Heap(h) => h.cancel(key),
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop(),
            Inner::Heap(h) => h.pop(),
        }
    }

    /// Removes and returns the earliest pending event if it is due at or
    /// before `limit` — the event-loop fast path (one scan, not a
    /// peek/pop pair).
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop_before(limit),
            Inner::Heap(h) => h.pop_before(limit),
        }
    }

    /// The time of the earliest pending event, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Wheel(w) => w.peek_time(),
            Inner::Heap(h) => h.peek_time(),
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len(),
            Inner::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        match &self.inner {
            Inner::Wheel(w) => w.is_empty(),
            Inner::Heap(h) => h.is_empty(),
        }
    }

    /// Entries physically stored, including any dead weight the backing
    /// implementation has not reclaimed yet. The bloat regression test
    /// pins this to O(live) for both implementations.
    pub fn internal_len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.internal_len(),
            Inner::Heap(h) => h.internal_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Runs a closure against a fresh queue of each implementation.
    fn for_both(case: impl Fn(EventQueue<i32>)) {
        case(EventQueue::with_impl(QueueImpl::Wheel));
        case(EventQueue::with_impl(QueueImpl::Heap));
    }

    fn for_both_str(case: impl Fn(EventQueue<&'static str>)) {
        case(EventQueue::with_impl(QueueImpl::Wheel));
        case(EventQueue::with_impl(QueueImpl::Heap));
    }

    #[test]
    fn pops_in_time_order() {
        for_both(|mut q| {
            q.schedule(t(30), 3);
            q.schedule(t(10), 1);
            q.schedule(t(20), 2);
            assert_eq!(q.pop(), Some((t(10), 1)));
            assert_eq!(q.pop(), Some((t(20), 2)));
            assert_eq!(q.pop(), Some((t(30), 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_fifo() {
        for_both(|mut q| {
            for i in 0..100 {
                q.schedule(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t(5), i)));
            }
        });
    }

    #[test]
    fn cancel_removes_event() {
        for_both_str(|mut q| {
            let k1 = q.schedule(t(10), "a");
            q.schedule(t(20), "b");
            assert!(q.cancel(k1));
            assert!(!q.cancel(k1), "double cancel must fail");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((t(20), "b")));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn cancel_after_fire_fails() {
        for_both_str(|mut q| {
            let k = q.schedule(t(10), "a");
            assert_eq!(q.pop(), Some((t(10), "a")));
            assert!(!q.cancel(k));
        });
    }

    #[test]
    fn peek_skips_cancelled() {
        for_both_str(|mut q| {
            let k = q.schedule(t(10), "a");
            q.schedule(t(20), "b");
            q.cancel(k);
            assert_eq!(q.peek_time(), Some(t(20)));
            assert_eq!(q.pop(), Some((t(20), "b")));
        });
    }

    #[test]
    fn len_tracks_live_events() {
        for_both(|mut q| {
            assert!(q.is_empty());
            let a = q.schedule(t(1), 1);
            let _b = q.schedule(t(2), 2);
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            q.pop();
            assert_eq!(q.len(), 0);
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for_both(|mut q| {
            q.schedule(t(10), 1);
            let (now, e) = q.pop().unwrap();
            assert_eq!(e, 1);
            q.schedule(now + SimDuration::from_micros(5), 2);
            q.schedule(now + SimDuration::from_micros(1), 3);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 2);
        });
    }

    /// The lazy-cancel bloat regression: schedule and cancel 100k timers
    /// (the TCP rexmt churn pattern) and require the physical size to
    /// stay bounded by the live population, not the churn count.
    #[test]
    fn cancel_churn_keeps_internal_size_bounded() {
        for_both(|mut q| {
            // A small stable population, like a host's standing timers.
            for i in 0..8 {
                q.schedule(t(1_000_000 + i as u64), i);
            }
            for i in 0..100_000u64 {
                let k = q.schedule(t(100 + (i % 50)), 42);
                assert!(q.cancel(k));
                assert_eq!(q.len(), 8);
                assert!(
                    q.internal_len() <= 2 * q.len() + 64,
                    "internal size {} ballooned past bound at churn {}",
                    q.internal_len(),
                    i
                );
            }
            // Everything still pops, in order.
            for i in 0..8 {
                assert_eq!(q.pop(), Some((t(1_000_000 + i as u64), i)));
            }
            assert_eq!(q.pop(), None);
        });
    }
}
