//! The event queue at the heart of the simulation.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by
//! time, with ties broken by insertion order (FIFO). Every scheduled event
//! gets an [`EventKey`] that can be used to cancel it later — cancellation
//! is how the CPU model revokes a "work completes at T" event when an
//! interrupt preempts the work.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// A handle identifying one scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which keeps multi-component simulations reproducible.
///
/// Cancellation is lazy: cancelled entries stay in the heap and are skipped
/// on pop, so `cancel` is O(1) and `pop` is amortized O(log n).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are scheduled and neither fired nor
    /// cancelled. Heap entries whose seq is absent are skipped on pop.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// Returns a key that can cancel the event as long as it has not fired.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now cancelled),
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.pending.remove(&key.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.time, entry.event));
            }
        }
        None
    }

    /// The time of the earliest pending event, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel must fail");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_fails() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert!(!q.cancel(k));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        let _b = q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        let (now, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.schedule(now + SimDuration::from_micros(5), 2);
        q.schedule(now + SimDuration::from_micros(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
