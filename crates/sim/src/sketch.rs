//! A DDSketch-style mergeable quantile sketch with a configurable
//! relative-error guarantee.
//!
//! [`QuantileSketch`] buckets non-negative integer samples (latencies in
//! nanoseconds) into exponentially spaced buckets, like DDSketch's
//! log-gamma mapping, but the index function is pure integer arithmetic
//! (leading-zero count + mantissa bits) so the sketch is deterministic
//! bit-for-bit across runs and across [`merge`](QuantileSketch::merge)
//! orders: merging per-CPU (or per-host, or per-seed) shards produces a
//! state identical to recording the whole stream into one sketch. There
//! are no floats anywhere in the recorded state.
//!
//! With `k` sub-buckets per power of two, every bucket's width is at most
//! `2/k` of its lower bound, so reporting a quantile as its bucket's
//! lower bound under-estimates the true sample by strictly less than a
//! `2/k` relative error. [`with_relative_error`]
//! (QuantileSketch::with_relative_error) picks the smallest power-of-two
//! `k` meeting a requested bound; the effective guarantee is exposed by
//! [`relative_error`](QuantileSketch::relative_error).
//!
//! This is the fleet-grade counterpart to the exact [`Histogram`]
//! (crate::Histogram): cheaper per-sample, bounded-error, and mergeable
//! across CPUs/hosts, where the exact histogram serves as the in-tree
//! equivalence reference.

use crate::time::SimDuration;

/// Default relative-error target: 1%.
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// A deterministic, mergeable, bounded-relative-error quantile sketch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    /// log2 of the sub-bucket count per power of two.
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates a sketch with the default 1% relative-error guarantee.
    pub fn new() -> Self {
        Self::with_relative_error(DEFAULT_RELATIVE_ERROR)
    }

    /// Creates a sketch whose quantile estimates are within `alpha`
    /// relative error of the true sample values.
    ///
    /// The guarantee is one-sided: estimates never exceed the true
    /// quantile and undershoot it by strictly less than `alpha * value`.
    /// `alpha` is rounded down to the nearest `2 / 2^b` (power-of-two
    /// sub-bucketing), clamped to `[2^-9, 1/2]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and positive.
    pub fn with_relative_error(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "invalid relative error: {alpha}"
        );
        // Smallest b with 2 / 2^b <= alpha, i.e. bucket width <= alpha.
        let mut sub_bits = 2u32;
        while sub_bits < 10 && 2.0 / (1u64 << sub_bits) as f64 > alpha {
            sub_bits += 1;
        }
        QuantileSketch {
            sub_bits,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Highest valid bucket index (the bucket of `u64::MAX`).
    fn last_index(&self) -> usize {
        let subs = 1usize << self.sub_bits;
        ((64 - self.sub_bits as usize) + 1) * subs - 1
    }

    /// The guaranteed relative-error bound of this sketch (`2 / 2^b`).
    pub fn relative_error(&self) -> f64 {
        2.0 / (1u64 << self.sub_bits) as f64
    }

    fn index_of(&self, value: u64) -> usize {
        let subs = 1u64 << self.sub_bits;
        if value < subs {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64;
        let shift = msb - self.sub_bits as u64 + 1;
        let exp = shift as usize;
        let mantissa = ((value >> shift) - subs / 2) as usize;
        subs as usize + exp * (subs as usize / 2) + mantissa - (subs as usize / 2)
    }

    fn value_of(&self, index: usize) -> u64 {
        let subs = 1usize << self.sub_bits;
        if index < subs {
            return index as u64;
        }
        let rel = index - subs / 2;
        let exp = rel / (subs / 2);
        let mantissa = rel % (subs / 2) + subs / 2;
        (mantissa as u64) << exp
    }

    /// Records one sample.
    ///
    /// Bucket storage grows lazily to the highest index touched, so a
    /// sketch's cache footprint tracks its sample range (microsecond
    /// latencies touch a few kilobytes, not the full 64-octave table).
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value).min(self.last_index());
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (exact), or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `q` in `[0, 1]`, within the sketch's
    /// relative-error bound. A quantile resolving to the highest occupied
    /// bucket reports the exact tracked maximum, so `quantile(1.0) ==
    /// max()`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "invalid quantile: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                if seen == self.count {
                    return self.max;
                }
                return self.value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Because the state is pure integer
    /// counters, the result is bit-for-bit identical to having recorded
    /// both streams into one sketch, in any order and any sharding.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different relative-error
    /// parameters (their buckets are not alignable).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge sketches with different relative-error parameters"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn small_values_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..100 {
            s.record(v);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 99);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 99);
    }

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn relative_error_parameter_rounding() {
        assert!(QuantileSketch::with_relative_error(0.01).relative_error() <= 0.01);
        assert!(QuantileSketch::with_relative_error(0.5).relative_error() <= 0.5);
        // Clamped at b=10 (~0.2%): asking for finer keeps the floor.
        let fine = QuantileSketch::with_relative_error(1e-9);
        assert!((fine.relative_error() - 2.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_within_relative_error_of_sorted_truth() {
        let mut s = QuantileSketch::with_relative_error(0.01);
        let mut vals: Vec<u64> = Vec::new();
        let mut rng = SplitMix64::new(42);
        for _ in 0..50_000 {
            // Heavy-tailed-ish spread over six decades.
            let v = 1 + rng.next_below(1_000) * (1 + rng.next_below(1_000_000));
            s.record(v);
            vals.push(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 0.9999] {
            let target = ((q * vals.len() as f64).ceil() as usize).max(1);
            let truth = vals[target - 1];
            let est = s.quantile(q);
            assert!(est <= truth, "q={q}: est {est} exceeds truth {truth}");
            let err = (truth - est) as f64 / truth as f64;
            assert!(
                err < s.relative_error(),
                "q={q}: err {err} (est {est}, truth {truth})"
            );
        }
    }

    #[test]
    fn shard_merge_is_bit_identical_to_whole_stream() {
        let mut whole = QuantileSketch::new();
        let mut shards = vec![QuantileSketch::new(); 4];
        let mut rng = SplitMix64::new(7);
        for i in 0..20_000u64 {
            let v = rng.next_below(1 << 40);
            whole.record(v);
            shards[(i % 4) as usize].record(v);
        }
        // Merge in a scrambled order: still bit-identical.
        let mut merged = QuantileSketch::new();
        for idx in [2usize, 0, 3, 1] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.quantile(0.999), whole.quantile(0.999));
    }

    #[test]
    fn rerun_same_seed_is_bit_identical() {
        let run = |seed: u64| {
            let mut s = QuantileSketch::new();
            let mut rng = SplitMix64::new(seed);
            for _ in 0..10_000 {
                s.record(rng.next_below(1 << 50));
            }
            s
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "different relative-error parameters")]
    fn merge_rejects_mismatched_parameters() {
        let mut a = QuantileSketch::with_relative_error(0.01);
        let b = QuantileSketch::with_relative_error(0.25);
        a.merge(&b);
    }

    #[test]
    fn top_bucket_reports_exact_max() {
        let mut s = QuantileSketch::new();
        s.record(1_000_000_007);
        assert_eq!(s.quantile(0.5), 1_000_000_007);
        assert_eq!(s.quantile(1.0), 1_000_000_007);
        s.record(u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_edges_roundtrip() {
        let s = QuantileSketch::new();
        let last = s.index_of(u64::MAX);
        for idx in 0..=last {
            let v = s.value_of(idx);
            assert_eq!(s.index_of(v), idx, "edge v={v}");
            if v > 0 {
                assert_eq!(s.index_of(v - 1), idx - 1, "below edge v={v}");
            }
        }
    }
}
