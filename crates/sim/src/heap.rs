//! The legacy binary-heap event queue, kept for A/B comparison.
//!
//! This is the original `EventQueue` implementation with its bloat bug
//! fixed: cancellation used to be fully lazy (dead entries lingered in
//! the heap until they surfaced at the top), so timer churn — every TCP
//! ACK cancelling and rescheduling the retransmit timer — grew the heap
//! without bound. Two repairs keep it honest:
//!
//! 1. after any `pop` or `cancel`, dead entries are purged off the top,
//!    so the heap top is always live and `peek_time` can take `&self`;
//! 2. when dead entries outnumber live ones, the heap is compacted by
//!    rebuilding it from the live entries only.
//!
//! Together these bound the physical size to O(live), pinned by the
//! 100k schedule+cancel regression test in `event.rs`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::event::EventKey;
use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue backed by a binary heap.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are scheduled and neither fired
    /// nor cancelled. Heap entries whose seq is absent are dead weight.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`; returns its cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventKey::new(seq, time)
    }

    /// Drops dead entries off the top so the top is always pending, and
    /// compacts the heap when dead weight outnumbers live entries.
    fn purge(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
        if self.heap.len() > 2 * self.pending.len() + 64 {
            let pending = &self.pending;
            let live: Vec<Entry<E>> = std::mem::take(&mut self.heap)
                .into_iter()
                .filter(|e| pending.contains(&e.seq))
                .collect();
            self.heap = BinaryHeap::from(live);
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now
    /// cancelled), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let hit = self.pending.remove(&key.seq());
        if hit {
            self.purge();
        }
        hit
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(self.pending.contains(&entry.seq), "heap top must be live");
        self.pending.remove(&entry.seq);
        self.purge();
        Some((entry.time, entry.event))
    }

    /// Removes and returns the earliest pending event if it is due at or
    /// before `limit`.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.time > limit {
            return None;
        }
        self.pop()
    }

    /// The time of the earliest pending event, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // purge() keeps the invariant that the heap top is always live.
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Entries physically stored, live or dead — bounded to O(live) by
    /// the compaction rule.
    pub fn internal_len(&self) -> usize {
        self.heap.len()
    }
}
