//! Property tests for the simulation engine: the event queue against a
//! reference model, and statistics invariants.

use lrp_sim::{EventQueue, Histogram, QueueImpl, RateSeries, SimDuration, SimTime, Welford};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum QOp {
    Schedule { at_us: u64 },
    Cancel { which: usize },
    Pop,
}

fn arb_qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0u64..1_000).prop_map(|at_us| QOp::Schedule { at_us }),
        any::<usize>().prop_map(|which| QOp::Cancel { which }),
        Just(QOp::Pop),
    ]
}

proptest! {
    /// The event queue agrees with a naive reference (sorted vec with
    /// stable ordering) under arbitrary schedule/cancel/pop interleavings.
    #[test]
    fn event_queue_matches_reference(ops in proptest::collection::vec(arb_qop(), 1..300)) {
        let mut q = EventQueue::new();
        // Reference: (time, seq, payload, cancelled)
        let mut reference: Vec<(SimTime, u64, u64, bool)> = Vec::new();
        let mut keys = Vec::new();
        let mut next_payload = 0u64;
        for op in ops {
            match op {
                QOp::Schedule { at_us } => {
                    let t = SimTime::from_micros(at_us);
                    let k = q.schedule(t, next_payload);
                    keys.push(k);
                    reference.push((t, next_payload, next_payload, false));
                    next_payload += 1;
                }
                QOp::Cancel { which } => {
                    if !keys.is_empty() {
                        let idx = which % keys.len();
                        let k = keys[idx];
                        let r = q.cancel(k);
                        // Reference: cancellable iff still present & live.
                        let ref_hit = reference
                            .iter_mut()
                            .find(|(_, seq, _, dead)| *seq == idx as u64 && !dead);
                        match ref_hit {
                            Some(entry) => {
                                prop_assert!(r, "queue refused a live cancel");
                                entry.3 = true;
                            }
                            None => prop_assert!(!r, "queue cancelled a dead event"),
                        }
                    }
                }
                QOp::Pop => {
                    // Reference pop: earliest (time, seq) among live.
                    let best = reference
                        .iter()
                        .enumerate()
                        .filter(|(_, (.., dead))| !dead)
                        .min_by_key(|(_, (t, seq, ..))| (*t, *seq))
                        .map(|(i, _)| i);
                    let got = q.pop();
                    match best {
                        Some(i) => {
                            let (t, _, payload, _) = reference[i];
                            prop_assert_eq!(got, Some((t, payload)));
                            reference[i].3 = true;
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
            }
            prop_assert_eq!(
                q.len(),
                reference.iter().filter(|(.., dead)| !dead).count()
            );
        }
    }

    /// The timer wheel and the legacy heap produce byte-identical
    /// behaviour under arbitrary schedule/cancel/pop interleavings:
    /// same keys, same cancel verdicts, same pop stream, same peeks.
    /// This is the equivalence proof that lets the wheel replace the
    /// heap without disturbing any golden digest.
    #[test]
    fn wheel_and_heap_pop_identical_streams(ops in proptest::collection::vec(arb_qop(), 1..400)) {
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut heap = EventQueue::with_impl(QueueImpl::Heap);
        let mut keys = Vec::new();
        let mut next_payload = 0u64;
        for op in ops {
            match op {
                QOp::Schedule { at_us } => {
                    let t = SimTime::from_micros(at_us);
                    let kw = wheel.schedule(t, next_payload);
                    let kh = heap.schedule(t, next_payload);
                    prop_assert_eq!(kw, kh, "keys diverged");
                    keys.push(kw);
                    next_payload += 1;
                }
                QOp::Cancel { which } => {
                    if !keys.is_empty() {
                        let k = keys[which % keys.len()];
                        prop_assert_eq!(wheel.cancel(k), heap.cancel(k), "cancel verdicts diverged");
                    }
                }
                QOp::Pop => {
                    prop_assert_eq!(wheel.pop(), heap.pop(), "pop streams diverged");
                }
            }
            prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peeks diverged");
            prop_assert_eq!(wheel.len(), heap.len(), "lengths diverged");
        }
        // Drain: the tails must match too.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h, "drain streams diverged");
            if w.is_none() {
                break;
            }
        }
    }

    /// Welford's mean equals the arithmetic mean to floating tolerance.
    #[test]
    fn welford_mean_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert_eq!(w.count(), xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    /// Histogram quantiles stay within bucket resolution of exact
    /// order statistics.
    #[test]
    fn histogram_quantile_accuracy(xs in proptest::collection::vec(0u64..10_000_000, 10..400)) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let approx = h.quantile(q);
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = sorted[rank - 1];
            // Bucket resolution is ~7%; allow 10% plus small absolute slack.
            let tolerance = (exact as f64 * 0.10) + 2.0;
            prop_assert!(
                (approx as f64 - exact as f64).abs() <= tolerance,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
    }

    /// Rate series conserve events: sum of buckets equals records.
    #[test]
    fn rate_series_conserves(events in proptest::collection::vec((0u64..10_000, 1u64..5), 0..300)) {
        let mut r = RateSeries::new(SimTime::ZERO, SimDuration::from_millis(100));
        let mut total = 0u64;
        for &(ms, n) in &events {
            r.record(SimTime::from_millis(ms), n);
            total += n;
        }
        prop_assert_eq!(r.buckets().iter().sum::<u64>(), total);
    }
}
