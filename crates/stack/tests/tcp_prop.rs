//! Property tests for TCP: the delivered byte stream equals the sent
//! stream — in order, without duplication or loss — under arbitrary
//! segment drops and reordering.

use lrp_sim::{SimDuration, SimTime};
use lrp_stack::tcp::{Segment, TcpConfig, TcpConn, TcpState};
use lrp_wire::{Endpoint, Ipv4Addr};
use proptest::prelude::*;

fn ep(last: u8, port: u16) -> Endpoint {
    Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
}

/// Runs a full transfer of `payload` from a to b through a lossy,
/// reordering network controlled by `decisions` (drop) and `delays`
/// (per-segment extra latency causing reorder). Returns the received
/// stream.
fn lossy_transfer(payload: &[u8], drops: &[bool], delays: &[u8]) -> Vec<u8> {
    let cfg = TcpConfig {
        mss: 1000,
        rto_min: SimDuration::from_millis(100),
        rto_init: SimDuration::from_millis(200),
        delack: None,
        ..TcpConfig::default()
    };
    let mut now = SimTime::ZERO;
    let mut a = TcpConn::new(cfg, ep(1, 1), ep(2, 2), 5000);
    // Events carried on a little event queue so delayed segments reorder.
    // Heap entries: (time_ns, seqno, direction, header bytes, payload).
    type WireEntry = std::cmp::Reverse<(u64, u64, u8, Vec<u8>, Vec<u8>)>;
    let mut queue: std::collections::BinaryHeap<WireEntry> = Default::default();
    let mut seqno = 0u64;
    let push = |queue: &mut std::collections::BinaryHeap<_>,
                seqno: &mut u64,
                now: SimTime,
                dir: u8,
                seg: Segment,
                extra_us: u64| {
        // Serialize header via wire format to keep the test honest.
        let hdr_bytes = lrp_wire::tcp::build(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            &seg.hdr,
            &[],
        );
        let t = now.as_nanos() + 100_000 + extra_us * 1_000;
        queue.push(std::cmp::Reverse((t, *seqno, dir, hdr_bytes, seg.payload)));
        *seqno += 1;
    };
    // Handshake (not subject to loss so every case converges fast).
    let acts = a.connect(now);
    let syn = acts.segments.into_iter().next().unwrap();
    let (mut b, acts_b) = TcpConn::accept_syn(cfg, ep(2, 2), ep(1, 1), 90_000, &syn.hdr, now);
    for s in acts_b.segments {
        push(&mut queue, &mut seqno, now, 1, s, 0);
    }
    let mut sent = 0usize;
    let mut received = Vec::new();
    let mut transmitted = 0usize; // Index into drops/delays.
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > 60_000 {
            panic!(
                "transfer did not converge: got {} of {}",
                received.len(),
                payload.len()
            );
        }
        // Feed data while there is send space.
        if sent < payload.len() && a.state == TcpState::Established {
            let (n, acts) = a.write(now, &payload[sent..]);
            sent += n;
            for s in acts.segments {
                let drop = *drops
                    .get(transmitted % drops.len().max(1))
                    .unwrap_or(&false);
                let delay = *delays.get(transmitted % delays.len().max(1)).unwrap_or(&0);
                transmitted += 1;
                if !drop {
                    push(&mut queue, &mut seqno, now, 0, s, delay as u64);
                }
            }
        }
        // Deliver next network event or fire next timer.
        let next_timer = [a.next_deadline(), b.next_deadline()]
            .into_iter()
            .flatten()
            .min();
        let next_pkt = queue.peek().map(|std::cmp::Reverse((t, ..))| *t);
        match (next_pkt, next_timer) {
            (None, None) => break,
            (pkt, timer) => {
                let take_pkt = match (pkt, timer) {
                    (Some(p), Some(t)) => p <= t.as_nanos(),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!(),
                };
                if take_pkt {
                    let std::cmp::Reverse((t, _, dir, hdr_bytes, pl)) = queue.pop().unwrap();
                    now = SimTime::from_nanos(t.max(now.as_nanos()));
                    let (hdr, _) = lrp_wire::tcp::parse(&hdr_bytes).unwrap();
                    let acts = if dir == 0 {
                        b.on_segment(now, &hdr, &pl)
                    } else {
                        a.on_segment(now, &hdr, &pl)
                    };
                    for s in acts.segments {
                        let from_a = dir == 1;
                        if from_a {
                            let drop = *drops
                                .get(transmitted % drops.len().max(1))
                                .unwrap_or(&false);
                            let delay =
                                *delays.get(transmitted % delays.len().max(1)).unwrap_or(&0);
                            transmitted += 1;
                            if !drop {
                                push(&mut queue, &mut seqno, now, 0, s, delay as u64);
                            }
                        } else {
                            // ACK path from b is lossless (loss there only
                            // slows convergence; data-path loss is the
                            // interesting property).
                            push(&mut queue, &mut seqno, now, 1, s, 0);
                        }
                    }
                } else {
                    now = next_timer.unwrap();
                    for (conn, dir) in [(&mut a, 0u8), (&mut b, 1u8)] {
                        if conn.next_deadline().is_some_and(|d| d <= now) {
                            let acts = conn.on_timer(now);
                            for s in acts.segments {
                                if dir == 0 {
                                    let drop = *drops
                                        .get(transmitted % drops.len().max(1))
                                        .unwrap_or(&false);
                                    transmitted += 1;
                                    if !drop {
                                        push(&mut queue, &mut seqno, now, 0, s, 0);
                                    }
                                } else {
                                    push(&mut queue, &mut seqno, now, 1, s, 0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let (chunk, acts) = b.read(usize::MAX);
        received.extend_from_slice(&chunk);
        for s in acts.segments {
            push(&mut queue, &mut seqno, now, 1, s, 0);
        }
        if received.len() >= payload.len() && sent >= payload.len() {
            break;
        }
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stream integrity under periodic loss patterns.
    #[test]
    fn stream_survives_loss(
        payload in proptest::collection::vec(any::<u8>(), 1..12_000),
        drops in proptest::collection::vec(prop::bool::weighted(0.12), 16..64),
    ) {
        let received = lossy_transfer(&payload, &drops, &[0]);
        prop_assert_eq!(received, payload);
    }

    /// Stream integrity under reordering (random extra per-segment delay).
    #[test]
    fn stream_survives_reorder(
        payload in proptest::collection::vec(any::<u8>(), 1..12_000),
        delays in proptest::collection::vec(0u8..200, 16..64),
    ) {
        let received = lossy_transfer(&payload, &[false], &delays);
        prop_assert_eq!(received, payload);
    }

    /// Stream integrity under loss and reorder combined.
    #[test]
    fn stream_survives_loss_and_reorder(
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        drops in proptest::collection::vec(prop::bool::weighted(0.08), 16..48),
        delays in proptest::collection::vec(0u8..150, 16..48),
    ) {
        let received = lossy_transfer(&payload, &drops, &delays);
        prop_assert_eq!(received, payload);
    }
}

mod fuzz {
    use lrp_sim::{SimDuration, SimTime};
    use lrp_stack::tcp::{TcpConfig, TcpConn, TcpState};
    use lrp_wire::tcp::TcpHeader;
    use lrp_wire::{Endpoint, Ipv4Addr};
    use proptest::prelude::*;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    fn arb_header() -> impl Strategy<Value = TcpHeader> {
        (
            any::<u32>(),
            any::<u32>(),
            0u8..0x40,
            any::<u16>(),
            proptest::option::of(100u16..10_000),
        )
            .prop_map(|(seq, ack, flags, window, mss)| TcpHeader {
                src_port: 2000,
                dst_port: 1000,
                seq,
                ack,
                flags,
                window,
                mss,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The state machine survives arbitrary segment streams without
        /// panicking, and its invariants hold: snd_una <= snd_nxt (in
        /// sequence space), buffers bounded, timers sane.
        #[test]
        fn random_segments_never_panic(
            segments in proptest::collection::vec(
                (arb_header(), proptest::collection::vec(any::<u8>(), 0..600)),
                1..80
            ),
            do_connect in any::<bool>(),
            writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..5),
        ) {
            let cfg = TcpConfig {
                mss: 1000,
                ..TcpConfig::default()
            };
            let mut now = SimTime::ZERO;
            let mut c = TcpConn::new(cfg, ep(1, 1000), ep(2, 2000), 123_456);
            if do_connect {
                let _ = c.connect(now);
            }
            for (i, (hdr, payload)) in segments.iter().enumerate() {
                now += SimDuration::from_micros(137);
                let acts = c.on_segment(now, hdr, payload);
                // Segments the machine emits must carry our ports.
                for s in &acts.segments {
                    prop_assert_eq!(s.hdr.src_port, 1000);
                    prop_assert_eq!(s.hdr.dst_port, 2000);
                    prop_assert!(s.payload.len() <= 1000, "respects MSS");
                }
                // Interleave app activity.
                if let Some(w) = writes.get(i % writes.len().max(1)) {
                    let _ = c.write(now, w);
                }
                let _ = c.read(usize::MAX);
                // Fire any due timer.
                if let Some(d) = c.next_deadline() {
                    if d <= now {
                        let _ = c.on_timer(now);
                    }
                }
                prop_assert!(c.available() <= cfg.rcv_buf);
                prop_assert!(c.send_space() <= cfg.snd_buf);
                if c.state == TcpState::Closed {
                    break;
                }
            }
        }
    }
}
