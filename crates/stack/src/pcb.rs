//! Protocol control block (PCB) tables.
//!
//! BSD finds the socket for an incoming packet by scanning a linked list
//! of PCBs (`in_pcblookup`), preferring the most specific match. The scan
//! cost grows with the number of sockets — a real problem for busy HTTP
//! servers (reference 16 in the paper; the Figure 5 experiment shortens TIME_WAIT
//! to keep it bounded). The table here reports the number of entries
//! examined so the host can charge a per-step cost, and the LRP kernels
//! can bypass it entirely (early demux already identified the socket).

use lrp_wire::{Endpoint, FlowKey};

/// A socket identifier (index into the host's socket table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u32);

#[derive(Clone, Copy, Debug)]
struct PcbEntry {
    key: FlowKey,
    sock: SockId,
}

/// The result of a PCB lookup: the match (if any) and how many entries
/// were examined (for cost accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// The matched socket.
    pub sock: Option<SockId>,
    /// Entries scanned during the lookup.
    pub steps: usize,
}

/// A linear-scan PCB table in 4.3BSD style.
#[derive(Debug, Default)]
pub struct PcbTable {
    entries: Vec<PcbEntry>,
}

impl PcbTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PcbTable {
            entries: Vec::new(),
        }
    }

    /// Number of PCBs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no PCBs exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a PCB. Duplicate keys are rejected.
    pub fn insert(&mut self, key: FlowKey, sock: SockId) -> Result<(), PcbError> {
        if self.entries.iter().any(|e| e.key == key) {
            return Err(PcbError::InUse);
        }
        self.entries.push(PcbEntry { key, sock });
        Ok(())
    }

    /// Removes the PCB with this exact key; returns its socket.
    pub fn remove(&mut self, key: &FlowKey) -> Option<SockId> {
        let pos = self.entries.iter().position(|e| e.key == *key)?;
        Some(self.entries.remove(pos).sock)
    }

    /// Removes every PCB belonging to `sock`.
    pub fn remove_socket(&mut self, sock: SockId) {
        self.entries.retain(|e| e.sock != sock);
    }

    /// BSD-style lookup: scans the whole list, preferring an exact 5-tuple
    /// match over a wildcard match, and reports the scan length.
    pub fn lookup(&self, proto: u8, local: Endpoint, remote: Endpoint) -> LookupResult {
        let mut wildcard: Option<SockId> = None;
        let mut steps = 0;
        for e in &self.entries {
            steps += 1;
            if e.key.proto != proto || e.key.local != local {
                continue;
            }
            if e.key.remote == remote {
                return LookupResult {
                    sock: Some(e.sock),
                    steps,
                };
            }
            if e.key.is_wildcard() && wildcard.is_none() {
                wildcard = Some(e.sock);
            }
        }
        LookupResult {
            sock: wildcard,
            steps,
        }
    }

    /// True if a key is present (for bind conflict checks).
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.entries.iter().any(|e| e.key == *key)
    }
}

/// PCB errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcbError {
    /// Address already in use.
    InUse,
}

impl std::fmt::Display for PcbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcbError::InUse => write!(f, "address already in use"),
        }
    }
}

impl std::error::Error for PcbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_wire::{proto, Ipv4Addr};

    const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const PEER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn ep(addr: Ipv4Addr, port: u16) -> Endpoint {
        Endpoint::new(addr, port)
    }

    #[test]
    fn exact_preferred_over_wildcard() {
        let mut t = PcbTable::new();
        t.insert(FlowKey::listening(proto::TCP, ep(LOCAL, 80)), SockId(1))
            .unwrap();
        t.insert(
            FlowKey::new(proto::TCP, ep(LOCAL, 80), ep(PEER, 999)),
            SockId(2),
        )
        .unwrap();
        let r = t.lookup(proto::TCP, ep(LOCAL, 80), ep(PEER, 999));
        assert_eq!(r.sock, Some(SockId(2)));
        let r2 = t.lookup(proto::TCP, ep(LOCAL, 80), ep(PEER, 1000));
        assert_eq!(r2.sock, Some(SockId(1)));
    }

    #[test]
    fn lookup_reports_scan_steps() {
        let mut t = PcbTable::new();
        for i in 0..50u16 {
            t.insert(
                FlowKey::new(proto::TCP, ep(LOCAL, 80), ep(PEER, 1000 + i)),
                SockId(i as u32),
            )
            .unwrap();
        }
        // Wildcard-only miss scans everything.
        let r = t.lookup(proto::TCP, ep(LOCAL, 81), ep(PEER, 1));
        assert_eq!(r.sock, None);
        assert_eq!(r.steps, 50);
        // Early exact hit scans a prefix.
        let r2 = t.lookup(proto::TCP, ep(LOCAL, 80), ep(PEER, 1000));
        assert_eq!(r2.steps, 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = PcbTable::new();
        let k = FlowKey::listening(proto::UDP, ep(LOCAL, 53));
        t.insert(k, SockId(1)).unwrap();
        assert_eq!(t.insert(k, SockId(2)), Err(PcbError::InUse));
        assert!(t.contains(&k));
    }

    #[test]
    fn remove_by_key_and_socket() {
        let mut t = PcbTable::new();
        let k1 = FlowKey::listening(proto::UDP, ep(LOCAL, 1));
        let k2 = FlowKey::listening(proto::UDP, ep(LOCAL, 2));
        let k3 = FlowKey::listening(proto::UDP, ep(LOCAL, 3));
        t.insert(k1, SockId(1)).unwrap();
        t.insert(k2, SockId(1)).unwrap();
        t.insert(k3, SockId(2)).unwrap();
        assert_eq!(t.remove(&k3), Some(SockId(2)));
        t.remove_socket(SockId(1));
        assert!(t.is_empty());
    }

    #[test]
    fn time_wait_bloat_increases_scan_cost() {
        // The Figure 5 phenomenon: thousands of TIME_WAIT PCBs make every
        // lookup expensive.
        let mut t = PcbTable::new();
        for i in 0..1000u32 {
            t.insert(
                FlowKey::new(proto::TCP, ep(LOCAL, 80), ep(PEER, (i % 60_000) as u16 + 1)),
                SockId(i),
            )
            .unwrap();
        }
        t.insert(FlowKey::listening(proto::TCP, ep(LOCAL, 80)), SockId(9999))
            .unwrap();
        let r = t.lookup(proto::TCP, ep(LOCAL, 80), ep(PEER, 60_001));
        assert_eq!(r.sock, Some(SockId(9999)));
        assert_eq!(r.steps, 1001, "wildcard hit requires a full scan");
    }
}
