//! Socket buffers: the BSD `sockbuf` in two flavours.
//!
//! [`DatagramQueue`] is the receive queue of a UDP socket: a bounded queue
//! of datagrams with byte accounting (`sbspace`). Packets arriving at a
//! full queue are dropped — under BSD this drop happens *after* all
//! protocol processing has been paid for, which is the waste LRP removes.
//!
//! [`ByteBuffer`] is the byte-stream buffer used by TCP for both send and
//! receive sides.

use lrp_wire::{Endpoint, FrameBuf};
use std::collections::VecDeque;

/// Minimum buffer space one datagram occupies: a small packet still
/// consumes a whole mbuf, and BSD's `sbspace` accounts for that (`sb_mbcnt`
/// against `sb_mbmax`). This is what bounds the socket queue to a few
/// hundred small packets rather than thousands.
pub const DGRAM_MIN_SPACE: usize = 128;

/// A received datagram: source endpoint and payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sender endpoint.
    pub from: Endpoint,
    /// Payload bytes (arena-backed: queueing and dequeueing a datagram
    /// moves a reference-counted buffer, never copies the bytes).
    pub payload: FrameBuf,
}

/// Statistics for a datagram queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DgramStats {
    /// Datagrams enqueued.
    pub enqueued: u64,
    /// Datagrams dropped because the buffer was full.
    pub dropped_full: u64,
    /// Datagrams dequeued by the application.
    pub dequeued: u64,
    /// Deepest the queue has ever been, in datagrams.
    pub peak_depth: u64,
}

/// A bounded queue of datagrams (UDP socket receive buffer).
#[derive(Debug)]
pub struct DatagramQueue {
    queue: VecDeque<Datagram>,
    bytes: usize,
    limit_bytes: usize,
    stats: DgramStats,
}

/// Default socket receive-buffer size (BSD default `sb_hiwat`).
pub const DEFAULT_SOCKBUF: usize = 41_600;

impl DatagramQueue {
    /// Creates a queue bounded at `limit_bytes` of payload.
    pub fn new(limit_bytes: usize) -> Self {
        DatagramQueue {
            queue: VecDeque::new(),
            bytes: 0,
            limit_bytes,
            stats: DgramStats::default(),
        }
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of queued datagrams.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DgramStats {
        self.stats
    }

    /// Space remaining, in bytes (`sbspace`).
    pub fn space(&self) -> usize {
        self.limit_bytes.saturating_sub(self.bytes)
    }

    /// Enqueues a datagram; returns false (counting the drop) if it does
    /// not fit. Every datagram occupies at least [`DGRAM_MIN_SPACE`]
    /// (mbuf-granularity accounting, as in BSD's `sbspace`).
    pub fn enqueue(&mut self, dgram: Datagram) -> bool {
        let cost = dgram.payload.len().max(DGRAM_MIN_SPACE);
        if self.bytes + cost > self.limit_bytes {
            self.stats.dropped_full += 1;
            return false;
        }
        self.bytes += cost;
        self.queue.push_back(dgram);
        self.stats.enqueued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.queue.len() as u64);
        true
    }

    /// Dequeues the oldest datagram.
    pub fn dequeue(&mut self) -> Option<Datagram> {
        let d = self.queue.pop_front()?;
        self.bytes -= d.payload.len().max(DGRAM_MIN_SPACE);
        self.stats.dequeued += 1;
        Some(d)
    }
}

/// A bounded FIFO byte buffer (TCP socket buffer).
#[derive(Debug)]
pub struct ByteBuffer {
    data: VecDeque<u8>,
    limit: usize,
}

impl ByteBuffer {
    /// Creates a buffer bounded at `limit` bytes.
    pub fn new(limit: usize) -> Self {
        ByteBuffer {
            data: VecDeque::new(),
            limit,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Free space in bytes.
    pub fn space(&self) -> usize {
        self.limit - self.data.len()
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Appends as much of `bytes` as fits; returns the number appended.
    pub fn write(&mut self, bytes: &[u8]) -> usize {
        let n = bytes.len().min(self.space());
        self.data.extend(&bytes[..n]);
        n
    }

    /// Removes and returns up to `n` bytes from the front.
    pub fn read(&mut self, n: usize) -> Vec<u8> {
        let take = n.min(self.data.len());
        self.data.drain(..take).collect()
    }

    /// Copies bytes `[offset, offset+n)` without removing them (for
    /// retransmission from the send buffer).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffered data.
    pub fn peek_at(&self, offset: usize, n: usize) -> Vec<u8> {
        assert!(offset + n <= self.data.len(), "peek beyond buffer");
        self.data.iter().skip(offset).take(n).copied().collect()
    }

    /// Discards `n` bytes from the front (data acknowledged by the peer).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the buffered data.
    pub fn discard(&mut self, n: usize) {
        assert!(n <= self.data.len(), "discard beyond buffer");
        self.data.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_wire::Ipv4Addr;

    fn from() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1234)
    }

    #[test]
    fn dgram_queue_fifo() {
        let mut q = DatagramQueue::new(1000);
        q.enqueue(Datagram {
            from: from(),
            payload: b"a".to_vec().into(),
        });
        q.enqueue(Datagram {
            from: from(),
            payload: b"b".to_vec().into(),
        });
        assert_eq!(q.dequeue().unwrap().payload, b"a");
        assert_eq!(q.dequeue().unwrap().payload, b"b");
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn dgram_queue_byte_limit() {
        let mut q = DatagramQueue::new(300);
        assert!(q.enqueue(Datagram {
            from: from(),
            payload: vec![0; 200].into()
        }));
        assert!(!q.enqueue(Datagram {
            from: from(),
            payload: vec![0; 200].into()
        }));
        assert_eq!(q.stats().dropped_full, 1);
        assert_eq!(q.space(), 100);
        q.dequeue();
        assert!(q.enqueue(Datagram {
            from: from(),
            payload: vec![0; 200].into()
        }));
    }

    #[test]
    fn dgram_queue_tracks_peak_depth() {
        let mut q = DatagramQueue::new(1000);
        let d = || Datagram {
            from: from(),
            payload: b"x".to_vec().into(),
        };
        assert_eq!(q.stats().peak_depth, 0);
        q.enqueue(d());
        q.enqueue(d());
        assert_eq!(q.stats().peak_depth, 2);
        // Draining does not lower the high-water mark...
        q.dequeue();
        q.dequeue();
        assert_eq!(q.stats().peak_depth, 2);
        // ...and a shallower refill does not raise it.
        q.enqueue(d());
        assert_eq!(q.stats().peak_depth, 2);
    }

    #[test]
    fn dgram_small_packets_cost_an_mbuf() {
        let mut q = DatagramQueue::new(2 * DGRAM_MIN_SPACE);
        assert!(q.enqueue(Datagram {
            from: from(),
            payload: vec![7].into()
        }));
        assert!(q.enqueue(Datagram {
            from: from(),
            payload: vec![7].into()
        }));
        assert!(!q.enqueue(Datagram {
            from: from(),
            payload: vec![7].into()
        }));
        assert_eq!(q.bytes(), 2 * DGRAM_MIN_SPACE);
    }

    #[test]
    fn byte_buffer_write_read() {
        let mut b = ByteBuffer::new(8);
        assert_eq!(b.write(b"hello"), 5);
        assert_eq!(b.write(b"world"), 3, "bounded at limit");
        assert_eq!(b.read(4), b"hell");
        assert_eq!(b.space(), 4);
        assert_eq!(b.read(100), b"owor");
        assert!(b.is_empty());
    }

    #[test]
    fn byte_buffer_peek_discard() {
        let mut b = ByteBuffer::new(100);
        b.write(b"abcdefgh");
        assert_eq!(b.peek_at(2, 3), b"cde");
        assert_eq!(b.len(), 8, "peek does not consume");
        b.discard(4);
        assert_eq!(b.peek_at(0, 2), b"ef");
    }

    #[test]
    #[should_panic]
    fn byte_buffer_peek_out_of_range() {
        let mut b = ByteBuffer::new(10);
        b.write(b"ab");
        let _ = b.peek_at(1, 5);
    }
}
