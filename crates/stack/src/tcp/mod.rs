//! The TCP state machine: RFC 793 connection management with pluggable
//! congestion control, ACK strategy, and loss recovery.
//!
//! The machine is *pure*: it consumes parsed segments and produces
//! [`Actions`] — segments to transmit and events for the socket layer. It
//! never performs I/O, takes no locks, and reads time only from arguments,
//! so the identical code runs under all four simulated architectures (the
//! paper's "all kernels execute the same networking code"), with the host
//! choosing the execution context and CPU charging policy.
//!
//! The module tree (see DESIGN.md §12 for the full contracts):
//!
//! - this file — the PCB core: connection management, sequence-space
//!   bookkeeping, buffers, timers, and the output engine. [`TcpConn`]
//!   owns every sequence number; the seams below never touch one.
//! - [`cc`] — [`cc::CongestionControl`]: `cwnd`/`ssthresh` ownership
//!   behind on-ack/on-loss/on-RTO/on-idle-restart hooks, with three
//!   controllers ([`cc::NewReno`] default, [`cc::Cubic`],
//!   [`cc::BbrLite`]) selected by [`TcpConfig::cc`].
//! - [`ack`] — [`ack::AckStrategy`]: delayed-ACK policy and dup-ACK
//!   emission ([`ack::AckEveryOther`], BSD's ack-every-other).
//! - [`recovery`] — [`recovery::LossRecovery`]: Karn/Jacobson RTT
//!   sampling, RTO clamping, exponential backoff, retry budget, and
//!   dup-ACK counting ([`recovery::RenoRecovery`]).
//!
//! Under the default modules the machine is bit-identical to the
//! pre-refactor monolithic `tcp.rs` — pinned by `tests/determinism.rs`,
//! `tests/chaos.rs`, and the cross-refactor goldens in
//! `tests/cc_golden.rs`.
//!
//! Implemented: 3-way handshake (active and passive), listen backlog
//! accounting, sliding-window data transfer, slow start + congestion
//! avoidance, fast retransmit on three duplicate ACKs, RTO with Karn's
//! rule and exponential backoff, delayed ACKs, zero-window probing,
//! FIN teardown in all orders, TIME_WAIT with a configurable duration
//! (the paper's Figure 5 sets 500 ms), and RST handling.
//!
//! Not implemented (irrelevant to the paper's experiments, documented for
//! honesty): urgent data, window scaling, SACK, timestamps/PAWS, Nagle.

use crate::sockbuf::ByteBuffer;
use crate::SockId;
use lrp_sim::{SimDuration, SimTime};
use lrp_wire::tcp::{flags, seq_ge, seq_gt, seq_le, seq_lt, TcpHeader};
use lrp_wire::Endpoint;
use std::collections::{BTreeMap, VecDeque};

pub mod ack;
pub mod cc;
pub mod cookie;
pub mod recovery;

pub use ack::{AckDecision, AckStrategy};
pub use cc::{CcAlgo, CongestionControl};
pub use recovery::{LossRecovery, RenoRecovery};

use ack::AckEveryOther;

/// TCP connection states (RFC 793).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open (represented by [`TcpListener`], never by a conn).
    Listen,
    /// Active open: SYN sent.
    SynSent,
    /// Passive open: SYN received, SYN|ACK sent.
    SynReceived,
    /// Data transfer.
    Established,
    /// Our close sent, awaiting its ACK and the peer's FIN.
    FinWait1,
    /// Our FIN acked; awaiting peer's FIN.
    FinWait2,
    /// Peer closed; we may still send.
    CloseWait,
    /// Simultaneous close.
    Closing,
    /// Our FIN sent after CloseWait; awaiting its ACK.
    LastAck,
    /// Connection done; draining old duplicates.
    TimeWait,
}

impl TcpState {
    /// Stable netstat-style name used in reports (`SYN_SENT`, ...).
    pub fn name(self) -> &'static str {
        match self {
            TcpState::Closed => "CLOSED",
            TcpState::Listen => "LISTEN",
            TcpState::SynSent => "SYN_SENT",
            TcpState::SynReceived => "SYN_RCVD",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN_WAIT_1",
            TcpState::FinWait2 => "FIN_WAIT_2",
            TcpState::CloseWait => "CLOSE_WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::LastAck => "LAST_ACK",
            TcpState::TimeWait => "TIME_WAIT",
        }
    }
}

/// A netstat-style snapshot of one TCP connection, all-integer so it can
/// ride a syscall return value and serialize without float drift. Times
/// are nanoseconds; `srtt_ns`/`rttvar_ns` are 0 until the first RTT
/// sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpSockStats {
    /// Connection state.
    pub state: TcpState,
    /// Smoothed RTT estimate, ns (0 before the first sample).
    pub srtt_ns: u64,
    /// RTT variance estimate, ns.
    pub rttvar_ns: u64,
    /// Current retransmission timeout, ns.
    pub rto_ns: u64,
    /// Consecutive retransmissions of the oldest outstanding segment.
    pub retries: u32,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    /// Unacked + unsent bytes queued in the send buffer.
    pub snd_q: u64,
    /// In-order bytes awaiting the application.
    pub rcv_q: u64,
    /// Retransmitted segments (lifetime).
    pub retransmits: u64,
    /// Fast retransmits triggered (lifetime).
    pub fast_retransmits: u64,
    /// RTO timer fires (lifetime).
    pub timeouts: u64,
    /// Duplicate ACKs received (lifetime).
    pub dup_acks: u64,
}

/// Events surfaced to the socket layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// The connection reached `Established`.
    Established,
    /// New in-order data is available to read.
    DataReady,
    /// Send-buffer space opened up (acked data released).
    SendSpace,
    /// The peer sent FIN: end of its data stream.
    PeerClosed,
    /// The connection was reset by the peer.
    Reset,
    /// The connection fully closed (left the state machine).
    Closed,
    /// Retransmission limit exceeded.
    TimedOut,
}

/// A segment to transmit: header fields plus payload. Ports are filled in;
/// the host adds IP framing.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The TCP header.
    pub hdr: TcpHeader,
    /// Segment payload.
    pub payload: Vec<u8>,
}

/// The result of feeding the machine: segments to send and events to
/// deliver.
#[derive(Debug, Default)]
pub struct Actions {
    /// Segments to transmit, in order.
    pub segments: Vec<Segment>,
    /// Events for the socket layer.
    pub events: Vec<ConnEvent>,
}

impl Actions {
    fn merge(&mut self, other: Actions) {
        self.segments.extend(other.segments);
        self.events.extend(other.events);
    }
}

/// TCP tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size we advertise and default to (ATM LAN: 9140).
    pub mss: u16,
    /// Send buffer size in bytes.
    pub snd_buf: usize,
    /// Receive buffer size in bytes.
    pub rcv_buf: usize,
    /// Initial retransmission timeout.
    pub rto_init: SimDuration,
    /// Minimum RTO.
    pub rto_min: SimDuration,
    /// Maximum RTO.
    pub rto_max: SimDuration,
    /// Give up after this many consecutive retransmissions.
    pub max_retries: u32,
    /// TIME_WAIT duration (2·MSL; the paper's HTTP test uses 500 ms).
    pub time_wait: SimDuration,
    /// Delayed-ACK timer; `None` acks every segment immediately.
    pub delack: Option<SimDuration>,
    /// Idle threshold before keepalive probing starts; `None` (the
    /// default) disables keepalives entirely — no timer is armed, so the
    /// machine is bit-identical to the pre-keepalive code.
    pub keepalive_idle: Option<SimDuration>,
    /// Interval between successive unanswered keepalive probes.
    pub keepalive_intvl: SimDuration,
    /// Unanswered probes after which the peer is declared dead and the
    /// connection aborted (surfaced as `TimedOut`, then RST + `Closed`).
    pub keepalive_probes: u32,
    /// Congestion controller new connections run ([`CcAlgo::NewReno`] by
    /// default — bit-identical to the pre-refactor machine).
    pub cc: CcAlgo,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 9140,
            snd_buf: 32 * 1024,
            rcv_buf: 32 * 1024,
            rto_init: SimDuration::from_millis(1000),
            rto_min: SimDuration::from_millis(500),
            rto_max: SimDuration::from_secs(64),
            max_retries: 12,
            time_wait: SimDuration::from_secs(30),
            delack: Some(SimDuration::from_millis(200)),
            keepalive_idle: None,
            keepalive_intvl: SimDuration::from_secs(1),
            keepalive_probes: 3,
            cc: CcAlgo::NewReno,
        }
    }
}

/// Per-connection statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpStats {
    /// Segments received.
    pub segs_in: u64,
    /// Segments sent.
    pub segs_out: u64,
    /// Payload bytes received in order.
    pub bytes_in: u64,
    /// Payload bytes sent (first transmission).
    pub bytes_out: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// RTO timer fires.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks: u64,
}

impl TcpStats {
    /// Accumulates another connection's counters into this one (used to
    /// fold per-connection statistics into host totals when a socket is
    /// freed).
    pub fn absorb(&mut self, other: &TcpStats) {
        self.segs_in += other.segs_in;
        self.segs_out += other.segs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.retransmits += other.retransmits;
        self.fast_retransmits += other.fast_retransmits;
        self.timeouts += other.timeouts;
        self.dup_acks += other.dup_acks;
    }
}

/// A TCP connection: the PCB core. Owns connection management and
/// sequence-space bookkeeping; delegates window management to [`cc`],
/// ACK policy to [`ack`], and timing/backoff to [`recovery`].
#[derive(Debug)]
pub struct TcpConn {
    cfg: TcpConfig,
    /// Current state.
    pub state: TcpState,
    /// Local endpoint.
    pub local: Endpoint,
    /// Remote endpoint.
    pub remote: Endpoint,
    /// Statistics.
    pub stats: TcpStats,

    // Send sequence space.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Highest sequence ever sent (for distinguishing retransmits).
    snd_max: u32,
    snd_wnd: u32,
    snd_buf: ByteBuffer,
    /// Sequence number of the first byte in `snd_buf`.
    snd_base: u32,
    mss_effective: u16,
    fin_requested: bool,
    /// Sequence number our FIN occupies, once sent.
    fin_seq: Option<u32>,

    // Receive sequence space.
    irs: u32,
    rcv_nxt: u32,
    rcv_buf: ByteBuffer,
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Last window we advertised (for update decisions).
    last_adv_wnd: u32,

    /// Congestion control: owns `cwnd` and `ssthresh`.
    cc: Box<dyn CongestionControl>,
    /// ACK-emission policy.
    ack_policy: Box<dyn AckStrategy>,
    /// Loss recovery: RTT estimation, backoff, dup-ACK counting.
    pub(crate) recovery: RenoRecovery,

    // Timers (absolute deadlines).
    rexmt_deadline: Option<SimTime>,
    delack_deadline: Option<SimTime>,
    timewait_deadline: Option<SimTime>,
    /// Keepalive: fires after `keepalive_idle` of silence, then every
    /// `keepalive_intvl` until answered or `keepalive_probes` exhausted.
    keepalive_deadline: Option<SimTime>,
    /// Unanswered keepalive probes sent so far.
    keepalive_probes_sent: u32,
    /// Set while a zero peer window forces probing.
    persist_mode: bool,
}

impl TcpConn {
    /// Creates a closed connection bound to the given endpoints with the
    /// given initial send sequence number.
    pub fn new(cfg: TcpConfig, local: Endpoint, remote: Endpoint, iss: u32) -> Self {
        let mss = cfg.mss;
        TcpConn {
            cfg,
            state: TcpState::Closed,
            local,
            remote,
            stats: TcpStats::default(),
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_buf: ByteBuffer::new(cfg.snd_buf),
            snd_base: iss.wrapping_add(1),
            mss_effective: mss,
            fin_requested: false,
            fin_seq: None,
            irs: 0,
            rcv_nxt: 0,
            rcv_buf: ByteBuffer::new(cfg.rcv_buf),
            ooo: BTreeMap::new(),
            last_adv_wnd: cfg.rcv_buf as u32,
            cc: cfg.cc.build(mss as usize, cfg.snd_buf * 2),
            ack_policy: Box::new(AckEveryOther::new(cfg.delack)),
            recovery: RenoRecovery::new(cfg.rto_init),
            rexmt_deadline: None,
            delack_deadline: None,
            timewait_deadline: None,
            keepalive_deadline: None,
            keepalive_probes_sent: 0,
            persist_mode: false,
        }
    }

    /// The effective maximum segment size after MSS negotiation.
    pub fn mss(&self) -> u16 {
        self.mss_effective
    }

    /// The configuration this connection runs with.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> usize {
        self.cc.ssthresh()
    }

    /// The congestion controller this connection runs.
    pub fn cc_algo(&self) -> CcAlgo {
        self.cc.algo()
    }

    /// The controller's advisory pacing gain, ×1024 (see
    /// [`CongestionControl::pacing_gain_x1024`]).
    pub fn pacing_gain_x1024(&self) -> u32 {
        self.cc.pacing_gain_x1024()
    }

    /// Bytes of in-order data available to read.
    pub fn available(&self) -> usize {
        self.rcv_buf.len()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.snd_buf.space()
    }

    /// A netstat-style snapshot of this connection's live state (see
    /// [`TcpSockStats`]).
    pub fn sock_stats(&self) -> TcpSockStats {
        TcpSockStats {
            state: self.state,
            srtt_ns: self.recovery.srtt.map_or(0, |s| (s * 1e9) as u64),
            rttvar_ns: (self.recovery.rttvar * 1e9) as u64,
            rto_ns: self.recovery.rto().as_nanos(),
            retries: self.recovery.retries(),
            cwnd: self.cc.cwnd() as u64,
            ssthresh: self.cc.ssthresh() as u64,
            snd_q: self.snd_buf.len() as u64,
            rcv_q: self.rcv_buf.len() as u64,
            retransmits: self.stats.retransmits,
            fast_retransmits: self.stats.fast_retransmits,
            timeouts: self.stats.timeouts,
            dup_acks: self.stats.dup_acks,
        }
    }

    /// True once the connection has left the state machine entirely.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// True if in TIME_WAIT (NI-LRP reclaims the NI channel here, §4.2).
    pub fn in_time_wait(&self) -> bool {
        self.state == TcpState::TimeWait
    }

    fn adv_wnd(&self) -> u16 {
        self.rcv_buf.space().min(65_535) as u16
    }

    fn make_seg(&mut self, fl: u8, seq: u32, payload: Vec<u8>, with_mss: bool) -> Segment {
        self.stats.segs_out += 1;
        let wnd = self.adv_wnd();
        self.last_adv_wnd = wnd as u32;
        Segment {
            hdr: TcpHeader {
                src_port: self.local.port,
                dst_port: self.remote.port,
                seq,
                ack: if fl & flags::ACK != 0 {
                    self.rcv_nxt
                } else {
                    0
                },
                flags: fl,
                window: wnd,
                mss: if with_mss { Some(self.cfg.mss) } else { None },
            },
            payload,
        }
    }

    fn make_ack(&mut self) -> Segment {
        self.delack_deadline = None;
        self.make_seg(flags::ACK, self.snd_nxt, Vec::new(), false)
    }

    /// Begins an active open. Must be called in `Closed`.
    ///
    /// # Panics
    ///
    /// Panics if the connection is not in `Closed`.
    pub fn connect(&mut self, now: SimTime) -> Actions {
        assert_eq!(self.state, TcpState::Closed, "connect on open connection");
        self.state = TcpState::SynSent;
        self.snd_nxt = self.iss.wrapping_add(1);
        self.snd_max = self.snd_nxt;
        let syn = self.make_seg(flags::SYN, self.iss, Vec::new(), true);
        self.arm_rexmt(now);
        Actions {
            segments: vec![syn],
            events: vec![],
        }
    }

    /// Creates a connection in `SynReceived` in response to a SYN received
    /// by a listener, emitting the SYN|ACK.
    pub fn accept_syn(
        cfg: TcpConfig,
        local: Endpoint,
        remote: Endpoint,
        iss: u32,
        syn: &TcpHeader,
        now: SimTime,
    ) -> (TcpConn, Actions) {
        let mut c = TcpConn::new(cfg, local, remote, iss);
        c.state = TcpState::SynReceived;
        c.irs = syn.seq;
        c.rcv_nxt = syn.seq.wrapping_add(1);
        if let Some(m) = syn.mss {
            c.mss_effective = c.cfg.mss.min(m);
            c.cc.on_mss_negotiated(c.mss_effective as usize);
        }
        c.snd_wnd = syn.window as u32;
        c.snd_nxt = iss.wrapping_add(1);
        c.snd_max = c.snd_nxt;
        let synack = c.make_seg(flags::SYN | flags::ACK, c.iss, Vec::new(), true);
        c.arm_rexmt(now);
        let acts = Actions {
            segments: vec![synack],
            events: vec![],
        };
        (c, acts)
    }

    /// Creates a connection directly in `Established` from a validated
    /// SYN-cookie ACK (see [`cookie`]). The SYN|ACK was stateless, so the
    /// whole handshake is reconstructed from the ACK: `iss = ack - 1`
    /// (the cookie we minted), `irs = seq - 1`, and the MSS comes out of
    /// the cookie itself (quantized by [`cookie::MSS_TABLE`]). No
    /// segments are emitted — the caller feeds the ACK through
    /// [`on_segment`](Self::on_segment) for window/payload handling.
    pub fn cookie_established(
        cfg: TcpConfig,
        local: Endpoint,
        remote: Endpoint,
        ack: &TcpHeader,
        cookie_mss: u16,
        now: SimTime,
    ) -> TcpConn {
        let iss = ack.ack.wrapping_sub(1);
        let mut c = TcpConn::new(cfg, local, remote, iss);
        c.state = TcpState::Established;
        c.snd_una = iss.wrapping_add(1);
        c.snd_nxt = c.snd_una;
        c.snd_max = c.snd_una;
        c.irs = ack.seq.wrapping_sub(1);
        c.rcv_nxt = ack.seq;
        c.mss_effective = c.cfg.mss.min(cookie_mss);
        c.cc.on_mss_negotiated(c.mss_effective as usize);
        c.snd_wnd = ack.window as u32;
        c.arm_keepalive(now);
        c
    }

    // ---- timers ----

    fn arm_rexmt(&mut self, now: SimTime) {
        self.rexmt_deadline = Some(now + self.recovery.rexmt_timeout(&self.cfg));
    }

    /// (Re)arms the keepalive idle timer and clears the probe count. A
    /// no-op (deadline stays `None`) when keepalives are not configured.
    fn arm_keepalive(&mut self, now: SimTime) {
        self.keepalive_probes_sent = 0;
        self.keepalive_deadline = self.cfg.keepalive_idle.map(|idle| now + idle);
    }

    /// States in which keepalive probing is meaningful: the connection is
    /// synchronized and could otherwise sit silent forever.
    fn keepalive_applies(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait2
        )
    }

    /// The earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rexmt_deadline,
            self.delack_deadline,
            self.timewait_deadline,
            self.keepalive_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Fires any timers whose deadline has passed.
    pub fn on_timer(&mut self, now: SimTime) -> Actions {
        let mut acts = Actions::default();
        if let Some(d) = self.timewait_deadline {
            if now >= d {
                self.timewait_deadline = None;
                self.state = TcpState::Closed;
                acts.events.push(ConnEvent::Closed);
                return acts;
            }
        }
        if let Some(d) = self.delack_deadline {
            if now >= d {
                let ack = self.make_ack();
                acts.segments.push(ack);
            }
        }
        if let Some(d) = self.rexmt_deadline {
            if now >= d {
                self.rexmt_deadline = None;
                acts.merge(self.on_rexmt_timeout(now));
            }
        }
        if let Some(d) = self.keepalive_deadline {
            if now >= d {
                if !self.keepalive_applies() {
                    // The connection moved on (closing handshake, abort):
                    // the idle timer is stale — drop it.
                    self.keepalive_deadline = None;
                } else if self.keepalive_probes_sent >= self.cfg.keepalive_probes {
                    // Peer is dead: every probe went unanswered. Surface
                    // TimedOut to the app, then abort (RST + Closed) as
                    // BSD's tcp_drop does on keepalive expiry.
                    acts.events.push(ConnEvent::TimedOut);
                    acts.merge(self.abort());
                } else {
                    // Probe with one garbage byte below the window
                    // (RFC 1122 §4.2.3.6): an alive peer must re-ACK.
                    self.keepalive_probes_sent += 1;
                    let seq = self.snd_una.wrapping_sub(1);
                    let seg = self.make_seg(flags::ACK, seq, vec![0], false);
                    acts.segments.push(seg);
                    self.keepalive_deadline = Some(now + self.cfg.keepalive_intvl);
                }
            }
        }
        acts
    }

    fn on_rexmt_timeout(&mut self, now: SimTime) -> Actions {
        let mut acts = Actions::default();
        self.stats.timeouts += 1;
        // A zero-window probe cycle is BSD's persist timer: the peer is
        // alive and acking, so it must not consume the retry budget or the
        // connection would die while the receiver is merely slow.
        let persisting =
            self.snd_wnd == 0 && !self.snd_buf.is_empty() && self.snd_nxt == self.snd_una;
        if persisting {
            self.recovery.on_persist_timeout();
            acts.merge(self.send_probe(now));
            self.arm_rexmt(now);
            return acts;
        }
        if self.recovery.on_rto_fired(self.cfg.max_retries) {
            self.state = TcpState::Closed;
            acts.events.push(ConnEvent::TimedOut);
            acts.events.push(ConnEvent::Closed);
            return acts;
        }
        match self.state {
            TcpState::SynSent => {
                let syn = self.make_seg(flags::SYN, self.iss, Vec::new(), true);
                self.stats.retransmits += 1;
                acts.segments.push(syn);
                self.arm_rexmt(now);
            }
            TcpState::SynReceived => {
                let synack = self.make_seg(flags::SYN | flags::ACK, self.iss, Vec::new(), true);
                self.stats.retransmits += 1;
                acts.segments.push(synack);
                self.arm_rexmt(now);
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::CloseWait
            | TcpState::LastAck => {
                // Collapse the window: classic timeout response.
                let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
                self.cc.on_rto(now, flight);
                self.recovery.reset_dup_acks();
                // Go-back-N: rewind and retransmit from snd_una.
                self.snd_nxt = self.snd_una;
                // A lost FIN must be resent too: forget it was ever sent
                // so output() re-appends it after the rewound data.
                if self.fin_seq.is_some_and(|fs| !seq_gt(self.snd_una, fs)) {
                    self.fin_seq = None;
                }
                acts.merge(self.output(now, true));
                if acts.segments.is_empty() {
                    // Nothing to send (e.g. zero window probe case) — probe
                    // with one byte if data is pending.
                    acts.merge(self.send_probe(now));
                }
                self.arm_rexmt(now);
            }
            _ => {}
        }
        acts
    }

    fn send_probe(&mut self, _now: SimTime) -> Actions {
        let mut acts = Actions::default();
        let data_end = self.snd_base.wrapping_add(self.snd_buf.len() as u32);
        if seq_lt(self.snd_nxt, data_end) {
            let off = self.snd_nxt.wrapping_sub(self.snd_base) as usize;
            let payload = self.snd_buf.peek_at(off, 1);
            let seq = self.snd_nxt;
            let seg = self.make_seg(flags::ACK | flags::PSH, seq, payload, false);
            self.stats.retransmits += 1;
            acts.segments.push(seg);
        }
        acts
    }

    // ---- app interface ----

    /// Writes application data into the send buffer; returns how many bytes
    /// were accepted and any segments that can be sent immediately.
    pub fn write(&mut self, now: SimTime, data: &[u8]) -> (usize, Actions) {
        match self.state {
            TcpState::Established | TcpState::CloseWait => {}
            _ => return (0, Actions::default()),
        }
        // Idle restart: nothing in flight and nothing buffered means the
        // connection sat quiet — let rate-model controllers resync.
        // NewReno's hook is a no-op, preserving bit-identity.
        if self.snd_buf.is_empty() && self.snd_nxt == self.snd_una {
            self.cc.on_idle_restart(now);
        }
        let n = self.snd_buf.write(data);
        let acts = self.output(now, false);
        (n, acts)
    }

    /// Reads up to `n` bytes of in-order data; may emit a window update if
    /// the advertised window grows substantially (BSD policy).
    pub fn read(&mut self, n: usize) -> (Vec<u8>, Actions) {
        let data = self.rcv_buf.read(n);
        let mut acts = Actions::default();
        if !data.is_empty() {
            let new_wnd = self.adv_wnd() as u32;
            // Window-update policy: announce if the window grew by two
            // segments or half the buffer since last advertised.
            if matches!(
                self.state,
                TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
            ) && new_wnd >= self.last_adv_wnd + 2 * self.mss_effective as u32
                || new_wnd >= self.last_adv_wnd + (self.cfg.rcv_buf as u32) / 2
            {
                let ack = self.make_ack();
                acts.segments.push(ack);
            }
        }
        (data, acts)
    }

    /// Initiates a close: sends FIN once all buffered data is out.
    pub fn close(&mut self, now: SimTime) -> Actions {
        match self.state {
            TcpState::Established | TcpState::SynReceived => {
                self.fin_requested = true;
                self.state = TcpState::FinWait1;
                self.output(now, false)
            }
            TcpState::CloseWait => {
                self.fin_requested = true;
                self.state = TcpState::LastAck;
                self.output(now, false)
            }
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                Actions {
                    segments: vec![],
                    events: vec![ConnEvent::Closed],
                }
            }
            _ => Actions::default(),
        }
    }

    /// Aborts the connection with a RST.
    pub fn abort(&mut self) -> Actions {
        let mut acts = Actions::default();
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            let seg = self.make_seg(flags::RST | flags::ACK, self.snd_nxt, Vec::new(), false);
            acts.segments.push(seg);
        }
        self.state = TcpState::Closed;
        self.keepalive_deadline = None;
        self.rexmt_deadline = None;
        self.delack_deadline = None;
        acts.events.push(ConnEvent::Closed);
        acts
    }

    // ---- output engine ----

    /// Attempts to transmit: respects the send window, congestion window
    /// and MSS; appends the FIN when requested and all data is out.
    ///
    /// `rexmit` forces sending from `snd_nxt` even if already sent
    /// (retransmission after go-back-N rewind).
    pub fn output(&mut self, now: SimTime, rexmit: bool) -> Actions {
        let mut acts = Actions::default();
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return acts;
        }
        let data_end = self.snd_base.wrapping_add(self.snd_buf.len() as u32);
        loop {
            let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            let wnd = (self.snd_wnd as usize).min(self.cc.cwnd());
            let usable = wnd.saturating_sub(flight);
            // snd_nxt can sit past data_end once the FIN has been sent;
            // plain wrapping subtraction would then be bogus-huge.
            let avail = if seq_lt(self.snd_nxt, data_end) {
                data_end.wrapping_sub(self.snd_nxt) as usize
            } else {
                0
            };
            let chunk = usable.min(avail).min(self.mss_effective as usize);
            if chunk > 0 {
                let off = self.snd_nxt.wrapping_sub(self.snd_base) as usize;
                let payload = self.snd_buf.peek_at(off, chunk);
                let seq = self.snd_nxt;
                let is_rexmit = seq_lt(seq, self.snd_max);
                let push = off + chunk == self.snd_buf.len();
                let fl = if push {
                    flags::ACK | flags::PSH
                } else {
                    flags::ACK
                };
                let seg = self.make_seg(fl, seq, payload, false);
                acts.segments.push(seg);
                self.snd_nxt = self.snd_nxt.wrapping_add(chunk as u32);
                if is_rexmit {
                    self.stats.retransmits += 1;
                } else {
                    self.stats.bytes_out += chunk as u64;
                    self.snd_max = self.snd_nxt;
                    // Time one segment per window (Karn).
                    if self.recovery.rtt_probe.is_none() {
                        self.recovery.rtt_probe = Some((seq, now));
                    }
                }
                if self.rexmt_deadline.is_none() {
                    self.arm_rexmt(now);
                }
                continue;
            }
            break;
        }
        // FIN when requested, all data sent, and FIN not yet sent.
        if self.fin_requested && self.fin_seq.is_none() && self.snd_nxt == data_end {
            let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            let wnd = (self.snd_wnd as usize).min(self.cc.cwnd()).max(1);
            if flight < wnd || rexmit {
                let seq = self.snd_nxt;
                self.fin_seq = Some(seq);
                let seg = self.make_seg(flags::FIN | flags::ACK, seq, Vec::new(), false);
                acts.segments.push(seg);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.snd_max = self.snd_max.max(self.snd_nxt);
                if self.rexmt_deadline.is_none() {
                    self.arm_rexmt(now);
                }
            }
        }
        // Zero-window: keep the rexmt timer alive as a persist probe.
        if self.snd_wnd == 0 && !self.snd_buf.is_empty() && self.rexmt_deadline.is_none() {
            self.persist_mode = true;
            self.arm_rexmt(now);
        }
        acts
    }

    // ---- input engine ----

    /// Processes one arriving segment.
    pub fn on_segment(&mut self, now: SimTime, th: &TcpHeader, payload: &[u8]) -> Actions {
        self.stats.segs_in += 1;
        let mut acts = Actions::default();
        match self.state {
            TcpState::Closed => {
                // RFC 793: respond to anything but a RST with a RST.
                if !th.has(flags::RST) {
                    let seg = if th.has(flags::ACK) {
                        self.make_seg(flags::RST, th.ack, Vec::new(), false)
                    } else {
                        self.rcv_nxt = th.seq.wrapping_add(payload.len() as u32 + 1);
                        self.make_seg(flags::RST | flags::ACK, 0, Vec::new(), false)
                    };
                    acts.segments.push(seg);
                }
                acts
            }
            TcpState::SynSent => self.on_segment_syn_sent(now, th, &mut acts),
            TcpState::TimeWait => {
                // Re-ACK retransmitted FINs; restart the 2MSL timer.
                if th.has(flags::FIN) {
                    let ack = self.make_ack();
                    acts.segments.push(ack);
                    self.timewait_deadline = Some(now + self.cfg.time_wait);
                }
                acts
            }
            _ => self.on_segment_synchronized(now, th, payload, &mut acts),
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, th: &TcpHeader, acts: &mut Actions) -> Actions {
        let mut out = Actions::default();
        if th.has(flags::ACK) && (seq_le(th.ack, self.iss) || seq_gt(th.ack, self.snd_nxt)) {
            if !th.has(flags::RST) {
                let seg = self.make_seg(flags::RST, th.ack, Vec::new(), false);
                out.segments.push(seg);
            }
            out.merge(std::mem::take(acts));
            return out;
        }
        if th.has(flags::RST) {
            if th.has(flags::ACK) {
                self.state = TcpState::Closed;
                out.events.push(ConnEvent::Reset);
                out.events.push(ConnEvent::Closed);
            }
            return out;
        }
        if th.has(flags::SYN) {
            self.irs = th.seq;
            self.rcv_nxt = th.seq.wrapping_add(1);
            self.snd_wnd = th.window as u32;
            if let Some(m) = th.mss {
                self.mss_effective = self.cfg.mss.min(m);
                self.cc.on_mss_negotiated(self.mss_effective as usize);
            }
            if th.has(flags::ACK) {
                self.snd_una = th.ack;
                if let Some((_, t0)) = self.recovery.rtt_probe.take() {
                    self.recovery
                        .on_rtt_sample(now.since(t0).as_secs_f64(), &self.cfg);
                }
            }
            if seq_gt(self.snd_una, self.iss) {
                self.state = TcpState::Established;
                self.recovery.on_new_ack();
                self.rexmt_deadline = None;
                self.arm_keepalive(now);
                out.events.push(ConnEvent::Established);
                let ack = self.make_ack();
                out.segments.push(ack);
                out.merge(self.output(now, false));
            } else {
                // Simultaneous open.
                self.state = TcpState::SynReceived;
                let synack = self.make_seg(flags::SYN | flags::ACK, self.iss, Vec::new(), true);
                out.segments.push(synack);
                self.arm_rexmt(now);
            }
        }
        out
    }

    fn seq_acceptable(&self, th: &TcpHeader, len: usize) -> bool {
        // RFC 793 acceptability test, simplified for a non-zero window.
        let wnd = self.cfg.rcv_buf as u32;
        let seq_end = th.seq.wrapping_add(len as u32);
        // Accept if any part of [seq, seq_end) overlaps [rcv_nxt,
        // rcv_nxt+wnd), or it is a bare re-ACK at the left edge.
        if len == 0 {
            return seq_ge(th.seq, self.rcv_nxt.wrapping_sub(wnd))
                && seq_le(th.seq, self.rcv_nxt.wrapping_add(wnd));
        }
        seq_gt(seq_end, self.rcv_nxt) && seq_lt(th.seq, self.rcv_nxt.wrapping_add(wnd))
    }

    fn on_segment_synchronized(
        &mut self,
        now: SimTime,
        th: &TcpHeader,
        payload: &[u8],
        acts: &mut Actions,
    ) -> Actions {
        let mut out = std::mem::take(acts);
        // Any segment from the peer proves it is alive: restart the
        // keepalive idle clock and forget pending probes.
        self.arm_keepalive(now);
        // RST: kill the connection if plausibly in-window.
        if th.has(flags::RST) {
            if self.seq_acceptable(th, payload.len().max(1)) || th.seq == self.rcv_nxt {
                self.state = TcpState::Closed;
                out.events.push(ConnEvent::Reset);
                out.events.push(ConnEvent::Closed);
            }
            return out;
        }
        // Duplicate SYN in SynReceived: retransmit the SYN|ACK.
        if th.has(flags::SYN) && self.state == TcpState::SynReceived && th.seq == self.irs {
            let synack = self.make_seg(flags::SYN | flags::ACK, self.iss, Vec::new(), true);
            self.stats.retransmits += 1;
            out.segments.push(synack);
            return out;
        }
        // Sequence acceptability; unacceptable segments get a bare ACK.
        if !self.seq_acceptable(th, payload.len()) {
            let ack = self.make_ack();
            out.segments.push(ack);
            return out;
        }
        // ACK processing.
        if th.has(flags::ACK) {
            self.process_ack(now, th, &mut out);
            if self.state == TcpState::Closed {
                return out;
            }
        }
        // Data.
        if !payload.is_empty() {
            self.process_data(now, th, payload, &mut out);
        }
        // FIN.
        if th.has(flags::FIN) {
            let fin_seq = th.seq.wrapping_add(payload.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                out.events.push(ConnEvent::PeerClosed);
                match self.state {
                    TcpState::SynReceived | TcpState::Established => {
                        self.state = TcpState::CloseWait;
                    }
                    TcpState::FinWait1 => {
                        // Did they also ack our FIN? process_ack may have
                        // already moved us to FinWait2.
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        self.timewait_deadline = Some(now + self.cfg.time_wait);
                        self.rexmt_deadline = None;
                    }
                    _ => {}
                }
                let ack = self.make_ack();
                out.segments.push(ack);
            }
        }
        // Try to push more data out (window may have opened).
        out.merge(self.output(now, false));
        out
    }

    fn process_ack(&mut self, now: SimTime, th: &TcpHeader, out: &mut Actions) {
        let ack = th.ack;
        if seq_gt(ack, self.snd_max) {
            // Acks something never sent.
            let seg = self.make_ack();
            out.segments.push(seg);
            return;
        }
        if seq_le(ack, self.snd_una) {
            // Duplicate ACK.
            if th.seq == self.rcv_nxt
                && ack == self.snd_una
                && self.snd_nxt != self.snd_una
                && th.window as u32 == self.snd_wnd
            {
                self.stats.dup_acks += 1;
                if self.recovery.on_dup_ack() {
                    self.fast_retransmit(now, out);
                }
            }
            self.snd_wnd = th.window as u32;
            return;
        }
        // New data acknowledged.
        let had_zero_window = self.snd_wnd == 0;
        self.snd_wnd = th.window as u32;
        self.recovery.on_new_ack();
        let mut rtt_s = None;
        if let Some((seq, t0)) = self.recovery.rtt_probe {
            if seq_lt(seq, ack) {
                let sample = now.since(t0).as_secs_f64();
                self.recovery.on_rtt_sample(sample, &self.cfg);
                self.recovery.rtt_probe = None;
                rtt_s = Some(sample);
            }
        }
        // Congestion window update (growth under the default NewReno).
        let acked = ack.wrapping_sub(self.snd_una) as usize;
        self.cc.on_ack(now, acked, rtt_s);
        // Release acked bytes from the send buffer.
        let data_end = self.snd_base.wrapping_add(self.snd_buf.len() as u32);
        let acked_data_end = if seq_lt(ack, data_end) { ack } else { data_end };
        if seq_gt(acked_data_end, self.snd_base) {
            let n = acked_data_end.wrapping_sub(self.snd_base) as usize;
            self.snd_buf.discard(n);
            self.snd_base = acked_data_end;
            out.events.push(ConnEvent::SendSpace);
        }
        self.snd_una = ack;
        // After a go-back-N rewind, the ACK of an original (pre-rewind)
        // transmission can overtake snd_nxt; pull it forward as BSD does.
        if seq_lt(self.snd_nxt, self.snd_una) {
            self.snd_nxt = self.snd_una;
        }
        if seq_gt(self.snd_nxt, self.snd_una) || had_zero_window && self.snd_wnd == 0 {
            self.arm_rexmt(now);
        } else {
            self.rexmt_deadline = None;
            self.persist_mode = false;
        }
        // FIN-related transitions.
        let fin_acked = self.fin_seq.is_some_and(|fs| seq_gt(ack, fs));
        match self.state {
            TcpState::SynReceived if seq_gt(ack, self.iss) => {
                self.state = TcpState::Established;
                self.arm_keepalive(now);
                out.events.push(ConnEvent::Established);
            }
            TcpState::FinWait1 if fin_acked => {
                self.state = TcpState::FinWait2;
                self.rexmt_deadline = None;
            }
            TcpState::Closing if fin_acked => {
                self.state = TcpState::TimeWait;
                self.timewait_deadline = Some(now + self.cfg.time_wait);
                self.rexmt_deadline = None;
            }
            TcpState::LastAck if fin_acked => {
                self.state = TcpState::Closed;
                self.rexmt_deadline = None;
                out.events.push(ConnEvent::Closed);
            }
            _ => {}
        }
    }

    fn fast_retransmit(&mut self, now: SimTime, out: &mut Actions) {
        self.stats.fast_retransmits += 1;
        let flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        self.cc.on_loss(now, flight);
        // Karn: the retransmission must not be timed.
        self.recovery.on_retransmit();
        // Retransmit the lost segment.
        let data_end = self.snd_base.wrapping_add(self.snd_buf.len() as u32);
        if seq_lt(self.snd_una, data_end) {
            let off = self.snd_una.wrapping_sub(self.snd_base) as usize;
            let n = (self.mss_effective as usize).min(self.snd_buf.len() - off);
            let payload = self.snd_buf.peek_at(off, n);
            let seq = self.snd_una;
            let seg = self.make_seg(flags::ACK, seq, payload, false);
            self.stats.retransmits += 1;
            out.segments.push(seg);
        } else if let Some(fs) = self.fin_seq {
            if self.snd_una == fs {
                let seg = self.make_seg(flags::FIN | flags::ACK, fs, Vec::new(), false);
                self.stats.retransmits += 1;
                out.segments.push(seg);
            }
        }
        self.arm_rexmt(now);
    }

    fn process_data(&mut self, now: SimTime, th: &TcpHeader, payload: &[u8], out: &mut Actions) {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        ) {
            return;
        }
        let mut seq = th.seq;
        let mut data = payload;
        // Trim old data.
        if seq_lt(seq, self.rcv_nxt) {
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip >= data.len() {
                // Entirely old: re-ACK immediately (protocol-mandated,
                // not ACK policy).
                let ack = self.make_ack();
                out.segments.push(ack);
                return;
            }
            data = &data[skip..];
            seq = self.rcv_nxt;
        }
        if seq == self.rcv_nxt {
            let n = self.rcv_buf.write(data);
            // Data beyond buffer space is dropped (sender exceeded our
            // advertised window).
            self.rcv_nxt = self.rcv_nxt.wrapping_add(n as u32);
            self.stats.bytes_in += n as u64;
            if n > 0 {
                out.events.push(ConnEvent::DataReady);
            }
            // Drain contiguous out-of-order segments.
            while let Some((&oseq, _)) = self.ooo.iter().next() {
                if seq_gt(oseq, self.rcv_nxt) {
                    break;
                }
                let (oseq, od) = self.ooo.pop_first().expect("non-empty");
                let skip = self.rcv_nxt.wrapping_sub(oseq) as usize;
                if skip < od.len() {
                    let m = self.rcv_buf.write(&od[skip..]);
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(m as u32);
                    self.stats.bytes_in += m as u64;
                }
            }
            // ACK policy: the strategy decides between an immediate ACK
            // and the delayed-ACK timer (BSD acks every other segment).
            match self.ack_policy.on_in_order_data(now, self.delack_deadline) {
                AckDecision::Now => {
                    let ack = self.make_ack();
                    out.segments.push(ack);
                }
                AckDecision::Delay(deadline) => self.delack_deadline = Some(deadline),
            }
        } else {
            // Out of order: stash, then ask the strategy about dup-ACK
            // emission (the sender's fast retransmit depends on it).
            if self.ooo.len() < 64 {
                self.ooo.entry(seq).or_insert_with(|| data.to_vec());
            }
            match self.ack_policy.on_out_of_order(now) {
                AckDecision::Now => {
                    let ack = self.make_ack();
                    out.segments.push(ack);
                }
                AckDecision::Delay(deadline) => self.delack_deadline = Some(deadline),
            }
        }
        let _ = th;
    }
}

/// A listening socket: backlog accounting for SYN handling.
///
/// The listener does not own child connections (the host's socket table
/// does); it tracks how many embryonic + accepted-but-unclaimed
/// connections exist so the kernel can enforce the backlog — and, in LRP,
/// disable protocol processing when the backlog is exceeded so the NI
/// discards further SYNs at the channel queue (§3.4).
#[derive(Debug)]
pub struct TcpListener {
    /// The local endpoint.
    pub local: Endpoint,
    /// Maximum embryonic + completed-unaccepted connections.
    pub backlog: usize,
    /// Current embryonic (SynReceived) children.
    pub syn_queue: usize,
    /// Completed connections awaiting `accept`.
    pub accept_queue: usize,
    /// SYNs dropped due to a full backlog.
    pub syn_drops: u64,
    /// Embryonic (SynReceived) children in admission order — the minimal
    /// SYN-cache: when the backlog is full and the host enables the
    /// cache, the *oldest* half-open entry is evicted to admit a fresh
    /// SYN, bounding the damage a SYN flood can do to the table.
    pub half_open: VecDeque<SockId>,
    /// Half-open entries evicted by the SYN-cache to admit new SYNs.
    pub syn_cache_evictions: u64,
    /// Stateless SYN|ACKs minted with a cookie ISN (see [`cookie`]).
    pub cookies_sent: u64,
    /// Handshake ACKs whose cookie validated (connection established).
    pub cookies_validated: u64,
    /// Handshake ACKs whose cookie failed validation (stale or forged).
    pub cookies_rejected: u64,
}

impl TcpListener {
    /// Creates a listener.
    pub fn new(local: Endpoint, backlog: usize) -> Self {
        TcpListener {
            local,
            backlog,
            syn_queue: 0,
            accept_queue: 0,
            syn_drops: 0,
            half_open: VecDeque::new(),
            syn_cache_evictions: 0,
            cookies_sent: 0,
            cookies_validated: 0,
            cookies_rejected: 0,
        }
    }

    /// True if another SYN can be admitted (BSD: `sonewconn` checks
    /// `q0len + qlen < 3 * backlog / 2`; we use the plain backlog).
    pub fn can_accept_syn(&self) -> bool {
        self.syn_queue + self.accept_queue < self.backlog
    }

    /// Records admission of a SYN (a child enters SynReceived).
    pub fn on_syn_admitted(&mut self) {
        self.syn_queue += 1;
    }

    /// Records rejection of a SYN.
    pub fn on_syn_dropped(&mut self) {
        self.syn_drops += 1;
    }

    /// A child completed the handshake: moves from SYN to accept queue.
    pub fn on_child_established(&mut self) {
        debug_assert!(self.syn_queue > 0);
        self.syn_queue -= 1;
        self.accept_queue += 1;
    }

    /// A cookie-validated child entered the accept queue directly: it was
    /// never in the SYN queue (the SYN|ACK was stateless), so only the
    /// accept side moves.
    pub fn on_cookie_child_established(&mut self) {
        self.cookies_validated += 1;
        self.accept_queue += 1;
    }

    /// Records minting a stateless cookie SYN|ACK.
    pub fn on_cookie_sent(&mut self) {
        self.cookies_sent += 1;
    }

    /// Records a handshake ACK whose cookie failed validation.
    pub fn on_cookie_rejected(&mut self) {
        self.cookies_rejected += 1;
    }

    /// A child died before the handshake completed.
    pub fn on_child_failed(&mut self) {
        debug_assert!(self.syn_queue > 0);
        self.syn_queue = self.syn_queue.saturating_sub(1);
    }

    /// The application accepted a completed connection.
    pub fn on_accept(&mut self) {
        debug_assert!(self.accept_queue > 0);
        self.accept_queue -= 1;
    }

    /// Records the admitted child's identity for SYN-cache ordering.
    /// Call next to [`on_syn_admitted`](Self::on_syn_admitted).
    pub fn track_half_open(&mut self, child: SockId) {
        self.half_open.push_back(child);
    }

    /// Forgets a child that left the half-open set (established, failed,
    /// or evicted).
    ///
    /// The deque is bounded by the listen backlog (tens of entries, even
    /// under flood: admission is gated by `can_accept_syn`), so a linear
    /// scan cannot blow up — but the *common* exits are the front (SYN
    /// cache evicts oldest-first; handshakes complete roughly FIFO), so
    /// take the O(1) pop when the child is at either end and fall back
    /// to the scan only for out-of-order completions.
    pub fn untrack_half_open(&mut self, child: SockId) {
        if self.half_open.front() == Some(&child) {
            self.half_open.pop_front();
        } else if self.half_open.back() == Some(&child) {
            self.half_open.pop_back();
        } else {
            self.half_open.retain(|&s| s != child);
        }
    }

    /// The oldest half-open child — the SYN-cache eviction victim.
    pub fn oldest_half_open(&self) -> Option<SockId> {
        self.half_open.front().copied()
    }

    /// Records a SYN-cache eviction.
    pub fn on_syn_cache_evict(&mut self) {
        self.syn_cache_evictions += 1;
    }
}

#[cfg(test)]
mod tests;
