//! The loss-recovery seam: RTT estimation, retransmission backoff, and
//! duplicate-ACK accounting.
//!
//! [`LossRecovery`] owns the Jacobson/Karn RTT machinery (`srtt`,
//! `rttvar`, the clamped RTO), the exponential-backoff shift, the
//! retry budget, the duplicate-ACK counter, and the one-probe-per-window
//! RTT timing slot Karn's rule invalidates on retransmission. The PCB
//! core owns the go-back-N rewind itself (it is sequence-space surgery,
//! including the lost-FIN `fin_seq` reset) but consults this module for
//! every timing and counting decision on that path.
//!
//! [`RenoRecovery`] is the extracted 4.4BSD implementation and the only
//! one shipped; the PCB holds it concretely (static dispatch on the
//! per-segment hot path), with the trait pinning the contract for
//! alternative recovery schemes.

use super::TcpConfig;
use lrp_sim::{SimDuration, SimTime};

/// Duplicate-ACK threshold triggering fast retransmit.
const DUP_ACK_THRESHOLD: u32 = 3;

/// RTT estimation, RTO backoff and dup-ACK counting behind one contract.
///
/// Hooks may mutate only the recovery state itself — never the window
/// (that is [`super::cc::CongestionControl`]'s) and never sequence
/// numbers (the PCB's).
pub trait LossRecovery: std::fmt::Debug {
    /// Smoothed RTT, seconds (`None` before the first sample).
    fn srtt_s(&self) -> Option<f64>;

    /// Current (unbacked-off) retransmission timeout.
    fn rto(&self) -> SimDuration;

    /// Consecutive-retransmission count since the last new ACK.
    fn retries(&self) -> u32;

    /// Duplicate ACKs counted since the last new ACK.
    fn dup_acks(&self) -> u32;

    /// The timeout to arm the retransmission timer with: the RTO scaled
    /// by the exponential backoff, clamped to the configured bounds.
    fn rexmt_timeout(&self, cfg: &TcpConfig) -> SimDuration;

    /// Feeds one Karn-filtered RTT sample (seconds) into the Jacobson
    /// estimator and re-derives the clamped RTO.
    fn on_rtt_sample(&mut self, sample_s: f64, cfg: &TcpConfig);

    /// Counts a duplicate ACK; true exactly when the count reaches the
    /// fast-retransmit threshold.
    fn on_dup_ack(&mut self) -> bool;

    /// A new-data ACK arrived: dup-ACK count, retry budget and backoff
    /// all reset.
    fn on_new_ack(&mut self);

    /// The retransmission timer fired while zero-window probing: backoff
    /// grows (capped — the peer is alive, merely slow) without consuming
    /// the retry budget, and Karn invalidates the RTT probe.
    fn on_persist_timeout(&mut self);

    /// The retransmission timer fired for real. Returns `true` when the
    /// retry budget is exhausted (the caller kills the connection);
    /// otherwise the backoff grows and Karn invalidates the RTT probe.
    fn on_rto_fired(&mut self, max_retries: u32) -> bool;

    /// A segment is being retransmitted outside the RTO path (fast
    /// retransmit): Karn's rule — never time a retransmitted segment.
    fn on_retransmit(&mut self);

    /// Clears the dup-ACK counter (window collapse on RTO).
    fn reset_dup_acks(&mut self);
}

/// The 4.4BSD recovery state extracted verbatim from the pre-refactor
/// monolith. Fields are crate-visible so the in-tree unit tests can
/// assert on estimator internals.
#[derive(Debug)]
pub struct RenoRecovery {
    /// Duplicate ACKs since the last new ACK.
    pub(crate) dup_ack_count: u32,
    /// Smoothed RTT, seconds (Jacobson).
    pub(crate) srtt: Option<f64>,
    /// RTT mean deviation, seconds.
    pub(crate) rttvar: f64,
    /// Current RTO (before backoff scaling).
    pub(crate) rto: SimDuration,
    /// Exponential-backoff shift applied when arming the timer.
    pub(crate) backoff_shift: u32,
    /// In-flight timed segment: `(seq, sent_at)`; Karn's rule clears it
    /// on retransmission. The PCB arms it (it knows sequence numbers)
    /// and reads it on ACK; recovery owns invalidation.
    pub(crate) rtt_probe: Option<(u32, SimTime)>,
    /// Consecutive retransmissions since the last new ACK.
    pub(crate) retries: u32,
}

impl RenoRecovery {
    /// Fresh estimator with the configured initial RTO.
    pub fn new(rto_init: SimDuration) -> Self {
        RenoRecovery {
            dup_ack_count: 0,
            srtt: None,
            rttvar: 0.0,
            rto: rto_init,
            backoff_shift: 0,
            rtt_probe: None,
            retries: 0,
        }
    }
}

impl LossRecovery for RenoRecovery {
    fn srtt_s(&self) -> Option<f64> {
        self.srtt
    }

    fn rto(&self) -> SimDuration {
        self.rto
    }

    fn retries(&self) -> u32 {
        self.retries
    }

    fn dup_acks(&self) -> u32 {
        self.dup_ack_count
    }

    fn rexmt_timeout(&self, cfg: &TcpConfig) -> SimDuration {
        self.rto
            .mul_f64((1u64 << self.backoff_shift.min(12)) as f64)
            .min(cfg.rto_max)
            .max(cfg.rto_min)
    }

    fn on_rtt_sample(&mut self, sample_s: f64, cfg: &TcpConfig) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_s);
                self.rttvar = sample_s / 2.0;
            }
            Some(srtt) => {
                let err = sample_s - srtt;
                self.srtt = Some(srtt + err / 8.0);
                self.rttvar += (err.abs() - self.rttvar) / 4.0;
            }
        }
        let rto = self.srtt.unwrap_or(0.0) + 4.0 * self.rttvar;
        self.rto = SimDuration::from_secs_f64(rto.max(0.0))
            .max(cfg.rto_min)
            .min(cfg.rto_max);
    }

    fn on_dup_ack(&mut self) -> bool {
        self.dup_ack_count += 1;
        self.dup_ack_count == DUP_ACK_THRESHOLD
    }

    fn on_new_ack(&mut self) {
        self.dup_ack_count = 0;
        self.retries = 0;
        self.backoff_shift = 0;
    }

    fn on_persist_timeout(&mut self) {
        self.backoff_shift = (self.backoff_shift + 1).min(6);
        self.rtt_probe = None;
    }

    fn on_rto_fired(&mut self, max_retries: u32) -> bool {
        self.retries += 1;
        if self.retries > max_retries {
            return true;
        }
        self.backoff_shift += 1;
        // Karn: do not time retransmitted segments.
        self.rtt_probe = None;
        false
    }

    fn on_retransmit(&mut self) {
        self.rtt_probe = None;
    }

    fn reset_dup_acks(&mut self) {
        self.dup_ack_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobson_estimator_matches_textbook_first_sample() {
        let cfg = TcpConfig::default();
        let mut r = RenoRecovery::new(cfg.rto_init);
        r.on_rtt_sample(0.1, &cfg);
        assert_eq!(r.srtt, Some(0.1));
        assert_eq!(r.rttvar, 0.05);
        // rto = 0.1 + 4*0.05 = 0.3 s, clamped up to rto_min (500 ms).
        assert_eq!(r.rto, cfg.rto_min);
    }

    #[test]
    fn backoff_scales_and_clamps() {
        let cfg = TcpConfig::default();
        let mut r = RenoRecovery::new(cfg.rto_init);
        assert_eq!(r.rexmt_timeout(&cfg), cfg.rto_init);
        for _ in 0..20 {
            let dead = r.on_rto_fired(cfg.max_retries);
            if dead {
                break;
            }
        }
        // Shift capped at 12 when arming; result clamped at rto_max.
        assert_eq!(r.rexmt_timeout(&cfg), cfg.rto_max);
    }

    #[test]
    fn dup_ack_threshold_fires_exactly_once() {
        let mut r = RenoRecovery::new(SimDuration::from_millis(1000));
        assert!(!r.on_dup_ack());
        assert!(!r.on_dup_ack());
        assert!(r.on_dup_ack());
        assert!(!r.on_dup_ack(), "fires only at exactly the threshold");
        r.on_new_ack();
        assert_eq!(r.dup_acks(), 0);
    }
}
