//! The ACK-emission seam: when to acknowledge received data.
//!
//! [`AckStrategy`] decides *whether* an ACK goes out now or rides the
//! delayed-ACK timer; the PCB core owns the timer itself (the deadline
//! lives next to the other connection timers) and the ACK construction.
//! Protocol-mandated ACKs — re-ACKs of old data, the challenge ACK for an
//! unacceptable sequence number, the ACK of a FIN — are not policy and
//! stay in the core.

use lrp_sim::{SimDuration, SimTime};

/// The strategy's verdict for one received segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckDecision {
    /// Emit an ACK immediately (this also clears any pending delayed
    /// ACK — the emitted ACK covers it).
    Now,
    /// Arm the delayed-ACK timer for the given deadline.
    Delay(SimTime),
}

/// Decides ACK emission for in-order and out-of-order arrivals.
///
/// State ownership: a strategy may keep whatever history it wants, but it
/// never constructs segments and never touches the timer directly — it
/// only returns a decision. `pending` tells it whether a delayed ACK is
/// already armed.
pub trait AckStrategy: std::fmt::Debug {
    /// In-order payload was accepted into the receive buffer.
    fn on_in_order_data(&mut self, now: SimTime, pending: Option<SimTime>) -> AckDecision;

    /// An out-of-order segment was stashed: duplicate-ACK emission
    /// policy (fast retransmit at the sender depends on these).
    fn on_out_of_order(&mut self, now: SimTime) -> AckDecision;
}

/// 4.4BSD's ack-every-other policy, extracted verbatim from the
/// pre-refactor monolith: the first in-order segment arms the delayed-ACK
/// timer, the second finds it armed and acks immediately; out-of-order
/// segments always produce an immediate duplicate ACK. `delack: None`
/// degenerates to ack-every-segment.
#[derive(Debug)]
pub struct AckEveryOther {
    /// Delayed-ACK timer duration; `None` acks every segment.
    delack: Option<SimDuration>,
}

impl AckEveryOther {
    /// Policy with the given delayed-ACK timer.
    pub fn new(delack: Option<SimDuration>) -> Self {
        AckEveryOther { delack }
    }
}

impl AckStrategy for AckEveryOther {
    fn on_in_order_data(&mut self, now: SimTime, pending: Option<SimTime>) -> AckDecision {
        match self.delack {
            Some(d) if pending.is_none() => AckDecision::Delay(now + d),
            _ => AckDecision::Now,
        }
    }

    fn on_out_of_order(&mut self, _now: SimTime) -> AckDecision {
        AckDecision::Now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_every_other_alternates() {
        let mut s = AckEveryOther::new(Some(SimDuration::from_millis(200)));
        let t0 = SimTime::ZERO;
        // First segment: delay. Second (timer pending): ack now.
        let d = s.on_in_order_data(t0, None);
        assert_eq!(d, AckDecision::Delay(t0 + SimDuration::from_millis(200)));
        let d2 = s.on_in_order_data(t0, Some(t0 + SimDuration::from_millis(200)));
        assert_eq!(d2, AckDecision::Now);
        // OOO always acks immediately (dup ACK).
        assert_eq!(s.on_out_of_order(t0), AckDecision::Now);
    }

    #[test]
    fn no_delack_acks_every_segment() {
        let mut s = AckEveryOther::new(None);
        assert_eq!(s.on_in_order_data(SimTime::ZERO, None), AckDecision::Now);
    }
}
