//! The congestion-control seam: window management behind a stable trait.
//!
//! [`CongestionControl`] owns the congestion window and slow-start
//! threshold; the PCB core owns everything else (sequence space, buffers,
//! timers) and consults the controller only for `cwnd()` when sizing
//! transmissions. The hooks are the classic loss-signal set — new-data
//! ACK, triple-dup-ACK loss, RTO, idle restart — plus an MSS-negotiation
//! reset, and every hook reads time exclusively from its arguments so any
//! controller is as deterministic as the simulation itself.
//!
//! Three controllers ship behind the seam:
//!
//! - [`NewReno`] — the 4.4BSD slow start / congestion avoidance / fast
//!   recovery arithmetic extracted verbatim from the pre-refactor
//!   monolith. The default, and pinned bit-identical to it by the
//!   determinism goldens.
//! - [`Cubic`] — cubic window growth anchored at the last loss, with
//!   fast convergence and a TCP-friendly additive-increase floor.
//! - [`BbrLite`] — a model-based controller: max-filtered delivery rate ×
//!   min-filtered RTT gives the BDP, the window is a fixed gain over it,
//!   and a deterministic eight-phase pacing-gain cycle stands in for
//!   BBR's ProbeBW. No wall clock, no randomness.

use lrp_sim::SimTime;

/// Selects the congestion controller a connection is created with
/// (plumbed from `HostConfig::tcp_cc` through [`super::TcpConfig::cc`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CcAlgo {
    /// 4.4BSD NewReno: slow start, congestion avoidance, fast recovery.
    #[default]
    NewReno,
    /// Cubic-style growth (concave/convex around the last-loss window).
    Cubic,
    /// Delivery-rate + min-RTT model with deterministic pacing gains.
    BbrLite,
}

impl CcAlgo {
    /// Short lowercase name used in experiment tables and result JSON.
    pub fn name(self) -> &'static str {
        match self {
            CcAlgo::NewReno => "newreno",
            CcAlgo::Cubic => "cubic",
            CcAlgo::BbrLite => "bbr-lite",
        }
    }

    /// Every selectable controller, in presentation order.
    pub fn all() -> [CcAlgo; 3] {
        [CcAlgo::NewReno, CcAlgo::Cubic, CcAlgo::BbrLite]
    }

    /// Parses a [`name`](Self::name) back to the algorithm.
    pub fn from_name(s: &str) -> Option<CcAlgo> {
        CcAlgo::all().into_iter().find(|a| a.name() == s)
    }

    /// Builds the controller. `mss` seeds the initial window; `cap` is
    /// the hard window ceiling (twice the send buffer, matching the
    /// pre-refactor clamp).
    pub fn build(self, mss: usize, cap: usize) -> Box<dyn CongestionControl> {
        match self {
            CcAlgo::NewReno => Box::new(NewReno::new(mss, cap)),
            CcAlgo::Cubic => Box::new(Cubic::new(mss, cap)),
            CcAlgo::BbrLite => Box::new(BbrLite::new(mss, cap)),
        }
    }
}

impl std::fmt::Display for CcAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pluggable congestion controller.
///
/// State ownership: the controller owns `cwnd` and `ssthresh` and nothing
/// else; it must not assume it sees every segment, only the loss-signal
/// hooks below. The PCB core calls the hooks at exactly the points the
/// monolithic implementation mutated its inline window fields, so a
/// controller reproducing that arithmetic is bit-identical to it.
pub trait CongestionControl: std::fmt::Debug {
    /// Which algorithm this is (for reports and result JSON).
    fn algo(&self) -> CcAlgo;

    /// Current congestion window, bytes. Always ≥ 1 MSS.
    fn cwnd(&self) -> usize;

    /// Current slow-start threshold, bytes. Always ≥ 2 MSS.
    fn ssthresh(&self) -> usize;

    /// MSS (re)negotiated during the handshake: the window restarts at
    /// one segment of the new size.
    fn on_mss_negotiated(&mut self, mss: usize);

    /// A new-data ACK arrived. `acked` is the number of bytes this ACK
    /// newly acknowledged; `rtt_s` carries the Karn-filtered RTT sample
    /// if this ACK produced one (at most one per window).
    fn on_ack(&mut self, now: SimTime, acked: usize, rtt_s: Option<f64>);

    /// Loss inferred from three duplicate ACKs (fast retransmit).
    /// `flight` is the number of bytes in flight when the signal fired.
    fn on_loss(&mut self, now: SimTime, flight: usize);

    /// The retransmission timer fired. `flight` as in
    /// [`on_loss`](Self::on_loss).
    fn on_rto(&mut self, now: SimTime, flight: usize);

    /// The connection sat idle (nothing in flight, empty send buffer) and
    /// the application is writing again. Controllers with rate models may
    /// restart them; NewReno deliberately does nothing, preserving
    /// bit-identity with the pre-refactor code.
    fn on_idle_restart(&mut self, now: SimTime);

    /// Deterministic pacing-rate hint: the multiple of `cwnd / RTT` the
    /// controller would pace at, ×1024. The simulated output engine does
    /// not pace (it is window-limited only), so this is advisory —
    /// surfaced to telemetry so rate-based controllers are observable.
    fn pacing_gain_x1024(&self) -> u32 {
        1024
    }
}

// ---- NewReno ----

/// The 4.4BSD arithmetic extracted from the monolithic `tcp.rs`: slow
/// start below `ssthresh`, additive increase above it, half-flight
/// `ssthresh` on loss, window collapse to one MSS on RTO.
#[derive(Debug)]
pub struct NewReno {
    mss: usize,
    cap: usize,
    cwnd: usize,
    ssthresh: usize,
}

impl NewReno {
    /// One MSS of initial window, the classic 65 535-byte `ssthresh`.
    pub fn new(mss: usize, cap: usize) -> Self {
        NewReno {
            mss,
            cap,
            cwnd: mss,
            ssthresh: 65_535,
        }
    }
}

impl CongestionControl for NewReno {
    fn algo(&self) -> CcAlgo {
        CcAlgo::NewReno
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn on_mss_negotiated(&mut self, mss: usize) {
        self.mss = mss;
        self.cwnd = mss;
        // Keeps the ssthresh ≥ 2 MSS invariant if the MSS grew. A no-op
        // during a real handshake (ssthresh is still the initial 65 535),
        // so NewReno stays bit-identical to the monolith.
        self.ssthresh = self.ssthresh.max(2 * mss);
    }

    fn on_ack(&mut self, _now: SimTime, _acked: usize, _rtt_s: Option<f64>) {
        if self.cwnd < self.ssthresh {
            self.cwnd += self.mss;
        } else {
            self.cwnd += ((self.mss * self.mss) / self.cwnd).max(1);
        }
        self.cwnd = self.cwnd.min(self.cap);
    }

    fn on_loss(&mut self, _now: SimTime, flight: usize) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
    }

    fn on_rto(&mut self, _now: SimTime, flight: usize) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {}
}

// ---- Cubic ----

/// The cubic's scaling constant, segments/s³.
const CUBIC_C: f64 = 0.4;
/// Multiplicative-decrease factor.
const CUBIC_BETA: f64 = 0.7;

/// Cubic-style congestion avoidance: after a loss the window follows
/// `W(t) = C·(t−K)³ + W_max` (in segments) — concave up to the previous
/// peak, convex past it — with fast convergence releasing bandwidth when
/// losses arrive before the peak is regained, and a TCP-friendly floor of
/// one Reno additive increase per ACK.
#[derive(Debug)]
pub struct Cubic {
    mss: usize,
    cap: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Window, bytes, just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch: Option<SimTime>,
    /// Seconds for the cubic to return to `w_max` from the epoch start.
    k: f64,
}

impl Cubic {
    /// Same initial window as NewReno.
    pub fn new(mss: usize, cap: usize) -> Self {
        Cubic {
            mss,
            cap,
            cwnd: mss,
            ssthresh: 65_535,
            w_max: 0.0,
            epoch: None,
            k: 0.0,
        }
    }

    /// `W(t)` in bytes at `t` seconds into the epoch.
    fn target(&self, t: f64) -> f64 {
        let mssf = self.mss as f64;
        (CUBIC_C * (t - self.k).powi(3) + self.w_max / mssf) * mssf
    }
}

impl CongestionControl for Cubic {
    fn algo(&self) -> CcAlgo {
        CcAlgo::Cubic
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn on_mss_negotiated(&mut self, mss: usize) {
        self.mss = mss;
        self.cwnd = mss;
        self.ssthresh = self.ssthresh.max(2 * mss);
    }

    fn on_ack(&mut self, now: SimTime, _acked: usize, _rtt_s: Option<f64>) {
        if self.cwnd < self.ssthresh {
            self.cwnd += self.mss;
        } else {
            let t = match self.epoch {
                Some(e) => now.since(e).as_secs_f64(),
                None => {
                    // New avoidance epoch: anchor the cubic at the
                    // current window.
                    self.epoch = Some(now);
                    if self.w_max < self.cwnd as f64 {
                        self.w_max = self.cwnd as f64;
                    }
                    self.k = ((self.w_max - self.cwnd as f64) / (CUBIC_C * self.mss as f64))
                        .max(0.0)
                        .cbrt();
                    0.0
                }
            };
            let target = self.target(t);
            if target > self.cwnd as f64 {
                // Spread the climb to the target over one window of ACKs.
                let segs = (self.cwnd / self.mss).max(1);
                self.cwnd += ((target - self.cwnd as f64) as usize / segs).max(1);
            } else {
                // At/above the cubic (TCP-friendly region): Reno's
                // additive increase.
                self.cwnd += ((self.mss * self.mss) / self.cwnd).max(1);
            }
        }
        self.cwnd = self.cwnd.min(self.cap);
    }

    fn on_loss(&mut self, _now: SimTime, _flight: usize) {
        let w = self.cwnd as f64;
        // Fast convergence: remember a *lower* peak when the window never
        // regained the previous one, ceding bandwidth to new flows.
        self.w_max = if w < self.w_max {
            w * (2.0 - CUBIC_BETA) / 2.0
        } else {
            w
        };
        self.ssthresh = ((w * CUBIC_BETA) as usize).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.epoch = None;
    }

    fn on_rto(&mut self, _now: SimTime, _flight: usize) {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * CUBIC_BETA) as usize).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch = None;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        self.epoch = None;
    }
}

// ---- BBR-lite ----

/// ProbeBW pacing-gain cycle (×1024): one probe phase, one drain phase,
/// six cruise phases.
const BBR_GAIN_CYCLE_X1024: [u32; 8] = [1280, 768, 1024, 1024, 1024, 1024, 1024, 1024];
/// Startup pacing gain (×1024): 2/ln 2 ≈ 2.885.
const BBR_STARTUP_GAIN_X1024: u32 = 2954;
/// Window gain over the estimated BDP (×1024): BBR's 2×.
const BBR_CWND_GAIN_X1024: usize = 2048;
/// Window floor, in segments, once the model drives the window.
const BBR_MIN_SEGS: usize = 4;

/// A reduced BBR: bottleneck bandwidth is the max-filtered delivery rate
/// (bytes acked between ACKs over elapsed simulated time), the RTT floor
/// is min-filtered from the PCB's Karn-filtered samples, and the window
/// is `2 × BDP` once both estimates exist. Startup grows the window
/// exponentially (one acked byte adds one window byte) until it overshoots
/// twice the estimated BDP. Loss does not collapse the model — a triple
/// dup-ACK trims the window by a quarter — but an RTO resets it entirely.
/// The pacing-gain cycle advances once per min-RTT of simulated time,
/// making the ProbeBW phases deterministic without a wall clock.
#[derive(Debug)]
pub struct BbrLite {
    mss: usize,
    cap: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Max-filtered delivery rate, bytes/second.
    btl_bw: f64,
    /// Min-filtered round-trip time, seconds.
    min_rtt: Option<f64>,
    /// Cumulative bytes delivered (acked).
    delivered: u64,
    /// Delivery-rate sample anchor: (time, `delivered` then).
    rate_anchor: Option<(SimTime, u64)>,
    /// Index into [`BBR_GAIN_CYCLE_X1024`].
    cycle_idx: usize,
    /// When the current gain phase began.
    cycle_start: Option<SimTime>,
    /// Startup: exponential growth until the pipe looks full.
    startup: bool,
}

impl BbrLite {
    /// Same initial window as NewReno; the model takes over once it has
    /// a rate and an RTT.
    pub fn new(mss: usize, cap: usize) -> Self {
        BbrLite {
            mss,
            cap,
            cwnd: mss,
            ssthresh: 65_535,
            btl_bw: 0.0,
            min_rtt: None,
            delivered: 0,
            rate_anchor: None,
            cycle_idx: 0,
            cycle_start: None,
            startup: true,
        }
    }

    /// Estimated bandwidth-delay product, bytes (0 until both estimates
    /// exist).
    fn bdp(&self) -> f64 {
        self.min_rtt.map_or(0.0, |r| self.btl_bw * r)
    }
}

impl CongestionControl for BbrLite {
    fn algo(&self) -> CcAlgo {
        CcAlgo::BbrLite
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn on_mss_negotiated(&mut self, mss: usize) {
        self.mss = mss;
        self.cwnd = mss;
        self.ssthresh = self.ssthresh.max(2 * mss);
    }

    fn on_ack(&mut self, now: SimTime, acked: usize, rtt_s: Option<f64>) {
        self.delivered += acked as u64;
        if let Some(r) = rtt_s {
            if self.min_rtt.is_none_or(|m| r < m) {
                self.min_rtt = Some(r);
            }
        }
        // Delivery-rate sample: bytes delivered since the anchor over the
        // simulated time elapsed. Max filter (reset only by RTO).
        match self.rate_anchor {
            None => self.rate_anchor = Some((now, self.delivered)),
            Some((t0, d0)) => {
                let dt = now.since(t0).as_secs_f64();
                if dt > 0.0 {
                    let rate = (self.delivered - d0) as f64 / dt;
                    if rate > self.btl_bw {
                        self.btl_bw = rate;
                    }
                    self.rate_anchor = Some((now, self.delivered));
                }
            }
        }
        // Advance the ProbeBW gain cycle once per min-RTT.
        if let Some(mrtt) = self.min_rtt {
            match self.cycle_start {
                None => self.cycle_start = Some(now),
                Some(t0) if now.since(t0).as_secs_f64() >= mrtt => {
                    self.cycle_idx = (self.cycle_idx + 1) % BBR_GAIN_CYCLE_X1024.len();
                    self.cycle_start = Some(now);
                }
                _ => {}
            }
        }
        let bdp = self.bdp();
        if self.startup {
            self.cwnd += acked;
            if bdp > 0.0 && self.cwnd as f64 > 2.0 * bdp {
                self.startup = false;
            }
        }
        if !self.startup && bdp > 0.0 {
            let target = (bdp as usize * BBR_CWND_GAIN_X1024) >> 10;
            self.cwnd = target.max(BBR_MIN_SEGS * self.mss);
        }
        self.cwnd = self.cwnd.clamp(self.mss, self.cap);
    }

    fn on_loss(&mut self, _now: SimTime, _flight: usize) {
        // BBR does not treat isolated loss as a congestion signal; trim
        // modestly so a persistently lossy path still sheds load.
        self.cwnd = (self.cwnd - self.cwnd / 4).max(self.mss).min(self.cap);
    }

    fn on_rto(&mut self, _now: SimTime, flight: usize) {
        // The model was wrong enough to stall the pipe: rebuild it.
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.btl_bw = 0.0;
        self.rate_anchor = None;
        self.cycle_idx = 0;
        self.cycle_start = None;
        self.startup = true;
        self.cwnd = self.mss;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        // Stale rate samples would span the idle gap; restart sampling.
        self.rate_anchor = None;
        self.cycle_idx = 0;
        self.cycle_start = None;
    }

    fn pacing_gain_x1024(&self) -> u32 {
        if self.startup {
            BBR_STARTUP_GAIN_X1024
        } else {
            BBR_GAIN_CYCLE_X1024[self.cycle_idx]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MSS: usize = 1000;
    const CAP: usize = 64 * 1024;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + lrp_sim::SimDuration::from_millis(ms)
    }

    #[test]
    fn newreno_exits_slow_start_at_ssthresh() {
        let mut cc = NewReno::new(MSS, CAP);
        // Pull ssthresh down via a loss so the exit is observable.
        cc.on_loss(SimTime::ZERO, 8 * MSS); // ssthresh = 4*MSS, cwnd = 7*MSS
        cc.on_rto(SimTime::ZERO, 8 * MSS); // ssthresh = 4*MSS, cwnd = MSS
        assert_eq!(cc.ssthresh(), 4 * MSS);
        // Slow start: one MSS per ACK while below ssthresh.
        let mut deltas = Vec::new();
        for i in 0..6 {
            let before = cc.cwnd();
            cc.on_ack(t(i), MSS, None);
            deltas.push(cc.cwnd() - before);
        }
        // First three ACKs (cwnd 1000, 2000, 3000 < 4000): +MSS each.
        assert_eq!(&deltas[..3], &[MSS, MSS, MSS]);
        // From cwnd = 4000 = ssthresh: additive increase, strictly less
        // than an MSS per ACK.
        assert!(deltas[3..].iter().all(|&d| d < MSS), "{deltas:?}");
    }

    #[test]
    fn newreno_matches_monolith_arithmetic() {
        // The exact expressions the monolith used, replayed side by side.
        let mut cc = NewReno::new(MSS, CAP);
        let (mut cwnd, mut ssthresh) = (MSS, 65_535usize);
        for i in 0..200u64 {
            match i % 50 {
                7 => {
                    let flight = 9 * MSS;
                    ssthresh = (flight / 2).max(2 * MSS);
                    cwnd = ssthresh + 3 * MSS;
                    cc.on_loss(t(i), flight);
                }
                23 => {
                    let flight = 5 * MSS;
                    ssthresh = (flight / 2).max(2 * MSS);
                    cwnd = MSS;
                    cc.on_rto(t(i), flight);
                }
                _ => {
                    if cwnd < ssthresh {
                        cwnd += MSS;
                    } else {
                        cwnd += ((MSS * MSS) / cwnd).max(1);
                    }
                    cwnd = cwnd.min(CAP);
                    cc.on_ack(t(i), MSS, None);
                }
            }
            assert_eq!(cc.cwnd(), cwnd, "ack #{i}");
            assert_eq!(cc.ssthresh(), ssthresh, "ack #{i}");
        }
    }

    #[test]
    fn cubic_growth_is_concave_then_convex_around_w_max() {
        let mut cc = Cubic::new(MSS, 1 << 20);
        // Get into avoidance with a meaningful w_max: grow, then lose.
        for i in 0..40 {
            cc.on_ack(t(i), MSS, None);
        }
        let w_before_loss = cc.cwnd();
        cc.on_loss(t(100), w_before_loss);
        // Replay ACKs on a fixed 10 ms cadence and record the window.
        // Long enough that the convex segment past w_max is as wide as
        // the concave climb back to it.
        let mut curve = Vec::new();
        for i in 0..800u64 {
            cc.on_ack(t(200 + 10 * i), MSS, None);
            curve.push(cc.cwnd());
        }
        // The curve regains the pre-loss window...
        assert!(
            *curve.last().unwrap() > w_before_loss,
            "never regained w_max: {} <= {}",
            curve.last().unwrap(),
            w_before_loss
        );
        // ...and the mean step while climbing back (concave region) is
        // smaller than the mean step after passing it (convex region).
        let cross = curve
            .iter()
            .position(|&w| w >= w_before_loss)
            .expect("crossed w_max");
        // Skip the first samples right after the loss (steepest part of
        // the concave segment) and compare the flat middle to the tail.
        let mid = cross / 2;
        let concave: f64 = curve[mid..cross]
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .sum::<f64>()
            / (cross - mid).max(1) as f64;
        let tail = &curve[cross..];
        let convex: f64 =
            tail.windows(2).map(|w| (w[1] - w[0]) as f64).sum::<f64>() / tail.len() as f64;
        assert!(
            convex > concave,
            "no convex acceleration past w_max: concave {concave:.1} vs convex {convex:.1}"
        );
    }

    #[test]
    fn cubic_fast_convergence_lowers_the_peak() {
        let mut cc = Cubic::new(MSS, 1 << 20);
        for i in 0..40 {
            cc.on_ack(t(i), MSS, None);
        }
        let w1 = cc.cwnd();
        cc.on_loss(t(50), w1);
        let w_after_first = cc.cwnd();
        // Second loss before regaining the peak: ssthresh must land
        // *below* beta times the first peak (bandwidth ceded).
        cc.on_loss(t(60), w_after_first);
        assert!(cc.ssthresh() < (w1 as f64 * CUBIC_BETA) as usize);
        assert!(cc.ssthresh() >= 2 * MSS);
    }

    #[test]
    fn bbr_lite_steady_state_window_is_bounded_by_the_model() {
        let mut cc = BbrLite::new(MSS, 1 << 24);
        // Synthetic steady path: 10 MB/s delivery, 20 ms RTT, one ACK of
        // one MSS every 100 µs of simulated time.
        let rate = 10_000_000.0; // bytes/s
        let rtt = 0.020; // seconds
        let mut now = SimTime::ZERO;
        for _ in 0..5_000u32 {
            now += lrp_sim::SimDuration::from_micros(100);
            cc.on_ack(now, MSS, Some(rtt));
        }
        // Per-sample delivery rate is MSS / 100 µs = 10 MB/s, so the
        // model's BDP is rate × rtt and the window must settle at the
        // fixed gain over it (never above, never below the floor).
        let bdp = rate * rtt;
        let bound = (bdp as usize * BBR_CWND_GAIN_X1024) >> 10;
        assert!(
            cc.cwnd() <= bound + MSS,
            "cwnd {} exceeds 2×BDP bound {}",
            cc.cwnd(),
            bound
        );
        assert!(cc.cwnd() >= BBR_MIN_SEGS * MSS);
        // Out of startup, and stable: more ACKs at the same rate do not
        // move the window.
        let settled = cc.cwnd();
        for _ in 0..500u32 {
            now += lrp_sim::SimDuration::from_micros(100);
            cc.on_ack(now, MSS, Some(rtt));
        }
        assert_eq!(cc.cwnd(), settled, "window drifted in steady state");
    }

    #[test]
    fn bbr_lite_rto_resets_the_model() {
        let mut cc = BbrLite::new(MSS, 1 << 24);
        let mut now = SimTime::ZERO;
        for _ in 0..1_000u32 {
            now += lrp_sim::SimDuration::from_micros(100);
            cc.on_ack(now, MSS, Some(0.02));
        }
        cc.on_rto(now, 10 * MSS);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 5 * MSS);
        assert_eq!(cc.pacing_gain_x1024(), BBR_STARTUP_GAIN_X1024);
    }

    /// One randomly drawn controller event.
    #[derive(Clone, Copy, Debug)]
    enum Ev {
        Ack {
            dt_us: u64,
            acked: usize,
            rtt_us: Option<u64>,
        },
        Loss {
            flight_segs: usize,
        },
        Rto {
            flight_segs: usize,
        },
        Idle,
        Mss {
            mss: usize,
        },
    }

    fn ev_strategy() -> impl Strategy<Value = Ev> {
        prop_oneof![
            (
                1u64..100_000,
                1usize..20_000,
                proptest::option::of(100u64..1_000_000)
            )
                .prop_map(|(dt_us, acked, rtt_us)| Ev::Ack {
                    dt_us,
                    acked,
                    rtt_us
                }),
            (0usize..200).prop_map(|flight_segs| Ev::Loss { flight_segs }),
            (0usize..200).prop_map(|flight_segs| Ev::Rto { flight_segs }),
            Just(Ev::Idle),
            (536usize..9_200).prop_map(|mss| Ev::Mss { mss }),
        ]
    }

    proptest! {
        /// Every controller keeps `cwnd >= 1 MSS` and `ssthresh >= 2 MSS`
        /// under arbitrary ack/loss/RTO/idle/MSS-renegotiation sequences
        /// (and `cwnd` never exceeds the construction-time cap).
        #[test]
        fn window_invariants_hold_under_arbitrary_events(
            algo_idx in 0usize..3,
            evs in proptest::collection::vec(ev_strategy(), 1..200),
        ) {
            let algo = CcAlgo::all()[algo_idx];
            let mut mss = MSS;
            let mut cc = algo.build(mss, CAP);
            let mut now = SimTime::ZERO;
            for ev in &evs {
                match *ev {
                    Ev::Ack { dt_us, acked, rtt_us } => {
                        now += lrp_sim::SimDuration::from_micros(dt_us);
                        cc.on_ack(now, acked, rtt_us.map(|u| u as f64 / 1e6));
                    }
                    Ev::Loss { flight_segs } => cc.on_loss(now, flight_segs * mss),
                    Ev::Rto { flight_segs } => cc.on_rto(now, flight_segs * mss),
                    Ev::Idle => cc.on_idle_restart(now),
                    Ev::Mss { mss: m } => {
                        mss = m;
                        cc.on_mss_negotiated(m);
                    }
                }
                prop_assert!(
                    cc.cwnd() >= mss,
                    "{algo:?}: cwnd {} < 1 MSS ({mss}) after {ev:?}",
                    cc.cwnd()
                );
                prop_assert!(
                    cc.ssthresh() >= 2 * mss,
                    "{algo:?}: ssthresh {} < 2 MSS ({mss}) after {ev:?}",
                    cc.ssthresh()
                );
                // The cap applies on the ACK path; the loss path may
                // transiently overshoot (BSD's ssthresh + 3 MSS inflation,
                // preserved verbatim for bit-identity) until the next ACK
                // clamps it.
                if matches!(ev, Ev::Ack { .. }) {
                    prop_assert!(cc.cwnd() <= CAP.max(2 * mss), "{algo:?}: cwnd above cap");
                }
            }
        }
    }
}
