//! Stateless SYN cookies (RFC 4987 §3.6 style, adapted to the simulator).
//!
//! Under a SYN flood the half-open table is the resource the attacker
//! exhausts. The SYN cache (PR 5) bounds the damage by evicting the
//! oldest embryonic entry; cookies remove the table from the equation
//! entirely: the listener answers every SYN with a SYN|ACK whose initial
//! sequence number *is* the connection state, keyed so only a peer that
//! actually received the SYN|ACK can echo it back. No memory is
//! allocated until the final ACK of the handshake validates.
//!
//! Cookie layout (32 bits, the ISN of the SYN|ACK):
//!
//! ```text
//!  31        27 26    25 24                         0
//! ┌────────────┬────────┬────────────────────────────┐
//! │ tick mod 32│ mss idx│ keyed hash (25 bits)       │
//! └────────────┴────────┴────────────────────────────┘
//! ```
//!
//! - `tick` — coarse timestamp ([`COOKIE_TICK`] granularity). A cookie
//!   is accepted for the current and the previous tick, so a handshake
//!   straddling a tick boundary still completes while replayed cookies
//!   go stale within two ticks.
//! - `mss idx` — index into [`MSS_TABLE`]: the largest entry ≤ the MSS
//!   the SYN advertised. The connection's effective MSS is recovered
//!   from the validated cookie (quantized — the price of statelessness).
//! - `hash` — SplitMix64-finalizer hash of the 4-tuple, tick, MSS index
//!   and the per-host key. The key is derived deterministically from the
//!   host address so same-seed simulations stay bit-identical and no
//!   shared RNG stream is perturbed.
//!
//! Everything here is pure integer math on arguments — no I/O, no
//! global state — matching the rest of the TCP machine.

use lrp_sim::{SimDuration, SimTime};
use lrp_wire::{Endpoint, Ipv4Addr};

/// Granularity of the cookie timestamp. Two ticks bound cookie lifetime
/// (accept current + previous), comfortably longer than any sane
/// SYN|ACK→ACK round trip and far shorter than a flood.
pub const COOKIE_TICK: SimDuration = SimDuration::from_secs(4);

/// The MSS values a cookie can encode (2 bits). Chosen for the simulated
/// ATM LAN (9140 default) plus classic Ethernet/conservative fallbacks.
pub const MSS_TABLE: [u16; 4] = [536, 1460, 4380, 9140];

/// SplitMix64 finalizer: a strong 64→64 bit mixer (Steele et al.).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the per-host cookie key from the host's own address. Purely
/// deterministic — reboots and same-seed reruns mint identical cookies,
/// which the chaos digests rely on.
pub fn host_key(addr: Ipv4Addr) -> u64 {
    mix64(u64::from(u32::from(addr)) ^ 0x5EED_C00C_1E5A_FE00)
}

/// The largest [`MSS_TABLE`] index whose value is ≤ `mss` (index 0 when
/// everything is larger — the conservative floor).
fn mss_index(mss: u16) -> u8 {
    let mut idx = 0u8;
    for (i, &m) in MSS_TABLE.iter().enumerate() {
        if m <= mss {
            idx = i as u8;
        }
    }
    idx
}

fn tick_of(now: SimTime) -> u64 {
    now.as_nanos() / COOKIE_TICK.as_nanos()
}

fn hash25(key: u64, local: Endpoint, remote: Endpoint, tick: u64, mss_idx: u8) -> u32 {
    let tuple = (u64::from(u32::from(local.addr)) << 32) | u64::from(u32::from(remote.addr));
    let ports = (u64::from(local.port) << 48) | (u64::from(remote.port) << 32);
    let h = mix64(key ^ tuple).wrapping_add(mix64(ports ^ (tick << 8) ^ u64::from(mss_idx)));
    (mix64(h) & 0x01FF_FFFF) as u32
}

/// Mints the cookie ISN for a SYN from `remote` advertising `peer_mss`.
pub fn encode(
    key: u64,
    local: Endpoint,
    remote: Endpoint,
    peer_mss: Option<u16>,
    now: SimTime,
) -> u32 {
    let tick = tick_of(now);
    let mss_idx = mss_index(peer_mss.unwrap_or(MSS_TABLE[0]));
    let h = hash25(key, local, remote, tick, mss_idx);
    ((tick as u32 & 0x1F) << 27) | (u32::from(mss_idx) << 25) | h
}

/// Validates a cookie echoed back as `ack - 1` on the handshake's final
/// ACK. Returns the MSS the cookie carries when the hash matches and the
/// cookie is at most one tick old; `None` otherwise.
pub fn decode(
    key: u64,
    local: Endpoint,
    remote: Endpoint,
    cookie: u32,
    now: SimTime,
) -> Option<u16> {
    let cur = tick_of(now);
    let tick5 = (cookie >> 27) & 0x1F;
    let mss_idx = ((cookie >> 25) & 0x3) as u8;
    let h = cookie & 0x01FF_FFFF;
    // Reconstruct the full tick from its low 5 bits: it must be the
    // current or previous tick.
    let tick = [cur, cur.wrapping_sub(1)]
        .into_iter()
        .find(|t| (*t as u32) & 0x1F == tick5)?;
    if hash25(key, local, remote, tick, mss_idx) != h {
        return None;
    }
    Some(MSS_TABLE[mss_idx as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: Endpoint = Endpoint {
        addr: Ipv4Addr::new(10, 0, 0, 2),
        port: 80,
    };
    const R: Endpoint = Endpoint {
        addr: Ipv4Addr::new(10, 0, 0, 7),
        port: 40_001,
    };

    fn key() -> u64 {
        host_key(L.addr)
    }

    #[test]
    fn round_trips_within_validity() {
        let t0 = SimTime::ZERO;
        let c = encode(key(), L, R, Some(9140), t0);
        assert_eq!(decode(key(), L, R, c, t0), Some(9140));
        // Still valid one tick later.
        let t1 = SimTime::ZERO + COOKIE_TICK;
        assert_eq!(decode(key(), L, R, c, t1), Some(9140));
        // Stale after two ticks.
        let t2 = SimTime::ZERO + COOKIE_TICK + COOKIE_TICK;
        assert_eq!(decode(key(), L, R, c, t2), None);
    }

    #[test]
    fn mss_is_quantized_to_table_floor() {
        let t0 = SimTime::ZERO;
        for (adv, want) in [
            (Some(100), 536),
            (Some(536), 536),
            (Some(1459), 536),
            (Some(1460), 1460),
            (Some(5000), 4380),
            (Some(9140), 9140),
            (Some(65_000), 9140),
            (None, 536),
        ] {
            let c = encode(key(), L, R, adv, t0);
            assert_eq!(decode(key(), L, R, c, t0), Some(want), "adv {adv:?}");
        }
    }

    #[test]
    fn wrong_tuple_or_key_rejects() {
        let t0 = SimTime::ZERO;
        let c = encode(key(), L, R, Some(1460), t0);
        let other = Endpoint::new(Ipv4Addr::new(10, 0, 0, 9), 40_001);
        assert_eq!(decode(key(), L, other, c, t0), None, "wrong remote");
        assert_eq!(decode(key() ^ 1, L, R, c, t0), None, "wrong key");
        // A guessed ISN (bit flip in the hash) never validates.
        assert_eq!(decode(key(), L, R, c ^ 1, t0), None, "forged hash");
    }

    #[test]
    fn host_key_is_per_host_and_deterministic() {
        let a = host_key(Ipv4Addr::new(10, 0, 0, 1));
        let b = host_key(Ipv4Addr::new(10, 0, 0, 2));
        assert_ne!(a, b);
        assert_eq!(a, host_key(Ipv4Addr::new(10, 0, 0, 1)));
    }
}
