//! Unit tests for the TCP state machine, using an in-memory segment pipe
//! between two connections with controllable loss.

use super::*;
use lrp_wire::Ipv4Addr;

fn ep(last: u8, port: u16) -> Endpoint {
    Endpoint::new(Ipv4Addr::new(10, 0, 0, last), port)
}

/// Drop filter: `(direction, nth segment, segment) -> drop?`.
type DropFn = Box<dyn FnMut(u8, u64, &Segment) -> bool>;

/// A deterministic driver connecting two TcpConns with FIFO delivery,
/// per-direction drop filters, and virtual time.
struct Driver {
    a: TcpConn,
    b: TcpConn,
    now: SimTime,
    /// Queued segments (dir, Segment); dir=0 is a→b.
    wire: std::collections::VecDeque<(u8, Segment)>,
    events_a: Vec<ConnEvent>,
    events_b: Vec<ConnEvent>,
    /// Returns true to DROP the nth segment in the given direction.
    drop_fn: DropFn,
    sent_count: [u64; 2],
}

impl Driver {
    fn new(cfg: TcpConfig) -> Self {
        let a = TcpConn::new(cfg, ep(1, 1000), ep(2, 2000), 100);
        let b = TcpConn::new(cfg, ep(2, 2000), ep(1, 1000), 900_000);
        Driver {
            a,
            b,
            now: SimTime::ZERO,
            wire: Default::default(),
            events_a: vec![],
            events_b: vec![],
            drop_fn: Box::new(|_, _, _| false),
            sent_count: [0, 0],
        }
    }

    fn absorb(&mut self, dir: u8, acts: Actions) {
        for seg in acts.segments {
            let n = self.sent_count[dir as usize];
            self.sent_count[dir as usize] += 1;
            if !(self.drop_fn)(dir, n, &seg) {
                self.wire.push_back((dir, seg));
            }
        }
        let evs = if dir == 0 {
            &mut self.events_a
        } else {
            &mut self.events_b
        };
        evs.extend(acts.events);
    }

    /// Runs until the wire is empty and no timer is pending, or `max_steps`
    /// is exceeded.
    fn run(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if let Some((dir, seg)) = self.wire.pop_front() {
                // Latency: 100us per hop keeps RTT sane for RTO tests.
                self.now += SimDuration::from_micros(100);
                let acts = if dir == 0 {
                    self.b.on_segment(self.now, &seg.hdr, &seg.payload)
                } else {
                    self.a.on_segment(self.now, &seg.hdr, &seg.payload)
                };
                self.absorb(1 - dir, acts);
                continue;
            }
            // Idle: advance to the next timer.
            let da = self.a.next_deadline();
            let db = self.b.next_deadline();
            let next = match (da, db) {
                (Some(x), Some(y)) => x.min(y),
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (None, None) => return,
            };
            self.now = next;
            if da.is_some_and(|d| d <= self.now) {
                let acts = self.a.on_timer(self.now);
                self.absorb(0, acts);
            }
            if db.is_some_and(|d| d <= self.now) {
                let acts = self.b.on_timer(self.now);
                self.absorb(1, acts);
            }
        }
    }
}

fn cfg() -> TcpConfig {
    TcpConfig {
        mss: 1460,
        ..TcpConfig::default()
    }
}

#[test]
fn handshake_establishes_both_ends() {
    let mut d = Driver::new(cfg());
    // Make b a passive opener by faking listener behaviour: b in Closed
    // responds with RST normally, so drive the passive side via accept_syn.
    let acts = d.a.connect(d.now);
    assert_eq!(d.a.state, TcpState::SynSent);
    let syn = &acts.segments[0];
    assert!(syn.hdr.has(flags::SYN));
    assert_eq!(syn.hdr.mss, Some(1460));
    let (mut b2, acts_b) =
        TcpConn::accept_syn(cfg(), ep(2, 2000), ep(1, 1000), 900_000, &syn.hdr, d.now);
    assert_eq!(b2.state, TcpState::SynReceived);
    let synack = &acts_b.segments[0];
    assert!(synack.hdr.has(flags::SYN | flags::ACK));
    let acts_a2 = d.a.on_segment(d.now, &synack.hdr, &[]);
    assert_eq!(d.a.state, TcpState::Established);
    assert!(acts_a2.events.contains(&ConnEvent::Established));
    let ack = &acts_a2.segments[0];
    let acts_b2 = b2.on_segment(d.now, &ack.hdr, &[]);
    assert_eq!(b2.state, TcpState::Established);
    assert!(acts_b2.events.contains(&ConnEvent::Established));
}

/// Builds an established pair by running a full handshake through the
/// driver (replacing `b` with the accept_syn-created conn).
fn established(mut d: Driver) -> Driver {
    let acts = d.a.connect(d.now);
    let syn = acts.segments.into_iter().next().unwrap();
    let (b2, acts_b) = TcpConn::accept_syn(
        *d.b.config(),
        ep(2, 2000),
        ep(1, 1000),
        900_000,
        &syn.hdr,
        d.now,
    );
    d.b = b2;
    d.absorb(1, acts_b);
    d.run(200);
    assert_eq!(d.a.state, TcpState::Established);
    assert_eq!(d.b.state, TcpState::Established);
    d
}

#[test]
fn simple_data_transfer() {
    let mut d = established(Driver::new(cfg()));
    let (n, acts) = d.a.write(d.now, b"hello tcp");
    assert_eq!(n, 9);
    d.absorb(0, acts);
    d.run(200);
    assert!(d.events_b.contains(&ConnEvent::DataReady));
    let (data, _) = d.b.read(100);
    assert_eq!(data, b"hello tcp");
}

#[test]
fn bidirectional_transfer() {
    let mut d = established(Driver::new(cfg()));
    let (_, acts) = d.a.write(d.now, b"ping");
    d.absorb(0, acts);
    let (_, acts) = d.b.write(d.now, b"pong");
    d.absorb(1, acts);
    d.run(400);
    assert_eq!(d.b.read(100).0, b"ping");
    assert_eq!(d.a.read(100).0, b"pong");
}

#[test]
fn bulk_transfer_respects_mss_and_completes() {
    let mut d = established(Driver::new(cfg()));
    let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < payload.len() {
        guard += 1;
        assert!(guard < 10_000, "transfer did not complete");
        if sent < payload.len() {
            let (n, acts) = d.a.write(d.now, &payload[sent..]);
            sent += n;
            d.absorb(0, acts);
        }
        d.run(50);
        let (chunk, acts) = d.b.read(usize::MAX);
        received.extend_from_slice(&chunk);
        d.absorb(1, acts);
    }
    assert_eq!(received, payload);
    assert_eq!(d.a.stats.retransmits, 0, "clean path: no retransmits");
    assert!(d.a.cwnd() > 1460, "slow start grew the window");
}

#[test]
fn lost_segment_recovered_by_rto() {
    let mut d = established(Driver::new(cfg()));
    // Drop the first data segment a sends after establishment.
    let base = d.sent_count[0];
    d.drop_fn = Box::new(move |dir, n, seg| dir == 0 && n == base && !seg.payload.is_empty());
    let (_, acts) = d.a.write(d.now, b"will be lost then retransmitted");
    d.absorb(0, acts);
    d.run(500);
    assert_eq!(d.b.read(100).0, b"will be lost then retransmitted");
    assert!(d.a.stats.timeouts >= 1);
    assert!(d.a.stats.retransmits >= 1);
}

#[test]
fn fast_retransmit_on_dup_acks() {
    let cfg_small = TcpConfig {
        mss: 1000,
        delack: None, // Immediate acks make dup-acks deterministic.
        ..TcpConfig::default()
    };
    let mut d = established(Driver::new(cfg_small));
    // Pump the window up with a clean 40k transfer first.
    let warm: Vec<u8> = vec![7; 40_000];
    let mut sent = 0;
    let mut got = 0;
    while got < warm.len() {
        if sent < warm.len() {
            let (n, acts) = d.a.write(d.now, &warm[sent..]);
            sent += n;
            d.absorb(0, acts);
        }
        d.run(50);
        let (chunk, acts) = d.b.read(usize::MAX);
        got += chunk.len();
        d.absorb(1, acts);
    }
    assert!(
        d.a.cwnd() >= 4 * 1000,
        "need cwnd >= 4 segments for 3 dupacks"
    );
    // Now drop exactly one upcoming data segment.
    let target = d.sent_count[0];
    d.drop_fn = Box::new(move |dir, n, _| dir == 0 && n == target);
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 13) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < payload.len() {
        guard += 1;
        assert!(guard < 10_000);
        if sent < payload.len() {
            let (n, acts) = d.a.write(d.now, &payload[sent..]);
            sent += n;
            d.absorb(0, acts);
        }
        d.run(50);
        let (chunk, acts) = d.b.read(usize::MAX);
        received.extend_from_slice(&chunk);
        d.absorb(1, acts);
    }
    assert_eq!(received, payload);
    assert!(
        d.a.stats.fast_retransmits >= 1,
        "expected fast retransmit; stats: {:?}",
        d.a.stats
    );
}

#[test]
fn orderly_close_active_side_time_waits() {
    let mut d = established(Driver::new(cfg()));
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(200);
    assert!(d.events_b.contains(&ConnEvent::PeerClosed));
    assert_eq!(d.b.state, TcpState::CloseWait);
    let acts = d.b.close(d.now);
    d.absorb(1, acts);
    // Process the FIN exchange but not the (long) TIME_WAIT expiry: step
    // only while wire is non-empty.
    while let Some((dir, seg)) = d.wire.pop_front() {
        d.now += SimDuration::from_micros(100);
        let acts = if dir == 0 {
            d.b.on_segment(d.now, &seg.hdr, &seg.payload)
        } else {
            d.a.on_segment(d.now, &seg.hdr, &seg.payload)
        };
        d.absorb(1 - dir, acts);
    }
    assert_eq!(d.b.state, TcpState::Closed);
    assert!(d.events_b.contains(&ConnEvent::Closed));
    assert_eq!(d.a.state, TcpState::TimeWait);
    // TIME_WAIT expires.
    let deadline = d.a.next_deadline().expect("timewait timer armed");
    let acts = d.a.on_timer(deadline);
    assert!(acts.events.contains(&ConnEvent::Closed));
    assert_eq!(d.a.state, TcpState::Closed);
}

#[test]
fn time_wait_duration_configurable() {
    let c = TcpConfig {
        time_wait: SimDuration::from_millis(500),
        ..TcpConfig::default()
    };
    let mut d = established(Driver::new(c));
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(100);
    let acts = d.b.close(d.now);
    d.absorb(1, acts);
    while let Some((dir, seg)) = d.wire.pop_front() {
        let acts = if dir == 0 {
            d.b.on_segment(d.now, &seg.hdr, &seg.payload)
        } else {
            d.a.on_segment(d.now, &seg.hdr, &seg.payload)
        };
        d.absorb(1 - dir, acts);
    }
    let entered = d.now;
    let deadline = d.a.next_deadline().unwrap();
    let wait = deadline.since(entered);
    assert!(
        wait <= SimDuration::from_millis(500),
        "TIME_WAIT should be 500ms, got {wait}"
    );
}

#[test]
fn abort_sends_rst_and_peer_resets() {
    let mut d = established(Driver::new(cfg()));
    let acts = d.a.abort();
    assert!(acts.segments[0].hdr.has(flags::RST));
    d.absorb(0, acts);
    d.run(100);
    assert!(d.events_b.contains(&ConnEvent::Reset));
    assert_eq!(d.b.state, TcpState::Closed);
}

#[test]
fn segment_to_closed_conn_gets_rst() {
    let mut c = TcpConn::new(cfg(), ep(2, 80), ep(1, 5555), 42);
    let th = TcpHeader {
        src_port: 5555,
        dst_port: 80,
        seq: 7,
        ack: 0,
        flags: flags::SYN,
        window: 1000,
        mss: None,
    };
    let acts = c.on_segment(SimTime::ZERO, &th, &[]);
    assert_eq!(acts.segments.len(), 1);
    assert!(acts.segments[0].hdr.has(flags::RST));
}

#[test]
fn syn_retransmits_with_backoff() {
    let mut a = TcpConn::new(cfg(), ep(1, 1000), ep(2, 2000), 100);
    let acts = a.connect(SimTime::ZERO);
    assert_eq!(acts.segments.len(), 1);
    let d1 = a.next_deadline().unwrap();
    let acts = a.on_timer(d1);
    assert_eq!(acts.segments.len(), 1, "SYN retransmitted");
    assert!(acts.segments[0].hdr.has(flags::SYN));
    let d2 = a.next_deadline().unwrap();
    assert!(
        d2.since(d1) > d1.since(SimTime::ZERO),
        "exponential backoff: {} then {}",
        d1.since(SimTime::ZERO),
        d2.since(d1)
    );
    assert_eq!(a.stats.retransmits, 1);
}

#[test]
fn gives_up_after_max_retries() {
    let mut c = cfg();
    c.max_retries = 3;
    c.rto_max = SimDuration::from_secs(2);
    let mut a = TcpConn::new(c, ep(1, 1000), ep(2, 2000), 100);
    let _ = a.connect(SimTime::ZERO);
    let mut timed_out = false;
    for _ in 0..10 {
        let Some(d) = a.next_deadline() else { break };
        let acts = a.on_timer(d);
        if acts.events.contains(&ConnEvent::TimedOut) {
            timed_out = true;
            break;
        }
    }
    assert!(timed_out);
    assert_eq!(a.state, TcpState::Closed);
}

#[test]
fn mss_negotiated_to_minimum() {
    let mut big = cfg();
    big.mss = 9140;
    let mut small = cfg();
    small.mss = 536;
    let mut a = TcpConn::new(big, ep(1, 1000), ep(2, 2000), 100);
    let acts = a.connect(SimTime::ZERO);
    let syn = &acts.segments[0];
    let (b, acts_b) =
        TcpConn::accept_syn(small, ep(2, 2000), ep(1, 1000), 7, &syn.hdr, SimTime::ZERO);
    assert_eq!(b.mss(), 536);
    let synack = &acts_b.segments[0];
    let _ = a.on_segment(SimTime::ZERO, &synack.hdr, &[]);
    assert_eq!(a.mss(), 536);
    let _ = b;
}

#[test]
fn zero_window_stalls_then_recovers() {
    let mut c = cfg();
    c.rcv_buf = 4096;
    c.mss = 1000;
    c.delack = None;
    let mut d = established(Driver::new(c));
    // Fill b's receive buffer without reading.
    let payload = vec![5u8; 12_000];
    let (n, acts) = d.a.write(d.now, &payload);
    assert!(n >= 8_000, "send buffer accepts most of it");
    d.absorb(0, acts);
    d.run(300);
    // b's buffer (4096) is full; a must have stalled.
    assert_eq!(d.b.available(), 4096);
    assert!(d.a.send_space() < d.a.config().snd_buf);
    // Reader drains; window update lets the rest flow.
    let mut received = Vec::new();
    let mut guard = 0;
    let mut sent = n;
    while received.len() < payload.len() {
        guard += 1;
        assert!(guard < 2000, "stalled: got {}", received.len());
        let (chunk, acts) = d.b.read(usize::MAX);
        received.extend_from_slice(&chunk);
        d.absorb(1, acts);
        if sent < payload.len() {
            let (m, acts) = d.a.write(d.now, &payload[sent..]);
            sent += m;
            d.absorb(0, acts);
        }
        d.run(100);
    }
    assert_eq!(received, payload);
}

#[test]
fn out_of_order_segments_reassembled() {
    let mut d = established(Driver::new(cfg()));
    // Hand-deliver segments out of order.
    let (_, acts1) = d.a.write(d.now, b"AAAA");
    let seg1 = acts1.segments.into_iter().next().unwrap();
    let (_, acts2) = d.a.write(d.now, b"BBBB");
    let seg2 = acts2.segments.into_iter().next().unwrap();
    // Deliver seg2 first.
    let acts = d.b.on_segment(d.now, &seg2.hdr, &seg2.payload);
    assert!(
        !acts.events.contains(&ConnEvent::DataReady),
        "out-of-order data is not ready"
    );
    // Dup-ack expected.
    assert!(!acts.segments.is_empty());
    let acts = d.b.on_segment(d.now, &seg1.hdr, &seg1.payload);
    assert!(acts.events.contains(&ConnEvent::DataReady));
    assert_eq!(d.b.read(100).0, b"AAAABBBB");
}

#[test]
fn delayed_ack_fires_on_timer() {
    let mut c = cfg();
    c.delack = Some(SimDuration::from_millis(200));
    let mut d = established(Driver::new(c));
    let (_, acts) = d.a.write(d.now, b"one segment");
    let seg = acts.segments.into_iter().next().unwrap();
    let t0 = d.now;
    let acts = d.b.on_segment(d.now, &seg.hdr, &seg.payload);
    assert!(
        acts.segments.is_empty(),
        "single segment: ACK delayed, not immediate"
    );
    let deadline = d.b.next_deadline().unwrap();
    assert_eq!(deadline.since(t0), SimDuration::from_millis(200));
    let acts = d.b.on_timer(deadline);
    assert_eq!(acts.segments.len(), 1);
    assert!(acts.segments[0].hdr.has(flags::ACK));
}

#[test]
fn every_second_segment_acked_immediately() {
    let mut d = established(Driver::new(cfg()));
    let (_, a1) = d.a.write(d.now, b"first");
    let s1 = a1.segments.into_iter().next().unwrap();
    let (_, a2) = d.a.write(d.now, b"second");
    let s2 = a2.segments.into_iter().next().unwrap();
    let acts = d.b.on_segment(d.now, &s1.hdr, &s1.payload);
    assert!(acts.segments.is_empty());
    let acts = d.b.on_segment(d.now, &s2.hdr, &s2.payload);
    assert_eq!(acts.segments.len(), 1, "second segment forces the ACK");
}

#[test]
fn listener_backlog_accounting() {
    let mut l = TcpListener::new(ep(2, 80), 2);
    assert!(l.can_accept_syn());
    l.on_syn_admitted();
    l.on_syn_admitted();
    assert!(!l.can_accept_syn());
    l.on_syn_dropped();
    assert_eq!(l.syn_drops, 1);
    l.on_child_established();
    assert_eq!(l.syn_queue, 1);
    assert_eq!(l.accept_queue, 1);
    assert!(!l.can_accept_syn(), "accept queue still counts");
    l.on_accept();
    assert!(l.can_accept_syn());
    l.on_child_failed();
    assert_eq!(l.syn_queue, 0);
}

#[test]
fn rtt_estimator_converges() {
    let mut d = established(Driver::new(cfg()));
    // Several round trips at ~200us RTT (100us per hop).
    for _ in 0..20 {
        let (_, acts) = d.a.write(d.now, b"x");
        d.absorb(0, acts);
        d.run(100);
        let _ = d.b.read(10);
    }
    // RTO should have collapsed to rto_min (RTT << rto_min).
    assert_eq!(d.a.recovery.rto, d.a.config().rto_min);
    assert!(d.a.recovery.srtt.is_some());
}

#[test]
fn duplicate_data_reacked_not_redelivered() {
    let mut d = established(Driver::new(cfg()));
    let (_, acts) = d.a.write(d.now, b"dup");
    let seg = acts.segments.into_iter().next().unwrap();
    let _ = d.b.on_segment(d.now, &seg.hdr, &seg.payload);
    assert_eq!(d.b.read(10).0, b"dup");
    // Redeliver the same segment: must not surface data again.
    let acts = d.b.on_segment(d.now, &seg.hdr, &seg.payload);
    assert!(!acts.events.contains(&ConnEvent::DataReady));
    assert!(!acts.segments.is_empty(), "old data is re-ACKed");
    assert_eq!(d.b.available(), 0);
}

#[test]
fn simultaneous_close_both_time_wait_or_closed() {
    let mut d = established(Driver::new(cfg()));
    let acts_a = d.a.close(d.now);
    let acts_b = d.b.close(d.now);
    d.absorb(0, acts_a);
    d.absorb(1, acts_b);
    while let Some((dir, seg)) = d.wire.pop_front() {
        d.now += SimDuration::from_micros(100);
        let acts = if dir == 0 {
            d.b.on_segment(d.now, &seg.hdr, &seg.payload)
        } else {
            d.a.on_segment(d.now, &seg.hdr, &seg.payload)
        };
        d.absorb(1 - dir, acts);
    }
    for (name, st) in [("a", d.a.state), ("b", d.b.state)] {
        assert!(
            matches!(st, TcpState::TimeWait | TcpState::Closed),
            "{name} ended in {st:?}"
        );
    }
}

#[test]
fn sequence_number_wraparound_transfer() {
    // ISS near u32::MAX: the sequence space wraps mid-transfer and the
    // modular arithmetic must hold throughout.
    let cfg_small = TcpConfig {
        mss: 1000,
        delack: None,
        ..TcpConfig::default()
    };
    let mut d = Driver::new(cfg_small);
    d.a = TcpConn::new(cfg_small, ep(1, 1000), ep(2, 2000), u32::MAX - 4_000);
    let acts = d.a.connect(d.now);
    let syn = acts.segments.into_iter().next().unwrap();
    let (b2, acts_b) = TcpConn::accept_syn(
        cfg_small,
        ep(2, 2000),
        ep(1, 1000),
        u32::MAX - 2_000,
        &syn.hdr,
        d.now,
    );
    d.b = b2;
    d.absorb(1, acts_b);
    d.run(200);
    assert_eq!(d.a.state, TcpState::Established);
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 247) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < payload.len() {
        guard += 1;
        assert!(guard < 10_000, "wraparound transfer stalled");
        if sent < payload.len() {
            let (n, acts) = d.a.write(d.now, &payload[sent..]);
            sent += n;
            d.absorb(0, acts);
        }
        d.run(50);
        let (chunk, acts) = d.b.read(usize::MAX);
        received.extend_from_slice(&chunk);
        d.absorb(1, acts);
    }
    assert_eq!(received, payload);
    assert_eq!(d.a.stats.retransmits, 0);
}

#[test]
fn half_close_receiver_still_gets_data() {
    // a closes its sending side (FIN); b keeps sending; a must still
    // receive and ack the data (FIN_WAIT_2 data path).
    let mut d = established(Driver::new(cfg()));
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(100);
    assert_eq!(d.a.state, TcpState::FinWait2);
    assert_eq!(d.b.state, TcpState::CloseWait);
    let (_, acts) = d.b.write(d.now, b"late data after peer close");
    d.absorb(1, acts);
    d.run(200);
    assert_eq!(d.a.read(100).0, b"late data after peer close");
}

#[test]
fn rst_kills_embryonic_connection() {
    // A SYN|ACK answered by RST must close the embryonic connection
    // (client refused us).
    let syn_hdr = TcpHeader {
        src_port: 5000,
        dst_port: 80,
        seq: 77,
        ack: 0,
        flags: flags::SYN,
        window: 4096,
        mss: None,
    };
    let (mut child, _acts) =
        TcpConn::accept_syn(cfg(), ep(2, 80), ep(1, 5000), 100, &syn_hdr, SimTime::ZERO);
    assert_eq!(child.state, TcpState::SynReceived);
    let rst = TcpHeader {
        src_port: 5000,
        dst_port: 80,
        seq: 78,
        ack: 101,
        flags: flags::RST | flags::ACK,
        window: 0,
        mss: None,
    };
    let acts = child.on_segment(SimTime::ZERO, &rst, &[]);
    assert_eq!(child.state, TcpState::Closed);
    assert!(acts.events.contains(&ConnEvent::Reset));
    assert!(acts.events.contains(&ConnEvent::Closed));
}

#[test]
fn time_wait_reacks_retransmitted_fin() {
    let mut d = established(Driver::new(cfg()));
    // Full close in both directions puts a in TIME_WAIT.
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(100);
    let acts = d.b.close(d.now);
    d.absorb(1, acts);
    while let Some((dir, seg)) = d.wire.pop_front() {
        let acts = if dir == 0 {
            d.b.on_segment(d.now, &seg.hdr, &seg.payload)
        } else {
            d.a.on_segment(d.now, &seg.hdr, &seg.payload)
        };
        d.absorb(1 - dir, acts);
    }
    assert_eq!(d.a.state, TcpState::TimeWait);
    let before = d.a.next_deadline().expect("2MSL armed");
    // Retransmitted FIN (the last ACK was "lost" from b's view).
    let fin = TcpHeader {
        src_port: 2000,
        dst_port: 1000,
        seq: 900_001,
        ack: 103,
        flags: flags::FIN | flags::ACK,
        window: 4096,
        mss: None,
    };
    let acts =
        d.a.on_segment(d.now + SimDuration::from_millis(50), &fin, &[]);
    assert!(
        acts.segments.iter().any(|s| s.hdr.has(flags::ACK)),
        "TIME_WAIT re-acks a retransmitted FIN"
    );
    let after = d.a.next_deadline().expect("2MSL rearmed");
    assert!(after > before, "the 2MSL timer restarts");
}

#[test]
fn data_while_fin_wait_1_is_accepted() {
    // We closed (FIN in flight) but the peer's data crossing it must still
    // be delivered.
    let mut d = established(Driver::new(cfg()));
    let acts_close = d.a.close(d.now);
    let (_, acts_data) = d.b.write(d.now, b"crossing");
    d.absorb(0, acts_close);
    d.absorb(1, acts_data);
    d.run(300);
    assert_eq!(d.a.read(100).0, b"crossing");
}

#[test]
fn connect_then_close_before_synack() {
    let mut a = TcpConn::new(cfg(), ep(1, 1000), ep(2, 2000), 100);
    let _ = a.connect(SimTime::ZERO);
    let acts = a.close(SimTime::ZERO);
    assert_eq!(a.state, TcpState::Closed);
    assert!(acts.events.contains(&ConnEvent::Closed));
}

// ---------------------------------------------------------------------------
// Retransmission boundary behaviour: lost FINs, RTO clamping, Karn's
// rule, and reordering vs fast retransmit.
// ---------------------------------------------------------------------------

#[test]
fn lost_fin_is_retransmitted() {
    let mut d = established(Driver::new(cfg()));
    let (_, acts) = d.a.write(d.now, b"last words");
    d.absorb(0, acts);
    d.run(200);
    assert_eq!(d.b.read(100).0, b"last words");
    // Drop a's next segment: the FIN.
    let target = d.sent_count[0];
    d.drop_fn = Box::new(move |dir, n, _| dir == 0 && n == target);
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(500);
    assert!(
        d.events_b.contains(&ConnEvent::PeerClosed),
        "the retransmitted FIN must reach the peer; a stats: {:?}",
        d.a.stats
    );
    assert!(d.a.stats.timeouts >= 1, "recovery went through the RTO");
    assert!(
        matches!(d.a.state, TcpState::FinWait2 | TcpState::TimeWait),
        "our FIN was acked: {:?}",
        d.a.state
    );
}

#[test]
fn lost_last_ack_fin_is_retransmitted() {
    // Same bug from the passive closer's side: b in LAST_ACK loses its
    // FIN and must resend it rather than burn retries sending nothing.
    let mut d = established(Driver::new(cfg()));
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(200);
    assert_eq!(d.b.state, TcpState::CloseWait);
    let target = d.sent_count[1];
    d.drop_fn = Box::new(move |dir, n, _| dir == 1 && n == target);
    let acts = d.b.close(d.now);
    d.absorb(1, acts);
    d.run(500);
    assert_eq!(d.b.state, TcpState::Closed, "b stats: {:?}", d.b.stats);
    assert!(d.b.stats.timeouts >= 1);
}

#[test]
fn rto_backoff_is_clamped_to_rto_max() {
    let mut d = established(Driver::new(cfg()));
    // Black-hole everything a sends; watch the timer gaps grow.
    d.drop_fn = Box::new(|dir, _, _| dir == 0);
    let (_, acts) = d.a.write(d.now, &[9u8; 2000]);
    d.absorb(0, acts);
    let rto_max = d.a.config().rto_max;
    let rto_min = d.a.config().rto_min;
    let mut gaps = Vec::new();
    let mut prev = d.now;
    while let Some(deadline) = d.a.next_deadline() {
        gaps.push(deadline.since(prev));
        prev = deadline;
        let acts = d.a.on_timer(deadline);
        if acts.events.contains(&ConnEvent::TimedOut) {
            break;
        }
    }
    assert!(gaps.len() > 3, "several backoff rounds before giving up");
    assert!(
        gaps.iter().all(|g| *g >= rto_min && *g <= rto_max),
        "every interval within [rto_min, rto_max]: {gaps:?}"
    );
    assert_eq!(
        *gaps.last().unwrap(),
        rto_max,
        "backoff saturates at rto_max"
    );
    assert!(
        gaps.windows(2).all(|w| w[1] >= w[0]),
        "monotone non-decreasing backoff: {gaps:?}"
    );
    assert_eq!(d.a.state, TcpState::Closed);
}

#[test]
fn karn_rule_discards_rtt_probe_on_timeout() {
    let mut d = established(Driver::new(cfg()));
    d.drop_fn = Box::new(|dir, _, _| dir == 0);
    let (_, acts) = d.a.write(d.now, b"timed segment");
    d.absorb(0, acts);
    assert!(
        d.a.recovery.rtt_probe.is_some(),
        "first transmission arms an RTT probe"
    );
    let deadline = d.a.next_deadline().unwrap();
    let _ = d.a.on_timer(deadline);
    assert!(
        d.a.recovery.rtt_probe.is_none(),
        "Karn: a retransmitted segment is never timed"
    );
    // The ack for the retransmission must not produce a sample either:
    // the probe stays dead until a fresh (untransmitted) segment goes out.
    let srtt_before = d.a.recovery.srtt;
    d.drop_fn = Box::new(|_, _, _| false);
    let acts = d.a.output(d.now, true);
    d.absorb(0, acts);
    d.run(200);
    assert_eq!(
        d.a.recovery.srtt, srtt_before,
        "no RTT sample from the retransmitted round trip"
    );
}

#[test]
fn reordered_segments_do_not_trigger_fast_retransmit() {
    let c = TcpConfig {
        mss: 1000,
        delack: None,
        ..TcpConfig::default()
    };
    let mut d = established(Driver::new(c));
    // Open the congestion window first: a fresh connection's cwnd is one
    // segment, which cannot put two in flight.
    let warm = vec![1u8; 10_000];
    let mut sent = 0;
    let mut got = 0;
    while got < warm.len() {
        if sent < warm.len() {
            let (n, acts) = d.a.write(d.now, &warm[sent..]);
            sent += n;
            d.absorb(0, acts);
        }
        d.run(50);
        let (chunk, acts) = d.b.read(usize::MAX);
        got += chunk.len();
        d.absorb(1, acts);
    }
    assert!(d.a.cwnd() >= 2000, "cwnd holds two segments");
    // Two full segments, delivered to b in reversed order.
    let (_, acts) = d.a.write(d.now, &vec![5u8; 2000]);
    assert_eq!(acts.segments.len(), 2, "two segments in flight");
    let mut segs = acts.segments;
    segs.reverse();
    for seg in segs {
        let acts_b = d.b.on_segment(d.now, &seg.hdr, &seg.payload);
        d.absorb(1, acts_b);
    }
    d.run(300);
    assert_eq!(d.b.read(4000).0.len(), 2000, "all data assembled in order");
    assert_eq!(
        d.a.stats.fast_retransmits, 0,
        "adjacent reordering yields one dup ack, not three"
    );
    assert!(d.a.stats.dup_acks <= 1, "stats: {:?}", d.a.stats);
    assert_eq!(d.a.stats.timeouts, 0, "no spurious RTO");
}

// ---- keepalive ----

/// Keepalive config on side `a` only, so the driver's idle loop is
/// driven by a single probing endpoint.
fn ka_cfg() -> TcpConfig {
    TcpConfig {
        mss: 1460,
        keepalive_idle: Some(SimDuration::from_secs(5)),
        keepalive_intvl: SimDuration::from_secs(1),
        keepalive_probes: 3,
        ..TcpConfig::default()
    }
}

/// An established pair where only `a` runs keepalives. The handshake is
/// driven by hand with no idle-time advance, so `d.now` is exactly the
/// instant `a` entered Established (and armed its idle timer).
fn ka_established() -> Driver {
    let mut d = Driver::new(cfg());
    d.a = TcpConn::new(ka_cfg(), ep(1, 1000), ep(2, 2000), 100);
    let acts = d.a.connect(d.now);
    let syn = acts.segments.into_iter().next().unwrap();
    let (b2, acts_b) = TcpConn::accept_syn(
        *d.b.config(),
        ep(2, 2000),
        ep(1, 1000),
        900_000,
        &syn.hdr,
        d.now,
    );
    d.b = b2;
    let synack = acts_b.segments.into_iter().next().unwrap();
    let acts_a = d.a.on_segment(d.now, &synack.hdr, &[]);
    for seg in &acts_a.segments {
        let r = d.b.on_segment(d.now, &seg.hdr, &seg.payload);
        d.absorb(1, r);
    }
    assert_eq!(d.a.state, TcpState::Established);
    assert_eq!(d.b.state, TcpState::Established);
    d
}

#[test]
fn keepalive_probe_timing_idle_then_interval() {
    let mut d = ka_established();
    let t0 = d.now;
    // The idle timer armed on entering Established.
    assert_eq!(
        d.a.next_deadline(),
        Some(t0 + SimDuration::from_secs(5)),
        "keepalive idle threshold armed at establishment"
    );
    // First fire: a one-garbage-byte probe below the window.
    let t1 = d.a.next_deadline().unwrap();
    let acts = d.a.on_timer(t1);
    assert_eq!(acts.segments.len(), 1);
    let probe = &acts.segments[0];
    assert_eq!(probe.payload.len(), 1, "probe carries one garbage byte");
    assert_eq!(probe.hdr.seq, d.a.snd_una.wrapping_sub(1));
    assert!(probe.hdr.has(flags::ACK));
    assert_eq!(d.a.keepalive_probes_sent, 1);
    // Subsequent probes fire at the (shorter) probe interval.
    assert_eq!(
        d.a.next_deadline(),
        Some(t1 + SimDuration::from_secs(1)),
        "after the first probe the interval timer takes over"
    );
}

#[test]
fn keepalive_dead_peer_aborts_after_n_probes() {
    let mut d = ka_established();
    // Peer death: never deliver anything to (or from) b again.
    let mut probes = 0;
    loop {
        let t = d.a.next_deadline().expect("keepalive keeps a timer armed");
        let acts = d.a.on_timer(t);
        if acts.events.contains(&ConnEvent::TimedOut) {
            // Abort: RST out, Closed surfaced, machine dead.
            assert!(acts.events.contains(&ConnEvent::Closed));
            assert!(acts.segments.iter().any(|s| s.hdr.has(flags::RST)));
            assert_eq!(d.a.state, TcpState::Closed);
            break;
        }
        probes += acts
            .segments
            .iter()
            .filter(|s| s.payload.len() == 1)
            .count();
        assert!(probes <= 3, "no more than keepalive_probes probes");
    }
    assert_eq!(probes, 3, "exactly keepalive_probes unanswered probes");
    assert_eq!(d.a.next_deadline(), None, "all timers cleared after abort");
}

#[test]
fn keepalive_answered_probe_resets_counter_and_idle_clock() {
    let mut d = ka_established();
    let t1 = d.a.next_deadline().unwrap();
    let acts = d.a.on_timer(t1);
    assert_eq!(d.a.keepalive_probes_sent, 1);
    // The live peer treats the old-sequence probe as unacceptable and
    // re-ACKs immediately.
    let probe = &acts.segments[0];
    d.now = t1;
    let reply = d.b.on_segment(d.now, &probe.hdr, &probe.payload);
    assert_eq!(reply.segments.len(), 1, "alive peer answers the probe");
    assert!(reply.events.is_empty(), "probe is invisible to b's app");
    let ack = &reply.segments[0];
    let acts_a = d.a.on_segment(d.now, &ack.hdr, &ack.payload);
    assert!(acts_a.events.is_empty());
    assert_eq!(
        d.a.keepalive_probes_sent, 0,
        "answer clears the probe count"
    );
    assert_eq!(
        d.a.next_deadline(),
        Some(t1 + SimDuration::from_secs(5)),
        "idle clock restarts from the answer"
    );
    assert_eq!(d.a.state, TcpState::Established);
}

#[test]
fn keepalive_probe_never_feeds_rtt_estimator() {
    // Karn interaction: probes are not timed and answers produce no RTT
    // sample — the estimator state is untouched by a probe round trip.
    let mut d = ka_established();
    let srtt_before = d.a.recovery.srtt;
    assert!(
        d.a.recovery.rtt_probe.is_none(),
        "idle connection times nothing"
    );
    let t1 = d.a.next_deadline().unwrap();
    let acts = d.a.on_timer(t1);
    assert!(
        d.a.recovery.rtt_probe.is_none(),
        "probe is not an RTT sample"
    );
    let probe = &acts.segments[0];
    d.now = t1 + SimDuration::from_millis(300);
    let reply = d.b.on_segment(d.now, &probe.hdr, &probe.payload);
    let ack = &reply.segments[0];
    let _ = d.a.on_segment(d.now, &ack.hdr, &ack.payload);
    assert_eq!(
        d.a.recovery.srtt, srtt_before,
        "no sample from the probe round trip"
    );
}

#[test]
fn keepalive_stale_timer_clears_after_close() {
    let mut d = ka_established();
    // Graceful close from both sides: the machine leaves the keepalive
    // states (FinWait2 alone still probes — it can hang forever).
    let acts = d.a.close(d.now);
    d.absorb(0, acts);
    d.run(50);
    let acts = d.b.close(d.now);
    d.absorb(1, acts);
    d.run(300);
    assert!(matches!(d.a.state, TcpState::TimeWait | TcpState::Closed));
    // Any still-armed keepalive deadline is discarded on fire, not probed.
    if let Some(t) = d.a.keepalive_deadline {
        let acts = d.a.on_timer(t.max(d.now));
        assert!(acts.segments.iter().all(|s| s.payload.is_empty()));
        assert_eq!(d.a.keepalive_deadline, None);
    }
}

#[test]
fn listener_half_open_tracking_fifo() {
    let mut l = TcpListener::new(ep(2, 80), 3);
    for i in 0..3 {
        l.on_syn_admitted();
        l.track_half_open(SockId(i));
    }
    assert!(!l.can_accept_syn());
    assert_eq!(l.oldest_half_open(), Some(SockId(0)));
    // Oldest-eviction order is admission order.
    l.untrack_half_open(SockId(0));
    l.on_child_failed();
    l.on_syn_cache_evict();
    assert_eq!(l.oldest_half_open(), Some(SockId(1)));
    assert_eq!(l.syn_cache_evictions, 1);
    assert!(l.can_accept_syn());
    // Establishment removes from the middle without disturbing order.
    l.untrack_half_open(SockId(2));
    l.on_child_established();
    assert_eq!(l.oldest_half_open(), Some(SockId(1)));
    assert_eq!(l.accept_queue, 1);
}
