//! Protocol engines for the LRP reproduction: PCB tables, IP reassembly,
//! socket buffers and a full TCP state machine.
//!
//! This crate is deliberately *kernel-agnostic*: it contains pure state
//! machines that consume parsed packets and produce output segments and
//! events. The host model in `lrp-core` decides **in which execution
//! context** (software interrupt, receive system call, APP thread) each
//! state machine runs and **who is charged** for the CPU time — that
//! placement is exactly the difference between the BSD and LRP
//! architectures, so keeping it out of this crate lets all four
//! architectures share identical protocol code, mirroring the paper's
//! methodology ("all four kernels execute the same 4.4BSD networking
//! code").

#![warn(missing_docs)]

pub mod pcb;
pub mod reasm;
pub mod sockbuf;
pub mod tcp;

pub use pcb::{PcbTable, SockId};
pub use reasm::{ReasmOutcome, Reassembler};
pub use sockbuf::{ByteBuffer, DatagramQueue};
pub use tcp::{ConnEvent, TcpConfig, TcpConn, TcpListener, TcpSockStats, TcpState};
