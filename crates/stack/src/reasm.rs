//! IP fragment reassembly.
//!
//! Fragments are keyed by `(src, dst, proto, ident)` as in RFC 791. The
//! reassembler is a pure data structure: the host feeds it fragments (from
//! the normal input path *or* from the special fragment NI channel of LRP
//! §3.2) and drives expiry from its own clock.

use lrp_sim::{SimDuration, SimTime};
use lrp_wire::ipv4::{Ipv4Header, FLAG_MF};
use lrp_wire::Ipv4Addr;
use std::collections::HashMap;

/// Reassembly key per RFC 791.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    ident: u16,
}

#[derive(Debug)]
struct FragFlow {
    /// Received runs `(offset, bytes)`, kept sorted and non-overlapping.
    runs: Vec<(usize, Vec<u8>)>,
    /// Total length once the final fragment arrives.
    total_len: Option<usize>,
    /// When this flow was created, for expiry.
    born: SimTime,
    /// Fragment frames this flow still holds: one per `input` call that
    /// returned [`ReasmOutcome::Incomplete`]. The caller accounts those
    /// frames as absorbed; on expiry this count lets it re-attribute them
    /// as discarded.
    frags: u64,
}

impl FragFlow {
    fn insert(&mut self, offset: usize, data: &[u8]) {
        // Trim against existing runs (exact-duplicate and overlap safety).
        let mut start = offset;
        let mut end = offset + data.len();
        for (o, d) in &self.runs {
            let (ro, re) = (*o, *o + d.len());
            if start >= ro && end <= re {
                return; // Fully covered: duplicate.
            }
            // Trim the front/back against this run.
            if start >= ro && start < re {
                start = re;
            }
            if end > ro && end <= re {
                end = ro;
            }
        }
        if start >= end {
            return;
        }
        let slice = &data[(start - offset)..(end - offset)];
        self.runs.push((start, slice.to_vec()));
        self.runs.sort_by_key(|(o, _)| *o);
    }

    fn complete(&self) -> Option<Vec<u8>> {
        let total = self.total_len?;
        let mut expect = 0usize;
        for (o, d) in &self.runs {
            if *o > expect {
                return None; // Hole.
            }
            expect = expect.max(o + d.len());
        }
        if expect < total {
            return None;
        }
        let mut out = vec![0u8; total];
        for (o, d) in &self.runs {
            let end = (o + d.len()).min(total);
            out[*o..end].copy_from_slice(&d[..end - o]);
        }
        Some(out)
    }
}

/// The outcome of feeding one fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReasmOutcome {
    /// The datagram is complete: `(proto, src, dst, payload)`.
    Complete {
        /// IP protocol of the reassembled datagram.
        proto: u8,
        /// Source address.
        src: Ipv4Addr,
        /// Destination address.
        dst: Ipv4Addr,
        /// The reassembled transport payload.
        payload: Vec<u8>,
    },
    /// More fragments are needed.
    Incomplete,
    /// The fragment was dropped (table full).
    Dropped,
}

/// Reassembly statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReasmStats {
    /// Fragments accepted.
    pub fragments: u64,
    /// Datagrams completed.
    pub completed: u64,
    /// Flows expired with missing fragments.
    pub expired: u64,
    /// Fragment frames discarded by flow expiry (cumulative).
    pub expired_frags: u64,
    /// Fragments dropped because the flow table was full.
    pub dropped: u64,
}

/// The IP reassembler.
#[derive(Debug)]
pub struct Reassembler {
    flows: HashMap<FragKey, FragFlow>,
    max_flows: usize,
    ttl: SimDuration,
    stats: ReasmStats,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_flows` concurrent
    /// datagrams, each expiring `ttl` after its first fragment.
    pub fn new(max_flows: usize, ttl: SimDuration) -> Self {
        Reassembler {
            flows: HashMap::new(),
            max_flows,
            ttl,
            stats: ReasmStats::default(),
        }
    }

    /// Creates a reassembler with BSD-ish defaults (16 flows, 30 s TTL).
    pub fn with_defaults() -> Self {
        Self::new(16, SimDuration::from_secs(30))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ReasmStats {
        self.stats
    }

    /// Number of in-progress datagrams.
    pub fn pending(&self) -> usize {
        self.flows.len()
    }

    /// Feeds one fragment (header must satisfy `is_fragment()`; whole
    /// datagrams may also be fed and complete immediately).
    pub fn input(&mut self, now: SimTime, h: &Ipv4Header, payload: &[u8]) -> ReasmOutcome {
        if !h.is_fragment() {
            // Whole datagram: nothing to do.
            return ReasmOutcome::Complete {
                proto: h.proto,
                src: h.src,
                dst: h.dst,
                payload: payload.to_vec(),
            };
        }
        let key = FragKey {
            src: h.src,
            dst: h.dst,
            proto: h.proto,
            ident: h.ident,
        };
        if !self.flows.contains_key(&key) && self.flows.len() >= self.max_flows {
            self.stats.dropped += 1;
            return ReasmOutcome::Dropped;
        }
        let flow = self.flows.entry(key).or_insert_with(|| FragFlow {
            runs: Vec::new(),
            total_len: None,
            born: now,
            frags: 0,
        });
        self.stats.fragments += 1;
        let offset = h.frag_offset as usize * 8;
        flow.insert(offset, payload);
        if h.flags & FLAG_MF == 0 {
            flow.total_len = Some(offset + payload.len());
        }
        if let Some(data) = flow.complete() {
            self.flows.remove(&key);
            self.stats.completed += 1;
            return ReasmOutcome::Complete {
                proto: h.proto,
                src: h.src,
                dst: h.dst,
                payload: data,
            };
        }
        flow.frags += 1;
        ReasmOutcome::Incomplete
    }

    /// Expires flows older than the TTL; returns how many flows were
    /// discarded. The fragment frames they held accumulate in
    /// [`ReasmStats::expired_frags`].
    pub fn expire(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let before = self.flows.len();
        let mut frags = 0u64;
        self.flows.retain(|_, f| {
            let keep = now.since(f.born) < ttl;
            if !keep {
                frags += f.frags;
            }
            keep
        });
        let expired = before - self.flows.len();
        self.stats.expired += expired as u64;
        self.stats.expired_frags += frags;
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_wire::{ipv4, proto};

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn frags(payload: &[u8], mtu: usize, ident: u16) -> Vec<(Ipv4Header, Vec<u8>)> {
        ipv4::fragment(SRC, DST, proto::UDP, ident, payload, mtu)
            .into_iter()
            .map(|d| {
                let (h, p) = ipv4::parse(&d).unwrap();
                (h, p.to_vec())
            })
            .collect()
    }

    #[test]
    fn in_order_reassembly() {
        let payload: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let mut r = Reassembler::with_defaults();
        let fs = frags(&payload, 1500, 7);
        let mut done = None;
        for (h, p) in &fs {
            match r.input(SimTime::ZERO, h, p) {
                ReasmOutcome::Complete { payload, .. } => done = Some(payload),
                ReasmOutcome::Incomplete => {}
                ReasmOutcome::Dropped => panic!("unexpected drop"),
            }
        }
        assert_eq!(done.unwrap(), payload);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.stats().completed, 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let mut r = Reassembler::with_defaults();
        let mut fs = frags(&payload, 1500, 8);
        fs.reverse();
        let mut done = None;
        for (h, p) in &fs {
            if let ReasmOutcome::Complete { payload, .. } = r.input(SimTime::ZERO, h, p) {
                done = Some(payload);
            }
        }
        assert_eq!(done.unwrap(), payload);
    }

    #[test]
    fn duplicate_fragments_harmless() {
        let payload = vec![9u8; 4000];
        let mut r = Reassembler::with_defaults();
        let fs = frags(&payload, 1500, 9);
        for (h, p) in &fs[..fs.len() - 1] {
            assert_eq!(r.input(SimTime::ZERO, h, p), ReasmOutcome::Incomplete);
            assert_eq!(r.input(SimTime::ZERO, h, p), ReasmOutcome::Incomplete);
        }
        let (h, p) = &fs[fs.len() - 1];
        match r.input(SimTime::ZERO, h, p) {
            ReasmOutcome::Complete { payload: got, .. } => assert_eq!(got, payload),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn interleaved_flows_separate() {
        let pa = vec![1u8; 3000];
        let pb = vec![2u8; 3000];
        let fa = frags(&pa, 1500, 1);
        let fb = frags(&pb, 1500, 2);
        let mut r = Reassembler::with_defaults();
        let mut results = Vec::new();
        for ((ha, da), (hb, db)) in fa.iter().zip(fb.iter()) {
            if let ReasmOutcome::Complete { payload, .. } = r.input(SimTime::ZERO, ha, da) {
                results.push(payload);
            }
            if let ReasmOutcome::Complete { payload, .. } = r.input(SimTime::ZERO, hb, db) {
                results.push(payload);
            }
        }
        assert_eq!(results.len(), 2);
        assert!(results.contains(&pa) && results.contains(&pb));
    }

    #[test]
    fn whole_datagram_immediate() {
        let mut r = Reassembler::with_defaults();
        let h = Ipv4Header::new(SRC, DST, proto::UDP, 5, 10);
        match r.input(SimTime::ZERO, &h, &[3u8; 10]) {
            ReasmOutcome::Complete { payload, .. } => assert_eq!(payload, vec![3u8; 10]),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn flow_table_limit() {
        let mut r = Reassembler::new(2, SimDuration::from_secs(30));
        for ident in 0..3u16 {
            let fs = frags(&vec![0u8; 3000], 1500, ident);
            let (h, p) = &fs[0];
            let out = r.input(SimTime::ZERO, h, p);
            if ident < 2 {
                assert_eq!(out, ReasmOutcome::Incomplete);
            } else {
                assert_eq!(out, ReasmOutcome::Dropped);
            }
        }
        assert_eq!(r.stats().dropped, 1);
    }

    #[test]
    fn expiry_discards_stale_flows() {
        let mut r = Reassembler::new(16, SimDuration::from_secs(30));
        let fs = frags(&vec![0u8; 3000], 1500, 11);
        let (h, p) = &fs[0];
        r.input(SimTime::ZERO, h, p);
        assert_eq!(r.expire(SimTime::from_secs(10)), 0);
        assert_eq!(r.expire(SimTime::from_secs(31)), 1);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.stats().expired, 1);
    }

    #[test]
    fn overlapping_fragments_first_wins() {
        // Overlap handling: earlier data is kept, later overlap trimmed.
        let mut r = Reassembler::with_defaults();
        let mut h1 = Ipv4Header::new(SRC, DST, proto::UDP, 30, 16);
        h1.flags = FLAG_MF;
        h1.frag_offset = 0;
        assert_eq!(
            r.input(SimTime::ZERO, &h1, &[1u8; 16]),
            ReasmOutcome::Incomplete
        );
        let mut h2 = Ipv4Header::new(SRC, DST, proto::UDP, 30, 16);
        h2.flags = 0;
        h2.frag_offset = 1; // Offset 8: overlaps [8,16).
        match r.input(SimTime::ZERO, &h2, &[2u8; 16]) {
            ReasmOutcome::Complete { payload, .. } => {
                assert_eq!(&payload[..16], &[1u8; 16], "first data wins");
                assert_eq!(&payload[16..24], &[2u8; 8]);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}
