//! The system-call interface between simulated applications and the
//! kernel, and the application trait.
//!
//! Applications are resumable state machines: the kernel asks for the next
//! operation, executes it (consuming simulated CPU time, possibly
//! blocking), and delivers the result, at which point the application
//! yields its next operation. This mirrors a single-threaded UNIX process
//! alternating between user computation and system calls.

use lrp_sim::{SimDuration, SimTime};
use lrp_stack::{SockId, TcpSockStats};
use lrp_wire::{Endpoint, FrameBuf};

/// Socket protocol selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SockProto {
    /// Datagram (UDP) socket.
    Udp,
    /// Stream (TCP) socket.
    Tcp,
    /// Raw ICMP socket: the proxy-daemon endpoint of §3.5. Binding one
    /// routes all ICMP traffic to it (port is ignored).
    Icmp,
}

/// Error numbers surfaced to applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Errno {
    /// Address already in use.
    AddrInUse,
    /// Connection refused (RST during connect).
    ConnRefused,
    /// Connection reset.
    ConnReset,
    /// Operation timed out.
    TimedOut,
    /// Invalid argument / wrong socket state.
    Invalid,
    /// Out of socket or channel resources.
    NoBufs,
}

/// One operation a process asks the kernel to perform.
#[derive(Clone, Debug)]
pub enum SyscallOp {
    /// Burn CPU in user mode for the given duration.
    Compute(SimDuration),
    /// Create a socket.
    Socket(SockProto),
    /// Bind a socket to a local port.
    Bind {
        /// Socket to bind.
        sock: SockId,
        /// Local port.
        port: u16,
    },
    /// Connect a socket to a remote endpoint (TCP handshake; UDP sets the
    /// default destination and installs an exact demux filter).
    Connect {
        /// Socket to connect.
        sock: SockId,
        /// Remote endpoint.
        dst: Endpoint,
    },
    /// Mark a TCP socket as listening.
    Listen {
        /// Socket.
        sock: SockId,
        /// Backlog limit.
        backlog: usize,
    },
    /// Accept a completed connection from a listening socket (blocks).
    Accept {
        /// Listening socket.
        sock: SockId,
    },
    /// Send a datagram (UDP).
    SendTo {
        /// Socket.
        sock: SockId,
        /// Destination.
        dst: Endpoint,
        /// Payload.
        data: Vec<u8>,
    },
    /// Send stream data (TCP) — blocks until fully buffered.
    Send {
        /// Socket.
        sock: SockId,
        /// Payload.
        data: Vec<u8>,
    },
    /// Receive a datagram (UDP) or stream data (TCP); blocks when empty.
    Recv {
        /// Socket.
        sock: SockId,
        /// Maximum bytes to return.
        max_len: usize,
    },
    /// Receive like [`SyscallOp::Recv`], but give up after `timeout` and
    /// return `Err(TimedOut)` if nothing arrives. The deadline is a real
    /// kernel timer: the process blocks and is woken either by data or by
    /// the timer, whichever fires first.
    RecvTimeout {
        /// Socket.
        sock: SockId,
        /// Maximum bytes to return.
        max_len: usize,
        /// How long to wait before failing with `TimedOut`.
        timeout: SimDuration,
    },
    /// Query the receive-side queue depth of a socket (buffered datagrams
    /// plus frames waiting in its NI channel). Non-blocking; used by
    /// servers for watermark-based load shedding.
    SockDepth {
        /// Socket.
        sock: SockId,
    },
    /// Netstat-style introspection: a full [`SockStats`] snapshot of one
    /// socket (state, RTT/cwnd estimates for TCP, queue depths, per-socket
    /// drop counts). Non-blocking.
    SockStats {
        /// Socket.
        sock: SockId,
    },
    /// Close a socket.
    Close {
        /// Socket.
        sock: SockId,
    },
    /// Sleep for a duration.
    Sleep(SimDuration),
    /// Terminate the process.
    Exit,
}

/// The kernel's reply to a completed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallRet {
    /// Operation succeeded with no payload.
    Ok,
    /// A socket was created.
    Socket(SockId),
    /// Bytes accepted for transmission.
    Sent(usize),
    /// Received data; for TCP an empty vec means end-of-stream.
    Data(Vec<u8>),
    /// Received datagram with source.
    DataFrom(Endpoint, FrameBuf),
    /// A connection was accepted.
    Accepted(SockId),
    /// Receive-side queue depth of a socket.
    Depth(usize),
    /// A netstat-style snapshot (boxed to keep the enum small).
    Stats(Box<SockStats>),
    /// The operation failed.
    Err(Errno),
}

/// A netstat-style snapshot of one socket, as returned by
/// [`SyscallOp::SockStats`] and aggregated by `Host::host_netstat`.
/// All-integer: durations are nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SockStats {
    /// The socket.
    pub sock: SockId,
    /// Protocol.
    pub proto: SockProto,
    /// Local endpoint (port 0 when unbound).
    pub local: Endpoint,
    /// Remote endpoint (`None` for unconnected/listening sockets).
    pub remote: Option<Endpoint>,
    /// Receive-side depth: buffered datagrams / stream bytes pending in
    /// the socket buffer (same unit as the recv path delivers).
    pub recv_q: usize,
    /// Frames still waiting in the socket's NI channel (0 on BSD).
    pub chan_depth: usize,
    /// Frames dropped at this socket's full receive buffer.
    pub drops_sockbuf: u64,
    /// Frames dropped at this socket's full NI channel (or by ED
    /// socket-queue feedback).
    pub drops_channel: u64,
    /// TCP-only detail (state machine, RTT, cwnd, retransmits).
    pub tcp: Option<TcpSockStats>,
    /// Listener-only detail (backlog occupancy, SYN-flood defenses).
    pub listen: Option<ListenStats>,
}

/// Listener-side detail of a [`SockStats`] snapshot: backlog occupancy
/// and the SYN-flood defense counters (SYN cache, stateless cookies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ListenStats {
    /// Configured backlog limit.
    pub backlog: usize,
    /// Embryonic (SynReceived) children.
    pub syn_queue: usize,
    /// Completed connections awaiting `accept`.
    pub accept_queue: usize,
    /// Depth of the half-open tracking queue (SYN-cache ordering).
    pub half_open: usize,
    /// SYNs dropped at a full backlog.
    pub syn_drops: u64,
    /// Half-open children evicted by the SYN cache.
    pub syn_cache_evictions: u64,
    /// Stateless cookie SYN|ACKs minted.
    pub cookies_sent: u64,
    /// Handshake ACKs whose cookie validated (children established).
    pub cookies_validated: u64,
    /// Handshake ACKs whose cookie failed validation.
    pub cookies_rejected: u64,
}

/// Context handed to applications on each upcall.
#[derive(Clone, Copy, Debug)]
pub struct AppCtx {
    /// Current simulated time.
    pub now: SimTime,
    /// The process id this application runs as.
    pub pid: lrp_sched::Pid,
}

/// A simulated application: a resumable state machine over system calls.
///
/// Implementations must be deterministic given their construction
/// parameters (use seeded RNGs).
pub trait AppLogic {
    /// Called once when the process first runs; returns its first
    /// operation.
    fn start(&mut self, ctx: AppCtx) -> SyscallOp;

    /// Called each time an operation completes; returns the next one.
    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        sock: Option<SockId>,
    }

    impl AppLogic for Echo {
        fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
            SyscallOp::Socket(SockProto::Udp)
        }
        fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
            match ret {
                SyscallRet::Socket(s) => {
                    self.sock = Some(s);
                    SyscallOp::Exit
                }
                _ => SyscallOp::Exit,
            }
        }
    }

    #[test]
    fn app_state_machine_shape() {
        let mut app = Echo { sock: None };
        let ctx = AppCtx {
            now: SimTime::ZERO,
            pid: lrp_sched::Pid(0),
        };
        let op = app.start(ctx);
        assert!(matches!(op, SyscallOp::Socket(SockProto::Udp)));
        let op = app.resume(ctx, SyscallRet::Socket(SockId(3)));
        assert!(matches!(op, SyscallOp::Exit));
        assert_eq!(app.sock, Some(SockId(3)));
    }
}
