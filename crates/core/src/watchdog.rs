//! The anomaly watchdog: turns the paper's pathologies into *detected,
//! timestamped events* instead of numbers a human must dig out of a
//! timeline after the fact.
//!
//! The watchdog is fed one sample per statclock tick from
//! [`Host::sample_timeline`](crate::Host) — the same cumulative counters
//! and gauges the metrics timeline records — and derives per-tick deltas.
//! It lives inside the telemetry layer and is therefore *pure
//! observation*: it never touches the cost model, the scheduler, queues
//! or any RNG, and a run with it enabled is bit-identical to the same run
//! with telemetry off.
//!
//! Three signals, with thresholds pinned as constants (DESIGN.md §14):
//!
//! * **Receiver-livelock onset** — the paper's headline pathology: the
//!   CPU is pegged ([`LIVELOCK_PEGGED_PCT`]) and most of it is *non-user*
//!   (protocol/interrupt) work ([`LIVELOCK_PROTO_PCT`]), yet deliveries
//!   have stopped entirely while arriving frames keep dying, sustained
//!   for [`LIVELOCK_STREAK_TICKS`] consecutive ticks. The non-user
//!   condition is what separates true livelock (4.4BSD under the
//!   Figure-3 blast: all cycles to interrupts, none to the application)
//!   from a healthy LRP host whose *application* is consuming every
//!   cycle while NI-demux sheds excess load at the channel for free.
//! * **Starvation** — a runnable process whose charged CPU time has not
//!   advanced for [`STARVATION_TICKS`] consecutive ticks: it wants the
//!   CPU and never gets it (under BSD overload the blast sink starves
//!   behind interrupt processing).
//! * **Queue-saturation onset** — the shared IP queue or the fullest NI
//!   channel crossing [`QUEUE_SATURATION_PCT`] of its limit: the onset of
//!   tail-drop, recorded when it happens rather than inferred from drop
//!   totals later. Re-arms when the queue drains below half its limit.
//!
//! Each detection emits one [`AnomalyEvent`] per episode (edge-triggered,
//! not level-triggered), timestamped in simulated time.

use lrp_sim::FastHashMap;

/// Consecutive qualifying ticks before livelock onset is declared.
pub const LIVELOCK_STREAK_TICKS: u32 = 3;

/// Percent of a tick the CPU must have charged for it to count as pegged.
pub const LIVELOCK_PEGGED_PCT: u64 = 90;

/// Percent of a tick that must be non-user (protocol/interrupt/system)
/// work for a pegged tick to count toward livelock.
pub const LIVELOCK_PROTO_PCT: u64 = 75;

/// Consecutive no-progress ticks before a runnable process is declared
/// starved (25 ticks × 10 ms statclock = 250 ms).
pub const STARVATION_TICKS: u32 = 25;

/// Percent of a queue's limit at which saturation onset fires.
pub const QUEUE_SATURATION_PCT: u64 = 90;

/// Stored-event cap; further detections are counted in
/// [`Watchdog::events_dropped`] and discarded.
pub const ANOMALY_LOG_CAP: usize = 4096;

/// What the watchdog detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Receiver-livelock onset: protocol cycles pegged, deliveries dead.
    LivelockOnset,
    /// A runnable process starved of the CPU.
    Starvation,
    /// A bounded queue crossed the saturation threshold.
    QueueSaturation,
}

impl AnomalyKind {
    /// Stable name used in results JSON.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::LivelockOnset => "livelock_onset",
            AnomalyKind::Starvation => "starvation",
            AnomalyKind::QueueSaturation => "queue_saturation",
        }
    }
}

/// One detected anomaly. `value`/`limit` carry the signal that tripped:
/// non-user ns in the last tick vs. the pegged threshold (livelock),
/// stalled ns vs. the starvation window (starvation), or queue depth vs.
/// queue limit (saturation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnomalyEvent {
    /// Simulated time of detection, nanoseconds.
    pub t_ns: u64,
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// The starved process (starvation only).
    pub pid: Option<u32>,
    /// Which queue saturated (`"ip_queue"` / `"ni_channel"`), or the
    /// livelock/starvation signal tag.
    pub detail: &'static str,
    /// The observed signal value (see struct docs).
    pub value: u64,
    /// The threshold it was measured against.
    pub limit: u64,
}

/// One per-tick sample handed to [`Watchdog::feed`]. Counters are
/// cumulative since boot; depths are instantaneous gauges.
#[derive(Clone, Debug)]
pub struct WatchdogSample {
    /// Frames delivered (UDP + ICMP sockets, TCP input).
    pub delivered: u64,
    /// Frames dropped anywhere (host drop points + NIC ring/early/stall).
    pub dropped: u64,
    /// Total CPU time charged, ns.
    pub charged_ns: u64,
    /// User-mode CPU time charged, ns.
    pub user_ns: u64,
    /// Shared IP queue depth / limit.
    pub ipq_depth: u64,
    /// IP queue limit (0 = unbounded, saturation check skipped).
    pub ipq_limit: u64,
    /// Deepest NI channel depth / per-channel limit.
    pub chan_depth_max: u64,
    /// NI channel frame limit (0 = unbounded, check skipped).
    pub chan_limit: u64,
    /// Per process: `(pid, runnable, total_charged_ns)`. Runnable means
    /// on a run queue or on the CPU — not sleeping, not exited.
    pub procs: Vec<(u32, bool, u64)>,
}

/// Per-process starvation tracking state.
#[derive(Clone, Copy, Debug, Default)]
struct StarveState {
    last_total_ns: u64,
    stalled_ticks: u32,
    flagged: bool,
}

/// The anomaly detector (one per host, inside [`Telemetry`]
/// (crate::telemetry::Telemetry)).
#[derive(Debug, Default)]
pub struct Watchdog {
    prev: Option<(u64, u64, u64, u64)>, // delivered, dropped, charged, user
    livelock_streak: u32,
    livelock_active: bool,
    starve: FastHashMap<u32, StarveState>,
    ipq_sat_active: bool,
    chan_sat_active: bool,
    events: Vec<AnomalyEvent>,
    /// Detections discarded past [`ANOMALY_LOG_CAP`].
    pub events_dropped: u64,
}

impl Watchdog {
    /// Creates an idle watchdog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detected anomalies, in detection order.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Total detections (stored + discarded); the timeline's cumulative
    /// `anomalies` column.
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.events_dropped
    }

    /// Edge-triggered saturation check with re-arm below half the limit.
    /// Returns true when an onset event should fire.
    fn queue_check(active: &mut bool, depth: u64, limit: u64) -> bool {
        if limit == 0 {
            return false;
        }
        if depth * 100 >= limit * QUEUE_SATURATION_PCT {
            if !*active {
                *active = true;
                return true;
            }
        } else if depth * 2 < limit {
            *active = false;
        }
        false
    }

    fn emit(&mut self, ev: AnomalyEvent) {
        if self.events.len() >= ANOMALY_LOG_CAP {
            self.events_dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// Feeds one statclock-tick sample. `tick_ns` is the sampling period.
    pub fn feed(&mut self, t_ns: u64, tick_ns: u64, s: &WatchdogSample) {
        // --- starvation: runnable but making no progress -------------
        for &(pid, runnable, total_ns) in &s.procs {
            let st = self.starve.entry(pid).or_default();
            if runnable && st.last_total_ns == total_ns {
                st.stalled_ticks += 1;
                if st.stalled_ticks >= STARVATION_TICKS && !st.flagged {
                    st.flagged = true;
                    let (ticks, limit) = (st.stalled_ticks, STARVATION_TICKS);
                    self.emit(AnomalyEvent {
                        t_ns,
                        kind: AnomalyKind::Starvation,
                        pid: Some(pid),
                        detail: "runnable_no_progress",
                        value: ticks as u64 * tick_ns,
                        limit: limit as u64 * tick_ns,
                    });
                }
            } else {
                st.stalled_ticks = 0;
                st.flagged = false;
                st.last_total_ns = total_ns;
            }
        }

        // --- queue saturation onset ----------------------------------
        if Self::queue_check(&mut self.ipq_sat_active, s.ipq_depth, s.ipq_limit) {
            self.emit(AnomalyEvent {
                t_ns,
                kind: AnomalyKind::QueueSaturation,
                pid: None,
                detail: "ip_queue",
                value: s.ipq_depth,
                limit: s.ipq_limit,
            });
        }
        if Self::queue_check(&mut self.chan_sat_active, s.chan_depth_max, s.chan_limit) {
            self.emit(AnomalyEvent {
                t_ns,
                kind: AnomalyKind::QueueSaturation,
                pid: None,
                detail: "ni_channel",
                value: s.chan_depth_max,
                limit: s.chan_limit,
            });
        }

        // --- receiver-livelock onset ---------------------------------
        let cur = (s.delivered, s.dropped, s.charged_ns, s.user_ns);
        if let Some((p_del, p_drop, p_chg, p_usr)) = self.prev {
            let d_delivered = cur.0.saturating_sub(p_del);
            let d_dropped = cur.1.saturating_sub(p_drop);
            let d_charged = cur.2.saturating_sub(p_chg);
            let d_user = cur.3.saturating_sub(p_usr);
            let d_nonuser = d_charged.saturating_sub(d_user);
            let pegged = d_charged * 100 >= tick_ns * LIVELOCK_PEGGED_PCT;
            let proto_pegged = d_nonuser * 100 >= tick_ns * LIVELOCK_PROTO_PCT;
            let livelocked = pegged && proto_pegged && d_delivered == 0 && d_dropped > 0;
            if livelocked {
                self.livelock_streak += 1;
                if self.livelock_streak >= LIVELOCK_STREAK_TICKS && !self.livelock_active {
                    self.livelock_active = true;
                    self.emit(AnomalyEvent {
                        t_ns,
                        kind: AnomalyKind::LivelockOnset,
                        pid: None,
                        detail: "protocol_pegged_delivery_stalled",
                        value: d_nonuser,
                        limit: tick_ns * LIVELOCK_PROTO_PCT / 100,
                    });
                }
            } else {
                self.livelock_streak = 0;
                self.livelock_active = false;
            }
        }
        self.prev = Some(cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 10_000_000; // 10 ms

    fn sample(delivered: u64, dropped: u64, charged: u64, user: u64) -> WatchdogSample {
        WatchdogSample {
            delivered,
            dropped,
            charged_ns: charged,
            user_ns: user,
            ipq_depth: 0,
            ipq_limit: 50,
            chan_depth_max: 0,
            chan_limit: 64,
            procs: Vec::new(),
        }
    }

    #[test]
    fn livelock_fires_once_after_streak() {
        let mut w = Watchdog::new();
        let mut charged = 0;
        let mut dropped = 0;
        // Healthy warmup tick, then pegged non-user ticks with zero
        // delivery and ongoing drops.
        w.feed(0, TICK, &sample(10, 0, charged, 0));
        for i in 1..=6u64 {
            charged += TICK;
            dropped += 100;
            w.feed(i * TICK, TICK, &sample(10, dropped, charged, 0));
        }
        let lv: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == AnomalyKind::LivelockOnset)
            .collect();
        assert_eq!(
            lv.len(),
            1,
            "exactly one onset per episode: {:?}",
            w.events()
        );
        assert_eq!(lv[0].t_ns, 3 * TICK, "fires on the third qualifying tick");
    }

    #[test]
    fn user_bound_cpu_is_not_livelock() {
        // CPU pegged but in *user* mode (an application consuming every
        // cycle while the NIC sheds load) must not trip the detector.
        let mut w = Watchdog::new();
        let mut charged = 0;
        let mut dropped = 0;
        w.feed(0, TICK, &sample(10, 0, charged, 0));
        for i in 1..=6u64 {
            charged += TICK;
            dropped += 100;
            w.feed(i * TICK, TICK, &sample(10, dropped, charged, charged));
        }
        assert!(w.events().is_empty(), "{:?}", w.events());
    }

    #[test]
    fn idle_host_is_not_livelock() {
        let mut w = Watchdog::new();
        for i in 0..10u64 {
            w.feed(i * TICK, TICK, &sample(0, 0, 0, 0));
        }
        assert!(w.events().is_empty());
    }

    #[test]
    fn starvation_fires_for_stalled_runnable_process() {
        let mut w = Watchdog::new();
        let mut s = sample(0, 0, 0, 0);
        s.procs = vec![(1, true, 500), (2, true, 500)];
        for i in 0..STARVATION_TICKS as u64 + 2 {
            // Pid 2 keeps progressing; pid 1 is stuck.
            s.procs[1].2 += TICK / 2;
            w.feed(i * TICK, TICK, &s);
        }
        let st: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == AnomalyKind::Starvation)
            .collect();
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].pid, Some(1));
    }

    #[test]
    fn sleeping_process_is_not_starved() {
        let mut w = Watchdog::new();
        let mut s = sample(0, 0, 0, 0);
        s.procs = vec![(1, false, 500)];
        for i in 0..STARVATION_TICKS as u64 + 10 {
            w.feed(i * TICK, TICK, &s);
        }
        assert!(w.events().is_empty());
    }

    #[test]
    fn queue_saturation_is_edge_triggered_with_rearm() {
        let mut w = Watchdog::new();
        let mut s = sample(0, 0, 0, 0);
        s.ipq_depth = 48; // 96% of 50
        w.feed(0, TICK, &s);
        w.feed(TICK, TICK, &s); // still saturated: no second event
        s.ipq_depth = 30; // below 90% but not below half: stays armed-off
        w.feed(2 * TICK, TICK, &s);
        s.ipq_depth = 49;
        w.feed(3 * TICK, TICK, &s); // no re-fire without draining below half
        s.ipq_depth = 10;
        w.feed(4 * TICK, TICK, &s); // drains: re-arms
        s.ipq_depth = 50;
        w.feed(5 * TICK, TICK, &s); // second onset
        let qs: Vec<_> = w
            .events()
            .iter()
            .filter(|e| e.kind == AnomalyKind::QueueSaturation)
            .collect();
        assert_eq!(qs.len(), 2, "{:?}", w.events());
        assert_eq!(qs[0].detail, "ip_queue");
    }
}
