//! The CPU cost model.
//!
//! Every processing step in the simulated kernel consumes a configurable
//! amount of CPU time. The defaults are calibrated to the paper's
//! SPARCstation-20/61 testbed using the costs the paper itself reports:
//!
//! - BSD "hardware plus software interrupt, including protocol
//!   processing" ≈ 60 µs → `hw_intr + driver_rx_per_pkt` ≈ 18 µs and the
//!   softirq path ≈ 42 µs.
//! - SOFT-LRP "hardware interrupt, including demux" ≈ 25 µs →
//!   `hw_intr + driver_rx_per_pkt + demux_per_pkt` ≈ 25 µs.
//! - NI-LRP "hardware interrupt with minimal processing" → `hw_intr_ni`.
//! - BSD peak UDP throughput ≈ 7 400 pkts/s → full BSD receive path
//!   ≈ 135 µs/packet; SOFT-LRP ≈ 9 760 → ≈ 102 µs; NI-LRP ≈ 11 163 →
//!   ≈ 90 µs.
//!
//! All values are [`SimDuration`]s; per-byte costs are in nanoseconds per
//! byte.

use lrp_sim::SimDuration;

const fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

/// CPU costs for every kernel processing step.
///
/// # Examples
///
/// ```
/// use lrp_core::CostModel;
///
/// let mut c = CostModel::sparc20();
/// // Double the demux cost to explore SOFT-LRP's livelock postponement.
/// c.demux_per_pkt = c.demux_per_pkt * 2;
/// assert!(c.copy(1000) > lrp_sim::SimDuration::ZERO);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    // ---- interrupt path ----
    /// Hardware interrupt dispatch + return (trap overhead).
    pub hw_intr: SimDuration,
    /// Driver work per received packet in the interrupt handler (ring
    /// maintenance, mbuf allocation, buffer replenish).
    pub driver_rx_per_pkt: SimDuration,
    /// Early demultiplexing per packet when performed on the host
    /// (SOFT-LRP / Early-Demux).
    pub demux_per_pkt: SimDuration,
    /// NI-LRP host interrupt: "minimal processing" — wakeup notification
    /// only.
    pub hw_intr_ni: SimDuration,
    /// Software interrupt dispatch per batch entry (posting + priority
    /// level switching).
    pub softirq_dispatch: SimDuration,

    // ---- protocol processing ----
    /// IP input: header validation, routing decision, dispatch.
    pub ip_input: SimDuration,
    /// Extra cost per fragment during reassembly.
    pub ip_reasm_per_frag: SimDuration,
    /// UDP input processing (excluding PCB lookup and checksum).
    pub udp_input: SimDuration,
    /// TCP input processing for an established connection (header
    /// prediction failure path, state machine).
    pub tcp_input: SimDuration,
    /// TCP SYN processing at a listening socket (PCB creation or backlog
    /// rejection) — the Figure 5 lever.
    pub tcp_syn: SimDuration,
    /// PCB lookup: base cost.
    pub pcb_lookup_base: SimDuration,
    /// PCB lookup: per entry scanned.
    pub pcb_lookup_per_entry: SimDuration,
    /// IP forwarding decision + header rewrite per packet.
    pub ip_forward: SimDuration,
    /// UDP output processing.
    pub udp_output: SimDuration,
    /// TCP output processing per segment.
    pub tcp_output: SimDuration,
    /// IP output per packet (incl. fragmentation per-fragment cost).
    pub ip_output: SimDuration,
    /// Driver transmit enqueue per frame.
    pub driver_tx_per_pkt: SimDuration,

    // ---- data movement ----
    /// Copy between user and kernel space, ns per byte (SS20 ≈ 80 MB/s).
    pub copy_ns_per_byte: u64,
    /// Internet checksum, ns per byte.
    pub csum_ns_per_byte: u64,
    /// Per-byte protocol/mbuf handling on the receive path (mbuf chain
    /// traversal, cache misses on DMA'd data). Dominates bulk-transfer
    /// throughput; negligible for the 14-byte overload tests.
    pub proto_ns_per_byte: u64,

    // ---- socket & system call layer ----
    /// System call entry (trap, argument copyin, fd lookup).
    pub syscall_entry: SimDuration,
    /// System call return.
    pub syscall_return: SimDuration,
    /// Socket-buffer enqueue (sbappendaddr) per packet.
    pub sock_enqueue: SimDuration,
    /// Socket-buffer dequeue + soreceive bookkeeping per packet.
    pub sock_dequeue: SimDuration,
    /// Wakeup of sleeping process (sowakeup + sched queue insertion).
    pub wakeup: SimDuration,
    /// Context switch (register/address-space switch, excluding cache
    /// reload, which is per-process).
    pub context_switch: SimDuration,
    /// Inter-processor interrupt: cross-CPU wakeup delivery (send on one
    /// CPU + trap on the target). Charged on the *target* CPU when a
    /// wakeup must run a process homed on another CPU. Anchored to the
    /// SPARCcenter-2000 cross-call cost (~½ a local interrupt trap).
    pub ipi: SimDuration,
    /// Cache-reload time per KB of the incoming process's working set.
    pub cache_reload_per_kb: SimDuration,
    /// Time away from the CPU after which the working set is assumed
    /// fully evicted; shorter absences pay proportionally less reload.
    pub cache_decay_window: SimDuration,
    /// Accept: new socket/fd setup.
    pub accept_sock: SimDuration,
    /// Fraction (×1000) discount on protocol-processing costs when run
    /// lazily in the receiving process's context — the paper's memory
    /// access locality benefit. 1000 = no discount, 900 = 10% cheaper.
    pub lazy_locality_permille: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sparc20()
    }
}

impl CostModel {
    /// Calibration for the paper's SPARCstation-20/61 testbed.
    pub fn sparc20() -> Self {
        CostModel {
            hw_intr: us(13),
            driver_rx_per_pkt: us(5),
            demux_per_pkt: us(6),
            hw_intr_ni: us(5),
            softirq_dispatch: us(10),
            ip_input: us(14),
            ip_reasm_per_frag: us(8),
            udp_input: us(14),
            tcp_input: us(30),
            tcp_syn: us(60),
            pcb_lookup_base: us(2),
            pcb_lookup_per_entry: SimDuration::from_nanos(200),
            ip_forward: us(18),
            udp_output: us(12),
            tcp_output: us(25),
            ip_output: us(12),
            driver_tx_per_pkt: us(8),
            copy_ns_per_byte: 12,
            csum_ns_per_byte: 10,
            proto_ns_per_byte: 62,
            syscall_entry: us(15),
            syscall_return: us(10),
            sock_enqueue: us(10),
            sock_dequeue: us(41),
            wakeup: us(10),
            context_switch: us(25),
            ipi: us(6),
            cache_reload_per_kb: SimDuration::from_nanos(2_500),
            cache_decay_window: SimDuration::from_millis(50),
            accept_sock: us(40),
            lazy_locality_permille: 850,
        }
    }

    /// The SunOS + FORE-driver preset: same machine, slower vendor driver
    /// (the paper's Table 1 baseline, ≈ 150 µs extra round-trip latency
    /// and visibly lower UDP throughput).
    pub fn sunos_fore() -> Self {
        let mut c = Self::sparc20();
        c.driver_rx_per_pkt = us(35);
        c.driver_tx_per_pkt = us(45);
        c.copy_ns_per_byte = 19;
        c.proto_ns_per_byte = 95;
        c
    }

    /// Returns this model with every cost multiplied by `factor` — a
    /// crude but useful way to project a faster (`factor < 1`) or slower
    /// CPU at fixed architecture (used by the technology-trend ablation).
    pub fn scaled(&self, factor: f64) -> CostModel {
        let d = |x: SimDuration| x.mul_f64(factor);
        let b = |x: u64| ((x as f64 * factor).round() as u64).max(1);
        CostModel {
            hw_intr: d(self.hw_intr),
            driver_rx_per_pkt: d(self.driver_rx_per_pkt),
            demux_per_pkt: d(self.demux_per_pkt),
            hw_intr_ni: d(self.hw_intr_ni),
            softirq_dispatch: d(self.softirq_dispatch),
            ip_input: d(self.ip_input),
            ip_reasm_per_frag: d(self.ip_reasm_per_frag),
            udp_input: d(self.udp_input),
            tcp_input: d(self.tcp_input),
            tcp_syn: d(self.tcp_syn),
            pcb_lookup_base: d(self.pcb_lookup_base),
            pcb_lookup_per_entry: d(self.pcb_lookup_per_entry),
            ip_forward: d(self.ip_forward),
            udp_output: d(self.udp_output),
            tcp_output: d(self.tcp_output),
            ip_output: d(self.ip_output),
            driver_tx_per_pkt: d(self.driver_tx_per_pkt),
            copy_ns_per_byte: b(self.copy_ns_per_byte),
            csum_ns_per_byte: b(self.csum_ns_per_byte),
            proto_ns_per_byte: b(self.proto_ns_per_byte),
            syscall_entry: d(self.syscall_entry),
            syscall_return: d(self.syscall_return),
            sock_enqueue: d(self.sock_enqueue),
            sock_dequeue: d(self.sock_dequeue),
            wakeup: d(self.wakeup),
            context_switch: d(self.context_switch),
            ipi: d(self.ipi),
            cache_reload_per_kb: d(self.cache_reload_per_kb),
            cache_decay_window: self.cache_decay_window,
            accept_sock: d(self.accept_sock),
            lazy_locality_permille: self.lazy_locality_permille,
        }
    }

    /// Copy cost for `n` bytes.
    pub fn copy(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.copy_ns_per_byte * n as u64)
    }

    /// Checksum cost for `n` bytes.
    pub fn csum(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.csum_ns_per_byte * n as u64)
    }

    /// Per-byte receive-path handling cost for `n` bytes.
    pub fn proto_bytes(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.proto_ns_per_byte * n as u64)
    }

    /// PCB lookup cost for a scan of `steps` entries.
    pub fn pcb_lookup(&self, steps: usize) -> SimDuration {
        self.pcb_lookup_base + self.pcb_lookup_per_entry * steps as u64
    }

    /// Applies the lazy-processing locality discount.
    pub fn lazy(&self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.lazy_locality_permille as f64 / 1000.0)
    }

    /// Cache reload penalty for a working set of `bytes`.
    pub fn cache_reload(&self, bytes: usize) -> SimDuration {
        self.cache_reload_per_kb * (bytes as u64 / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interrupt_costs_match() {
        let c = CostModel::sparc20();
        // BSD hw+soft interrupt incl. protocol ≈ 60us (paper §4.2).
        let bsd_intr = c.hw_intr
            + c.driver_rx_per_pkt
            + c.softirq_dispatch
            + c.ip_input
            + c.udp_input
            + c.pcb_lookup(2)
            + c.sock_enqueue;
        let us60 = bsd_intr.as_micros();
        assert!((52..=70).contains(&us60), "BSD intr path was {us60}us");
        // SOFT-LRP hw interrupt incl. demux ≈ 25us.
        let soft = (c.hw_intr + c.driver_rx_per_pkt + c.demux_per_pkt).as_micros();
        assert!((22..=28).contains(&soft), "SOFT-LRP intr was {soft}us");
        // NI-LRP: minimal.
        assert!(c.hw_intr_ni.as_micros() <= 6);
    }

    #[test]
    fn per_byte_helpers() {
        let c = CostModel::sparc20();
        assert_eq!(c.copy(1000), SimDuration::from_micros(12));
        assert_eq!(c.csum(1000), SimDuration::from_micros(10));
        assert_eq!(c.copy(0), SimDuration::ZERO);
    }

    #[test]
    fn lazy_discount() {
        let c = CostModel::sparc20();
        assert_eq!(
            c.lazy(SimDuration::from_micros(100)),
            SimDuration::from_micros(85)
        );
    }

    #[test]
    fn pcb_scan_scales() {
        let c = CostModel::sparc20();
        let short = c.pcb_lookup(1);
        let long = c.pcb_lookup(1001);
        assert_eq!(long - short, SimDuration::from_micros(200));
    }

    #[test]
    fn sunos_driver_slower() {
        let fast = CostModel::sparc20();
        let slow = CostModel::sunos_fore();
        assert!(slow.driver_rx_per_pkt > fast.driver_rx_per_pkt);
        assert!(slow.driver_tx_per_pkt > fast.driver_tx_per_pkt);
    }

    #[test]
    fn scaled_halves_costs() {
        let c = CostModel::sparc20();
        let f = c.scaled(0.5);
        assert_eq!(f.hw_intr, c.hw_intr.mul_f64(0.5));
        assert_eq!(f.ipi, c.ipi.mul_f64(0.5));
        assert_eq!(f.copy_ns_per_byte, c.copy_ns_per_byte / 2);
        assert_eq!(f.lazy_locality_permille, c.lazy_locality_permille);
        // Per-byte costs never drop to zero.
        let tiny = c.scaled(0.0001);
        assert!(tiny.copy_ns_per_byte >= 1);
    }

    #[test]
    fn cache_reload_proportional() {
        let c = CostModel::sparc20();
        // 350 KB working set (35% of the 1MB L2) ≈ 875us.
        let d = c.cache_reload(350 * 1024);
        assert_eq!(d, SimDuration::from_micros(875));
    }
}
