//! The simulated server host: one or more CPUs, a scheduler, a NIC and
//! the protocol stack, glued together under one of the paper's four
//! architectures.
//!
//! # Execution model
//!
//! The host is driven by the [`World`](crate::world::World): frames arrive
//! via [`Host::on_frame`], CPU work completions via
//! [`Host::on_cpu_complete`], kernel timers via [`Host::on_timer`], and
//! the statclock via [`Host::on_tick`]. The host never blocks; it models
//! each CPU as a resource executing *work chunks* with three preemption
//! levels, highest first:
//!
//! 1. **Hardware interrupts** — run to completion, queue FIFO behind each
//!    other, preempt everything else.
//! 2. **Software interrupts** (BSD / Early-Demux protocol processing, TCP
//!    timers) — preempted by hardware interrupts, preempt processes.
//! 3. **Processes** — scheduled by the 4.3BSD decay scheduler; system
//!    calls decompose into cost-bearing phases.
//!
//! Protocol *logic* executes at chunk start (exact at interrupt level,
//! and equivalent on a uniprocessor for the rest, since nothing else can
//! observe intermediate state while the chunk occupies the CPU); the chunk
//! then occupies the CPU for the modelled cost, charged to a process
//! according to the architecture's accounting policy — the paper's central
//! lever.
//!
//! With `ncpus > 1` ([`HostConfig::ncpus`]) the host models an SMP
//! machine: each CPU keeps its own run queue, interrupt/softirq suspend
//! state and generation counter, NIC RX interrupts are steered to the
//! queue's target CPU (`rxq % ncpus`), and a wakeup that makes a process
//! runnable on another CPU posts an IPI whose delivery cost is paid on
//! the target. `ncpus = 1` reproduces the classic uniprocessor host
//! bit-for-bit.

mod cpu;
mod proto;
mod rx;
mod syscalls;

use crate::config::{Architecture, HostConfig};
use crate::hostfault::{FaultKind, HostFaultPlan, HostFaultState};
use crate::syscall::{AppLogic, Errno, SockProto, SyscallOp, SyscallRet};
use lrp_demux::ChannelId;
use lrp_nic::{DemuxMode, Nic};
use lrp_sched::{Account, Pid, SchedConfig, Scheduler, WaitChannel};
use lrp_sim::{FastHashMap, SimDuration, SimTime};
use lrp_stack::sockbuf::DatagramQueue;
use lrp_stack::tcp::{TcpConn, TcpListener, TcpStats};
use lrp_stack::{PcbTable, Reassembler, SockId};
use lrp_wire::{Endpoint, Frame, Ipv4Addr};
use std::collections::{BTreeMap, VecDeque};

/// Where a packet was dropped — the paper's instrumentation distinguishes
/// exactly these points to explain each architecture's overload behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropPoint {
    /// NIC receive ring overrun (host not servicing interrupts).
    RxRing,
    /// Early discard at an NI channel (LRP) or at demux time (Early-Demux).
    Channel,
    /// The shared IP queue overflowed (BSD beyond ~15k pkts/s).
    IpQueue,
    /// The socket receive buffer was full — BSD pays full protocol
    /// processing before discovering this.
    SockBuf,
    /// Checksum or header validation failed in protocol processing.
    BadPacket,
    /// No socket bound to the destination port.
    NoSocket,
    /// Listen backlog exceeded (SYN dropped after processing — BSD path).
    Backlog,
    /// Reassembly gave up (table full or timeout).
    Reasm,
    /// Interface (transmit) queue overflow.
    IfQueue,
    /// NIC receive path stalled (injected device fault); the frame died
    /// on the device, not in the host. The ledger accounts these from NIC
    /// statistics (`stall_drops`); this point only feeds host statistics.
    NicStall,
    /// UDP datagram to a closed port, answered with ICMP port
    /// unreachable. Distinct from [`DropPoint::NoSocket`] (demux-time
    /// no-match), which never reaches protocol processing and so sends
    /// no ICMP — the LRP discipline.
    PortUnreach,
}

impl DropPoint {
    /// Stable name used in telemetry output.
    pub fn name(self) -> &'static str {
        match self {
            DropPoint::RxRing => "RxRing",
            DropPoint::Channel => "Channel",
            DropPoint::IpQueue => "IpQueue",
            DropPoint::SockBuf => "SockBuf",
            DropPoint::BadPacket => "BadPacket",
            DropPoint::NoSocket => "NoSocket",
            DropPoint::Backlog => "Backlog",
            DropPoint::Reasm => "Reasm",
            DropPoint::IfQueue => "IfQueue",
            DropPoint::NicStall => "NicStall",
            DropPoint::PortUnreach => "PortUnreach",
        }
    }
}

/// Aggregate host statistics.
#[derive(Clone, Debug, Default)]
pub struct HostStats {
    /// UDP datagrams delivered to applications.
    pub udp_delivered: u64,
    /// UDP payload bytes delivered to applications.
    pub udp_delivered_bytes: u64,
    /// TCP payload bytes delivered to applications.
    pub tcp_delivered_bytes: u64,
    /// Packet drops by location.
    pub drops: FastHashMap<DropPoint, u64>,
    /// Hardware interrupt work chunks executed.
    pub hw_chunks: u64,
    /// Software interrupt jobs executed.
    pub soft_jobs: u64,
    /// Context switches between different processes.
    pub ctx_switches: u64,
    /// TCP connections fully established (passive side).
    pub tcp_accepted: u64,
    /// Inter-processor interrupts posted for cross-CPU wakeups (SMP).
    pub ipis: u64,
    /// TCP counters folded in from freed sockets. Live connections still
    /// hold theirs — use [`Host::tcp_totals`] for the complete picture.
    pub tcp_closed: TcpStats,
    /// ICMP port-unreachable replies emitted for UDP to closed ports.
    pub icmp_unreach_sent: u64,
}

impl HostStats {
    /// Records a drop at the given point.
    pub fn drop_at(&mut self, p: DropPoint) {
        *self.drops.entry(p).or_insert(0) += 1;
    }

    /// Count of drops at a point.
    pub fn dropped(&self, p: DropPoint) -> u64 {
        self.drops.get(&p).copied().unwrap_or(0)
    }

    /// Total drops across all points.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }
}

/// Wait-channel kinds hung off a socket.
pub(crate) const WC_RECV: u64 = 0;
pub(crate) const WC_SEND: u64 = 1;
pub(crate) const WC_ACCEPT: u64 = 2;
pub(crate) const WC_CONNECT: u64 = 3;

pub(crate) fn sock_wchan(sock: SockId, kind: u64) -> WaitChannel {
    WaitChannel((sock.0 as u64) * 8 + kind)
}

/// Wait channel for the APP kernel thread.
pub(crate) const WC_APP_THREAD: WaitChannel = WaitChannel(1 << 60);
/// Wait channel for the idle protocol thread.
pub(crate) const WC_IDLE_THREAD: WaitChannel = WaitChannel((1 << 60) + 1);
/// Wait channel for the IP forwarding daemon.
pub(crate) const WC_FORWARD: WaitChannel = WaitChannel((1 << 60) + 2);

/// A socket in the host's socket table.
#[derive(Debug)]
pub(crate) struct Socket {
    pub id: SockId,
    pub owner: Pid,
    pub proto: SockProto,
    pub local: Option<Endpoint>,
    pub remote: Option<Endpoint>,
    /// The NI channel (LRP and Early-Demux architectures).
    pub chan: Option<ChannelId>,
    /// UDP receive queue: the socket queue (BSD/ED) or the processed-
    /// and-ready queue (LRP).
    pub rcvq: DatagramQueue,
    /// TCP connection state.
    pub tcp: Option<TcpConn>,
    /// Listening state.
    pub listener: Option<TcpListener>,
    /// Completed connections awaiting accept (socket ids).
    pub accept_q: VecDeque<SockId>,
    /// For passive children: the listening socket.
    pub parent: Option<SockId>,
    /// Child has been counted into the parent's accept queue.
    pub established_reported: bool,
    /// The application has closed this socket.
    pub closed_by_app: bool,
    /// NI channel was reclaimed in TIME_WAIT (NI-LRP).
    pub chan_reclaimed: bool,
    /// Sticky error recorded when the connection died (RST received,
    /// retransmit give-up, keepalive abort); surfaced by the next
    /// recv/send/connect instead of a silent stall or a fake EOF.
    pub err: Option<Errno>,
    /// Frames dropped at this socket's full receive buffer. Kernel state,
    /// not telemetry: the `SockStats` syscall surfaces it to applications,
    /// so it is maintained regardless of the telemetry switch.
    pub drops_sockbuf: u64,
    /// Frames dropped at this socket's full NI channel (or by Early-Demux
    /// socket-queue feedback at the interrupt handler).
    pub drops_channel: u64,
}

/// Per-process execution state.
#[derive(Debug)]
pub(crate) enum ProcExec {
    /// Process has not run yet; call `AppLogic::start` when scheduled.
    Start,
    /// Continue with this kernel phase when scheduled.
    Cont(Cont),
    /// Mid-phase preemption: finish `remaining` of the charged work, then
    /// continue.
    Chunk {
        remaining: SimDuration,
        account: Account,
        /// Whom the remaining work is charged to (may differ from the
        /// running thread for APP/idle kernel threads).
        charge: Pid,
        /// Profiler metadata carried across the preemption.
        meta: ChunkMeta,
        next: Cont,
    },
    /// Blocked; on wakeup becomes `Cont(resume)`.
    Blocked(Cont),
    /// Terminated.
    Exited,
}

/// Kernel continuations: the next phase of an in-progress operation.
#[derive(Debug, Clone)]
pub(crate) enum Cont {
    /// Deliver a result to the app and get its next operation.
    AppNext(SyscallRet),
    /// Begin a system call (pays entry cost).
    SyscallEntry(Box<SyscallOp>),
    /// Pay the return cost, then `AppNext`.
    SyscallReturn(SyscallRet),
    /// User-mode computation with `remaining` to burn.
    ComputeSlice(SimDuration),
    /// Quantum boundary inside a computation: round-robin check, then
    /// continue computing.
    ComputeMore(SimDuration),
    /// UDP/TCP receive: check queues, maybe process lazily, maybe block.
    RecvCheck { sock: SockId, max_len: usize },
    /// TCP send: try to buffer more data starting at `off`.
    TcpSend {
        sock: SockId,
        data: std::rc::Rc<Vec<u8>>,
        off: usize,
    },
    /// Accept: check the accept queue, maybe block.
    AcceptCheck { sock: SockId },
    /// Connect: wait for the handshake outcome.
    ConnectCheck { sock: SockId },
    /// The APP kernel thread's main loop (LRP TCP processing).
    AppThreadStep,
    /// The IP forwarding daemon's main loop (LRP §3.5).
    ForwardStep,
    /// The idle protocol thread's main loop (LRP §3.3).
    IdleThreadStep,
}

impl Cont {
    /// Profiler stage label of the phase this continuation denotes.
    pub(crate) fn stage(&self) -> &'static str {
        match self {
            Cont::AppNext(_) => "app-logic",
            Cont::SyscallEntry(_) => "syscall-entry",
            Cont::SyscallReturn(_) => "syscall-return",
            Cont::ComputeSlice(_) | Cont::ComputeMore(_) => "compute",
            Cont::RecvCheck { .. } => "recv",
            Cont::TcpSend { .. } => "send",
            Cont::AcceptCheck { .. } => "accept",
            Cont::ConnectCheck { .. } => "connect",
            Cont::AppThreadStep => "app-thread-step",
            Cont::ForwardStep => "forward",
            Cont::IdleThreadStep => "idle-proto-step",
        }
    }
}

/// What a phase does after its cost is paid.
pub(crate) enum PhaseOut {
    /// Consume CPU, then continue.
    Run {
        dur: SimDuration,
        account: Account,
        next: Cont,
    },
    /// Block on a wait channel at a kernel priority.
    Block {
        wchan: WaitChannel,
        pri: u8,
        resume: Cont,
    },
    /// Voluntarily yield the CPU (round-robin), stay runnable.
    Yield(Cont),
    /// Process exited.
    Done,
}

/// CPU work kinds.
#[derive(Debug)]
pub(crate) enum WorkKind {
    /// Hardware interrupt tail (logic already applied at arrival).
    Hw,
    /// Software interrupt job (logic already applied at job start).
    Soft,
    /// A process phase; continuation runs at completion.
    Proc { pid: Pid, next: Cont },
}

/// Profiler metadata riding on a work chunk. Pure observation: attached
/// at chunk start, consumed when elapsed time is settled, never read by
/// any scheduling or protocol decision.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChunkMeta {
    /// Pipeline stage label (`rx-intr`, `ip-input`, `recv`, `compute`, …).
    pub stage: &'static str,
    /// Rightful receiver of protocol work performed in this chunk, when
    /// one is knowable — the charge-attribution ledger compares it with
    /// whom the chunk was actually billed to.
    pub owner: Option<Pid>,
}

impl ChunkMeta {
    pub(crate) fn stage(stage: &'static str) -> Self {
        ChunkMeta { stage, owner: None }
    }
}

#[derive(Debug)]
pub(crate) struct Running {
    pub kind: WorkKind,
    pub charge: Option<(Pid, Account)>,
    pub meta: ChunkMeta,
    pub started: SimTime,
    pub ends: SimTime,
}

#[derive(Debug)]
pub(crate) struct Suspended {
    pub kind: WorkKind,
    pub charge: Option<(Pid, Account)>,
    pub meta: ChunkMeta,
    pub remaining: SimDuration,
}

#[derive(Debug, Default)]
pub(crate) struct Cpu {
    pub gen: u64,
    pub running: Option<Running>,
    /// A process chunk displaced by an interrupt (resumed in place unless
    /// preempted by a better process at interrupt return).
    pub susp_proc: Option<Suspended>,
    /// A softirq chunk displaced by a hardware interrupt.
    pub susp_soft: Option<Suspended>,
    /// Pending hardware interrupt work (cost, charge target decided at
    /// arrival, profiler stage label).
    pub pending_hw: VecDeque<(SimDuration, Option<Pid>, &'static str)>,
    /// The process whose context was last on this CPU (context-switch
    /// detection for cache-reload penalties).
    pub last_on_cpu: Option<Pid>,
    /// Total time this CPU spent executing chunks (utilization).
    pub busy: SimDuration,
}

/// The simulated host.
pub struct Host {
    /// Configuration (architecture, costs, kernel parameters).
    pub cfg: HostConfig,
    /// This host's address.
    pub addr: Ipv4Addr,
    /// The process scheduler.
    pub sched: Scheduler,
    /// The network interface.
    pub nic: Nic,
    /// Aggregate statistics.
    pub stats: HostStats,
    pub(crate) pcb: PcbTable,
    pub(crate) reasm: Reassembler,
    pub(crate) sockets: Vec<Option<Socket>>,
    pub(crate) apps: FastHashMap<Pid, Box<dyn AppLogic>>,
    pub(crate) exec: FastHashMap<Pid, ProcExec>,
    /// The simulated CPUs (length `cfg.ncpus`).
    pub(crate) cpus: Vec<Cpu>,
    /// The CPU whose context the host is currently executing in (set at
    /// every entry point; used for cross-CPU wakeup detection and per-CPU
    /// scheduler queries from syscall phases).
    pub(crate) cur_cpu: usize,
    /// BSD shared IP queue.
    pub(crate) ip_queue: VecDeque<Frame>,
    /// Reusable scratch buffer for the driver's per-interrupt ring batch
    /// (capacity persists across interrupts; contents are always drained).
    pub(crate) rx_scratch: Vec<Frame>,
    /// Due TCP timer work (socket ids), processed in protocol context.
    pub(crate) tcp_timer_work: VecDeque<SockId>,
    /// Early-Demux: channels with frames awaiting softirq processing.
    pub(crate) ed_pending: VecDeque<SockId>,
    /// Timed sleeps.
    pub(crate) sleep_until: BTreeMap<SimTime, Vec<Pid>>,
    pub(crate) app_thread: Option<Pid>,
    pub(crate) idle_thread: Option<Pid>,
    /// The raw socket of the ICMP proxy daemon (§3.5), if one is bound.
    pub(crate) icmp_sock: Option<SockId>,
    /// The IP forwarding daemon (LRP) — forwarding runs at its priority.
    pub(crate) forward_daemon: Option<Pid>,
    /// BSD/Early-Demux: forward in softirq context when enabled.
    pub(crate) forwarding_enabled: bool,
    /// When each process last held a CPU (for away-time-scaled cache
    /// reload penalties).
    pub(crate) last_ran: FastHashMap<Pid, SimTime>,
    pub(crate) iss: u32,
    pub(crate) ip_ident: u16,
    pub(crate) ephemeral_port: u16,
    pub(crate) ticks: u64,
    /// Next reassembly-expiry sweep.
    pub(crate) next_reasm_sweep: SimTime,
    /// Charge target for the next process chunk, when it differs from the
    /// running thread (APP/idle kernel threads billing socket owners).
    pub(crate) pending_charge: Option<Pid>,
    /// Index of live sockets (the `sockets` Vec keeps dead slots; scans
    /// must stay proportional to *live* sockets, not history).
    pub(crate) live_socks: std::collections::BTreeSet<SockId>,
    /// Channel → socket index (replaces linear scans per packet).
    pub(crate) chan_to_sock: FastHashMap<lrp_demux::ChannelId, SockId>,
    /// Telemetry state (no-op unless `cfg.telemetry`).
    pub(crate) tele: crate::telemetry::Telemetry,
    /// Receive-timeout deadlines: time → `(pid, sock, seq)` entries. The
    /// seq token (matched against `recv_seq`) keeps a deadline that
    /// fires late from timing out a *later* receive on the same socket.
    pub(crate) recv_deadlines: BTreeMap<SimTime, Vec<(Pid, SockId, u64)>>,
    /// The seq token of each process's currently armed receive timeout.
    pub(crate) recv_seq: FastHashMap<Pid, u64>,
    /// Monotonic generator for receive-timeout seq tokens.
    pub(crate) recv_deadline_seq: u64,
    /// Attached end-host fault plan runtime (crash schedule + jitter).
    pub(crate) fault: Option<HostFaultState>,
    /// Respawn recipes for processes spawned restartable.
    pub(crate) restartable: FastHashMap<Pid, RestartSpec>,
    /// Scheduled restarts: time → crashed pids to respawn.
    pub(crate) restart_at: BTreeMap<SimTime, Vec<Pid>>,
    /// Crashed pid → its restarted successor (chains across restarts).
    pub(crate) reincarnation: FastHashMap<Pid, Pid>,
    /// Crash log: `(time, pid)` per executed crash.
    pub(crate) crash_log: Vec<(SimTime, Pid)>,
    /// Restart log: `(time, old pid, new pid)` per executed restart.
    pub(crate) restart_log: Vec<(SimTime, Pid, Pid)>,
    /// When the host finishes booting after a whole-host reboot; `None`
    /// while up. The NIC stays stalled for the whole down window.
    pub(crate) boot_at: Option<SimTime>,
    /// Reboot log: the time of each executed whole-host reboot.
    pub(crate) reboot_log: Vec<SimTime>,
    /// Niceness the forwarding daemon was enabled with (reboots recreate
    /// it at the same priority).
    pub(crate) forwarding_nice: i8,
}

/// Everything needed to respawn a crashed process: the original spawn
/// parameters plus a factory producing a fresh application state
/// machine (the app restarts from `start`, as a real exec would).
pub(crate) struct RestartSpec {
    name: String,
    nice: i8,
    working_set: usize,
    factory: Box<dyn Fn() -> Box<dyn AppLogic>>,
}

impl Host {
    /// Creates a host with the given configuration and address.
    ///
    /// # Examples
    ///
    /// ```
    /// use lrp_core::{Architecture, Host, HostConfig};
    ///
    /// let host = Host::new(
    ///     HostConfig::new(Architecture::SoftLrp),
    ///     "10.0.0.2".parse().unwrap(),
    /// );
    /// assert_eq!(host.rx_frames(), 0);
    /// ```
    pub fn new(cfg: HostConfig, addr: Ipv4Addr) -> Self {
        let demux_mode = match cfg.arch {
            Architecture::Bsd => DemuxMode::None,
            Architecture::EarlyDemux | Architecture::SoftLrp => DemuxMode::Soft,
            Architecture::NiLrp => DemuxMode::Ni,
        };
        assert!(cfg.ncpus > 0, "a host needs at least one CPU");
        let mut nic = Nic::new(demux_mode, addr, cfg.max_sockets);
        nic.set_default_channel_limit(cfg.channel_limit);
        nic.set_rx_queues(cfg.ncpus);
        let sched_cfg = SchedConfig {
            tick: cfg.tick,
            quantum: cfg.quantum,
            decay_interval: SimDuration::from_secs(1),
            ncpus: cfg.ncpus,
        };
        let mut host = Host {
            cfg,
            addr,
            sched: Scheduler::new(sched_cfg),
            nic,
            stats: HostStats::default(),
            pcb: PcbTable::new(),
            reasm: Reassembler::new(16, SimDuration::from_secs(30)),
            sockets: Vec::new(),
            apps: FastHashMap::default(),
            exec: FastHashMap::default(),
            cpus: (0..cfg.ncpus).map(|_| Cpu::default()).collect(),
            cur_cpu: 0,
            ip_queue: VecDeque::new(),
            rx_scratch: Vec::new(),
            tcp_timer_work: VecDeque::new(),
            ed_pending: VecDeque::new(),
            sleep_until: BTreeMap::new(),
            app_thread: None,
            idle_thread: None,
            icmp_sock: None,
            forward_daemon: None,
            forwarding_enabled: false,
            last_ran: FastHashMap::default(),
            iss: 1000,
            ip_ident: 1,
            ephemeral_port: 40_000,
            ticks: 0,
            next_reasm_sweep: SimTime::from_secs(1),
            pending_charge: None,
            live_socks: std::collections::BTreeSet::new(),
            chan_to_sock: FastHashMap::default(),
            tele: crate::telemetry::Telemetry::new(cfg.telemetry),
            recv_deadlines: BTreeMap::new(),
            recv_seq: FastHashMap::default(),
            recv_deadline_seq: 0,
            fault: None,
            restartable: FastHashMap::default(),
            restart_at: BTreeMap::new(),
            reincarnation: FastHashMap::default(),
            crash_log: Vec::new(),
            restart_log: Vec::new(),
            boot_at: None,
            reboot_log: Vec::new(),
            forwarding_nice: 0,
        };
        // Host-minted span ids: tagged with the address's last octet so
        // spans from different hosts never collide.
        host.tele
            .set_span_tag((1u64 << 63) | ((addr.octets()[3] as u64) << 48));
        if host.cfg.arch == Architecture::NiLrp {
            // Demand interrupts for the shared fragment channel so a
            // blocked receiver learns about misordered fragments.
            let frag = host.nic.fragment_channel;
            host.nic.channel_mut(frag).intr_requested = true;
        }
        if host.cfg.arch.is_lrp() {
            // The dedicated kernel process for asynchronous TCP protocol
            // processing (§3.4); priority pinned dynamically to the owning
            // application's priority.
            if host.cfg.tcp_app_processing {
                let app = host.sched.spawn_fixed("app-thread", lrp_sched::PUSER);
                host.exec.insert(app, ProcExec::Cont(Cont::AppThreadStep));
                // Kernel threads drain global protocol state; pin them to
                // CPU 0 so the idle-steal balancer cannot migrate them.
                host.sched.set_affinity(app, Some(0));
                host.app_thread = Some(app);
            }
            if host.cfg.idle_thread {
                // Minimal-priority thread that performs protocol
                // processing when the CPU would otherwise idle (§3.3).
                let idle = host.sched.spawn_fixed("idle-proto", 126);
                host.exec.insert(idle, ProcExec::Cont(Cont::IdleThreadStep));
                host.sched.set_affinity(idle, Some(0));
                host.idle_thread = Some(idle);
            }
        }
        host
    }

    /// Spawns an application process.
    ///
    /// `working_set` is the cache working set in bytes (drives the
    /// cache-reload penalty on context switches).
    pub fn spawn_app(
        &mut self,
        name: &str,
        nice: i8,
        working_set: usize,
        app: Box<dyn AppLogic>,
    ) -> Pid {
        let reload = self.cfg.cost.cache_reload(working_set);
        let pid = self.sched.spawn(name, nice, reload);
        self.apps.insert(pid, app);
        self.exec.insert(pid, ProcExec::Start);
        pid
    }

    /// Spawns an application process that can be respawned after a crash:
    /// the factory builds a fresh state machine each incarnation (the app
    /// restarts from `start`, re-binding its sockets as a real exec
    /// would). Crash events addressed to the returned pid follow the
    /// restart chain automatically.
    pub fn spawn_app_restartable(
        &mut self,
        name: &str,
        nice: i8,
        working_set: usize,
        factory: Box<dyn Fn() -> Box<dyn AppLogic>>,
    ) -> Pid {
        let app = factory();
        let pid = self.spawn_app(name, nice, working_set, app);
        self.restartable.insert(
            pid,
            RestartSpec {
                name: name.to_string(),
                nice,
                working_set,
                factory,
            },
        );
        pid
    }

    /// Attaches an end-host fault plan. The inert plan detaches (and
    /// draws no RNG, keeping fault-free runs bit-identical).
    pub fn set_fault_plan(&mut self, plan: &HostFaultPlan) {
        self.fault = if plan.is_none() {
            None
        } else {
            Some(HostFaultState::new(plan))
        };
    }

    /// The latest live incarnation of a (possibly crashed-and-restarted)
    /// process.
    pub fn live_incarnation(&self, mut pid: Pid) -> Pid {
        while let Some(&next) = self.reincarnation.get(&pid) {
            pid = next;
        }
        pid
    }

    /// Executed crashes, `(time, pid)` each.
    pub fn crashes(&self) -> &[(SimTime, Pid)] {
        &self.crash_log
    }

    /// Executed restarts, `(time, old pid, new pid)` each.
    pub fn restarts(&self) -> &[(SimTime, Pid, Pid)] {
        &self.restart_log
    }

    /// Crashes a process *now*: a deterministic kernel teardown. The
    /// process is marked exited first (pending continuations evaporate,
    /// wakeups no-op), then every socket it owns is torn down — NI
    /// channels unmapped with queued frames attributed to the conserved
    /// `owner_dead` ledger bucket, established TCP connections aborted
    /// with an RST per RFC 793, PCB entries and socket slots freed.
    pub fn crash_process(&mut self, now: SimTime, pid: Pid) {
        // Already exited (or never spawned): nothing to tear down. A
        // live process *on the CPU* has no exec entry at all — the
        // continuation travels with its running chunk — so absence of an
        // entry must not be read as "dead"; the apps table is the
        // liveness record (removed only here).
        if matches!(self.exec.get(&pid), Some(ProcExec::Exited)) || !self.apps.contains_key(&pid) {
            return;
        }
        self.exec.insert(pid, ProcExec::Exited);
        self.sched.exit(pid);
        self.apps.remove(&pid);
        self.recv_seq.remove(&pid);
        self.crash_log.push((now, pid));
        let owned: Vec<SockId> = self
            .live_sockets()
            .filter(|s| s.owner == pid)
            .map(|s| s.id)
            .collect();
        for sock in owned {
            // A child may already have been freed by its listener's
            // teardown earlier in this loop.
            if self.sock_opt(sock).is_none() {
                continue;
            }
            self.sock_mut(sock).closed_by_app = true;
            // Unmap the NI channel before protocol teardown: frames
            // still queued there were accepted for a process that no
            // longer exists — `owner_dead`, not `flushed`.
            if let Some(c) = self.sock(sock).chan {
                if self.nic.channel_exists(c) {
                    self.destroy_channel_owner_dead(now, c);
                }
                self.chan_to_sock.remove(&c);
                self.sock_mut(sock).chan = None;
            }
            if self.sock(sock).tcp.is_some() {
                let mut conn = self.sock_mut(sock).tcp.take().expect("checked");
                let actions = conn.abort();
                self.sock_mut(sock).tcp = Some(conn);
                // The Closed event tears the socket down and frees it
                // (closed_by_app is set).
                let _ = self.apply_tcp_actions(now, sock, actions);
            } else {
                self.free_socket(sock);
            }
        }
    }

    /// Respawns a crashed restartable process; returns the new pid.
    pub fn restart_process(&mut self, now: SimTime, old: Pid) -> Option<Pid> {
        let spec = self.restartable.remove(&old)?;
        let app = (spec.factory)();
        let pid = self.spawn_app(&spec.name, spec.nice, spec.working_set, app);
        self.restartable.insert(pid, spec);
        self.reincarnation.insert(old, pid);
        self.restart_log.push((now, old, pid));
        self.kick(now);
        Some(pid)
    }

    /// Whole-host reboot *now* ([`FaultKind::Reboot`]): power fails, the
    /// host comes back `boot_delay` later. Deterministic teardown in a
    /// fixed order:
    ///
    /// 1. The NIC loses power for the whole down window — arriving frames
    ///    die on the device as conserved `nic_stall_drops`.
    /// 2. Frames already accepted but not yet delivered (receive rings,
    ///    NI channels, the shared IP queue) move to the `reboot_flushed`
    ///    ledger bucket; queued TX frames vanish untransmitted.
    /// 3. Every process dies instantly. No RSTs, no FINs — the NIC is
    ///    already off; peers observe the outage through retransmit
    ///    give-up, exactly like a real power cut.
    /// 4. All sockets, PCBs, demux filters, reassembly state and kernel
    ///    timers go cold; per-CPU state is wiped (generation bump cancels
    ///    in-flight completions).
    /// 5. At `now + boot_delay` the kernel daemons are recreated and
    ///    every restartable process respawns as a fresh incarnation.
    pub fn reboot(&mut self, now: SimTime, boot_delay: SimDuration) {
        let boot_at = now + boot_delay;
        // (1) NIC down window, modelled as an injected stall: the device
        // fault machinery already conserves these drops.
        let mut plan = self.nic.faults().clone();
        plan.stall_ns.push((now.as_nanos(), boot_at.as_nanos()));
        self.nic.set_faults(plan);
        // (2) Flush accepted-but-undelivered frames.
        let ring = self.nic.ring_depth() as u64;
        self.tele.on_reboot_flush(now, ring);
        self.nic.set_rx_queues(self.cfg.ncpus);
        for chan in self.nic.channel_ids() {
            self.reboot_flush_channel(now, chan);
        }
        let ipq = self.ip_queue.len() as u64;
        self.ip_queue.clear();
        self.tele.on_reboot_flush(now, ipq);
        let _ = self.nic.ifq_clear();
        self.tele.on_reboot_clear_sidecars();
        // (3) Kill every process, applications first (sorted for
        // determinism), then the kernel daemons.
        let mut pids: Vec<Pid> = self.apps.keys().copied().collect();
        pids.sort_by_key(|p| p.0);
        for pid in pids {
            self.exec.insert(pid, ProcExec::Exited);
            self.sched.exit(pid);
            self.apps.remove(&pid);
            self.crash_log.push((now, pid));
        }
        let daemons = [
            self.app_thread.take(),
            self.idle_thread.take(),
            self.forward_daemon.take(),
        ];
        for t in daemons.into_iter().flatten() {
            self.exec.insert(t, ProcExec::Exited);
            self.sched.exit(t);
        }
        // (4) All sockets go cold — freed directly, no protocol goodbye.
        // The per-socket channels were drained in (2), so the `flushed`
        // bucket gains nothing here.
        let socks: Vec<SockId> = self.live_socks.iter().copied().collect();
        for sock in socks {
            self.free_socket(sock);
        }
        self.reasm = Reassembler::new(16, SimDuration::from_secs(30));
        self.tcp_timer_work.clear();
        self.ed_pending.clear();
        self.sleep_until.clear();
        self.recv_deadlines.clear();
        self.recv_seq = FastHashMap::default();
        self.restart_at.clear();
        self.chan_to_sock = FastHashMap::default();
        self.icmp_sock = None;
        self.last_ran = FastHashMap::default();
        self.pending_charge = None;
        self.rx_scratch.clear();
        for cpu in self.cpus.iter_mut() {
            cpu.gen += 1;
            cpu.running = None;
            cpu.susp_proc = None;
            cpu.susp_soft = None;
            cpu.pending_hw.clear();
            cpu.last_on_cpu = None;
        }
        self.reboot_log.push(now);
        self.boot_at = Some(boot_at);
    }

    /// Boot completion: recreates the kernel daemons exactly as
    /// [`Host::new`] does and respawns every restartable application as a
    /// fresh incarnation.
    fn complete_boot(&mut self, now: SimTime) {
        self.boot_at = None;
        if self.cfg.arch == Architecture::NiLrp {
            let frag = self.nic.fragment_channel;
            self.nic.channel_mut(frag).intr_requested = true;
        }
        if self.cfg.arch.is_lrp() {
            if self.cfg.tcp_app_processing {
                let app = self.sched.spawn_fixed("app-thread", lrp_sched::PUSER);
                self.exec.insert(app, ProcExec::Cont(Cont::AppThreadStep));
                self.sched.set_affinity(app, Some(0));
                self.app_thread = Some(app);
            }
            if self.cfg.idle_thread {
                let idle = self.sched.spawn_fixed("idle-proto", 126);
                self.exec.insert(idle, ProcExec::Cont(Cont::IdleThreadStep));
                self.sched.set_affinity(idle, Some(0));
                self.idle_thread = Some(idle);
            }
            if self.forwarding_enabled {
                let pid = self
                    .sched
                    .spawn("ipfwd", self.forwarding_nice, SimDuration::ZERO);
                self.exec.insert(pid, ProcExec::Cont(Cont::ForwardStep));
                self.sched.set_affinity(pid, Some(0));
                self.forward_daemon = Some(pid);
                // The forward proxy channel belongs to the NIC, not a
                // socket — it survived; only re-arm its interrupt.
                if self.cfg.arch == Architecture::NiLrp {
                    if let Some(chan) = self.nic.proxies().forward {
                        if self.nic.channel_exists(chan) {
                            self.nic.channel_mut(chan).intr_requested = true;
                        }
                    }
                }
            }
        }
        let mut olds: Vec<Pid> = self.restartable.keys().copied().collect();
        olds.sort_by_key(|p| p.0);
        for old in olds {
            self.restart_process(now, old);
        }
    }

    /// Executed whole-host reboots (time of each power cut).
    pub fn reboots(&self) -> &[SimTime] {
        &self.reboot_log
    }

    /// True while the host is powered down awaiting boot completion.
    pub fn is_down(&self) -> bool {
        self.boot_at.is_some()
    }

    /// Starts execution (initial dispatch). Call once after spawning apps.
    pub fn start(&mut self, now: SimTime) {
        self.dispatch(now);
    }

    /// Number of simulated CPUs.
    pub fn ncpus(&self) -> usize {
        self.cpus.len()
    }

    /// The next completion event the world must schedule for `cpu`:
    /// `(time, generation)`.
    pub fn cpu_event_on(&self, cpu: usize) -> Option<(SimTime, u64)> {
        let c = &self.cpus[cpu];
        c.running.as_ref().map(|r| (r.ends, c.gen))
    }

    /// Time `cpu` has spent executing work chunks (for utilization
    /// reports; divide by elapsed simulated time).
    pub fn cpu_busy(&self, cpu: usize) -> SimDuration {
        self.cpus[cpu].busy
    }

    /// The earliest kernel-timer deadline (TCP timers, timed sleeps,
    /// reassembly sweeps).
    pub fn next_timer_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            min = match (min, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        for s in self.live_sockets() {
            // A socket whose timer work is already queued must not keep
            // re-arming the world's timer event (its deadline stays in the
            // past until the protocol context runs the work).
            if self.tcp_timer_work.contains(&s.id) {
                continue;
            }
            if let Some(tcp) = &s.tcp {
                fold(tcp.next_deadline());
            }
        }
        fold(self.sleep_until.keys().next().copied());
        fold(self.recv_deadlines.keys().next().copied());
        fold(self.restart_at.keys().next().copied());
        fold(self.boot_at);
        if let Some(f) = &self.fault {
            fold(f.next_at());
        }
        if self.reasm.pending() > 0 {
            fold(Some(self.next_reasm_sweep));
        }
        min
    }

    /// Total packets the NIC has accepted from the link.
    pub fn rx_frames(&self) -> u64 {
        self.nic.stats().rx_frames
    }

    /// The TCP parameters new connections on this host are created with:
    /// [`HostConfig::tcp`] stamped with the host's congestion-controller
    /// selection ([`HostConfig::tcp_cc`]).
    pub(crate) fn tcp_config(&self) -> lrp_stack::tcp::TcpConfig {
        lrp_stack::tcp::TcpConfig {
            cc: self.cfg.tcp_cc,
            ..self.cfg.tcp
        }
    }

    /// Host-wide TCP counters: closed-connection totals folded at socket
    /// free plus every live connection's current statistics.
    pub fn tcp_totals(&self) -> TcpStats {
        let mut total = self.stats.tcp_closed;
        for s in self.live_sockets() {
            if let Some(conn) = &s.tcp {
                total.absorb(&conn.stats);
            }
        }
        total
    }

    /// Total SYN-cache evictions across live listening sockets (only
    /// non-zero when [`HostConfig::syn_cache`] is on and the backlog
    /// overflowed).
    pub fn syn_cache_evictions(&self) -> u64 {
        self.live_sockets()
            .filter_map(|s| s.listener.as_ref())
            .map(|l| l.syn_cache_evictions)
            .sum()
    }

    /// Total stateless SYN-cookie counters `(sent, validated, rejected)`
    /// across live listening sockets (only non-zero when
    /// [`HostConfig::syn_cookies`] engaged).
    pub fn cookie_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for l in self.live_sockets().filter_map(|s| s.listener.as_ref()) {
            t.0 += l.cookies_sent;
            t.1 += l.cookies_validated;
            t.2 += l.cookies_rejected;
        }
        t
    }

    /// Looks up a socket's owner (None if the socket is gone).
    pub fn socket_owner(&self, sock: SockId) -> Option<Pid> {
        self.sockets
            .get(sock.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.owner)
    }

    pub(crate) fn sock(&self, id: SockId) -> &Socket {
        self.sockets[id.0 as usize].as_ref().expect("live socket")
    }

    pub(crate) fn sock_mut(&mut self, id: SockId) -> &mut Socket {
        self.sockets[id.0 as usize].as_mut().expect("live socket")
    }

    pub(crate) fn sock_opt(&self, id: SockId) -> Option<&Socket> {
        self.sockets.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    pub(crate) fn alloc_sock(&mut self, owner: Pid, proto: SockProto) -> SockId {
        let id = SockId(self.sockets.len() as u32);
        let limit = self.cfg.sockbuf_limit;
        self.live_socks.insert(id);
        self.sockets.push(Some(Socket {
            id,
            owner,
            proto,
            local: None,
            remote: None,
            chan: None,
            rcvq: DatagramQueue::new(limit),
            tcp: None,
            listener: None,
            accept_q: VecDeque::new(),
            parent: None,
            established_reported: false,
            closed_by_app: false,
            chan_reclaimed: false,
            err: None,
            drops_sockbuf: 0,
            drops_channel: 0,
        }));
        id
    }

    /// Receive-side queue depth of a socket: buffered datagrams plus
    /// frames waiting in its NI channel (the `SockDepth` syscall).
    pub(crate) fn sock_depth(&self, sock: SockId) -> usize {
        let Some(s) = self.sock_opt(sock) else {
            return 0;
        };
        let mut depth = s.rcvq.len();
        if let Some(c) = s.chan {
            if self.nic.channel_exists(c) {
                depth += self.nic.channel(c).depth();
            }
        }
        depth
    }

    /// A netstat-style snapshot of one socket (the `SockStats` syscall);
    /// `None` if the socket is gone.
    pub fn sock_stats_of(&self, sock: SockId) -> Option<crate::syscall::SockStats> {
        let s = self.sock_opt(sock)?;
        let chan_depth = match s.chan {
            Some(c) if self.nic.channel_exists(c) => self.nic.channel(c).depth(),
            _ => 0,
        };
        let recv_q = match &s.tcp {
            Some(conn) => conn.available(),
            None => s.rcvq.len(),
        };
        Some(crate::syscall::SockStats {
            sock: s.id,
            proto: s.proto,
            local: s.local.unwrap_or_else(|| Endpoint::new(self.addr, 0)),
            remote: s.remote,
            recv_q,
            chan_depth,
            drops_sockbuf: s.drops_sockbuf,
            drops_channel: s.drops_channel,
            listen: s.listener.as_ref().map(|l| crate::syscall::ListenStats {
                backlog: l.backlog,
                syn_queue: l.syn_queue,
                accept_queue: l.accept_queue,
                half_open: l.half_open.len(),
                syn_drops: l.syn_drops,
                syn_cache_evictions: l.syn_cache_evictions,
                cookies_sent: l.cookies_sent,
                cookies_validated: l.cookies_validated,
                cookies_rejected: l.cookies_rejected,
            }),
            tcp: s.tcp.as_ref().map(|conn| conn.sock_stats()).or_else(|| {
                // A listener has no connection object; report its state
                // machine position anyway.
                s.listener.as_ref().map(|_| {
                    let mut st = lrp_stack::TcpSockStats {
                        state: lrp_stack::TcpState::Listen,
                        srtt_ns: 0,
                        rttvar_ns: 0,
                        rto_ns: 0,
                        retries: 0,
                        cwnd: 0,
                        ssthresh: 0,
                        snd_q: 0,
                        rcv_q: 0,
                        retransmits: 0,
                        fast_retransmits: 0,
                        timeouts: 0,
                        dup_acks: 0,
                    };
                    st.rcv_q = s.accept_q.len() as u64;
                    st
                })
            }),
        })
    }

    /// The whole-host netstat dump: a [`SockStats`](crate::SockStats)
    /// snapshot for every live socket, in socket-id order.
    pub fn host_netstat(&self) -> Vec<crate::syscall::SockStats> {
        self.live_socks
            .iter()
            .filter_map(|&id| self.sock_stats_of(id))
            .collect()
    }

    /// Replaces the telemetry state with a fresh one, enabled or not
    /// (bench harness: measure the same world with telemetry on vs. off).
    /// Call before running the world — recorded state is discarded.
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.tele = crate::telemetry::Telemetry::new(enabled);
        self.tele
            .set_span_tag((1u64 << 63) | ((self.addr.octets()[3] as u64) << 48));
    }

    /// Iterates live sockets (allocation order).
    pub(crate) fn live_sockets(&self) -> impl Iterator<Item = &Socket> + '_ {
        self.live_socks
            .iter()
            .filter_map(|id| self.sockets[id.0 as usize].as_ref())
    }

    /// Records that `chan` now belongs to `sock`.
    pub(crate) fn bind_channel(&mut self, chan: lrp_demux::ChannelId, sock: SockId) {
        self.chan_to_sock.insert(chan, sock);
    }

    pub(crate) fn next_iss(&mut self) -> u32 {
        self.iss = self.iss.wrapping_add(64_009);
        self.iss
    }

    pub(crate) fn next_ident(&mut self) -> u16 {
        self.ip_ident = self.ip_ident.wrapping_add(1);
        self.ip_ident
    }

    pub(crate) fn next_ephemeral(&mut self) -> u16 {
        // Skip ports until one is free (bounded by max sockets).
        loop {
            let p = self.ephemeral_port;
            self.ephemeral_port = if p >= 65_000 { 40_000 } else { p + 1 };
            let probe = Endpoint::new(self.addr, p);
            let udp_free = !self
                .pcb
                .contains(&lrp_wire::FlowKey::listening(lrp_wire::proto::UDP, probe));
            let tcp_free = !self
                .pcb
                .contains(&lrp_wire::FlowKey::listening(lrp_wire::proto::TCP, probe));
            if udp_free && tcp_free {
                return p;
            }
        }
    }

    /// Enables IP forwarding. Under the LRP architectures this spawns the
    /// forwarding daemon of §3.5 at the given niceness — its scheduling
    /// priority bounds the CPU spent on forwarding. Under BSD/Early-Demux,
    /// forwarding runs eagerly in software-interrupt context.
    pub fn enable_forwarding(&mut self, nice: i8) {
        self.forwarding_enabled = true;
        self.forwarding_nice = nice;
        if self.cfg.arch.is_lrp() {
            let pid = self.sched.spawn("ipfwd", nice, SimDuration::ZERO);
            self.exec.insert(pid, ProcExec::Cont(Cont::ForwardStep));
            self.sched.set_affinity(pid, Some(0));
            self.forward_daemon = Some(pid);
            let chan = self.nic.create_default_channel();
            self.nic.set_forward_proxy(chan);
            if self.cfg.arch == Architecture::NiLrp {
                self.nic.channel_mut(chan).intr_requested = true;
            }
        }
    }

    /// Statclock tick: drives decay (1 Hz) and preemption checks. The
    /// clock interrupt is wired to CPU 0 (the boot CPU).
    pub fn on_tick(&mut self, now: SimTime) {
        self.cur_cpu = 0;
        self.ticks += 1;
        self.sample_timeline(now);
        if self.ticks.is_multiple_of(100) {
            self.sched.decay();
            if let Some(t) = self.app_thread {
                self.update_app_thread_pri(t);
            }
            self.maybe_preempt_running(now);
        }
    }

    /// Kernel timer service: fires due TCP timers (queued as protocol
    /// work), timed sleeps, and reassembly expiry.
    pub fn on_timer(&mut self, now: SimTime) {
        // Kernel timers fire on the boot CPU.
        self.cur_cpu = 0;
        // Boot completion first: a rebooting host has no other live
        // timers, and anything due at the same instant should see the
        // freshly booted kernel.
        if self.boot_at.is_some_and(|b| b <= now) {
            self.complete_boot(now);
        }
        // Timed sleeps.
        let due: Vec<SimTime> = self.sleep_until.range(..=now).map(|(t, _)| *t).collect();
        for t in due {
            if let Some(pids) = self.sleep_until.remove(&t) {
                for pid in pids {
                    let wc = WaitChannel(0xFFFF_0000 + pid.0 as u64);
                    for w in self.sched.wakeup(wc) {
                        self.unblock(w);
                    }
                }
            }
        }
        // TCP timers: queue protocol work for due connections.
        let mut due_socks = Vec::new();
        for s in self.live_sockets() {
            if let Some(tcp) = &s.tcp {
                if tcp.next_deadline().is_some_and(|d| d <= now) {
                    due_socks.push(s.id);
                }
            }
        }
        for id in due_socks {
            if !self.tcp_timer_work.contains(&id) {
                self.tcp_timer_work.push_back(id);
            }
        }
        if !self.tcp_timer_work.is_empty() && self.cfg.arch.is_lrp() {
            self.wake_app_thread();
        }
        // BSD/ED: the work is picked up by the softirq scan in
        // dispatch.
        // Reassembly expiry sweep. Host statistics count the fragment
        // frames discarded, and the ledger re-attributes them from the
        // absorbed bucket to the expired bucket.
        if now >= self.next_reasm_sweep {
            let before = self.reasm.stats().expired_frags;
            self.reasm.expire(now);
            let frags = self.reasm.stats().expired_frags - before;
            for _ in 0..frags {
                self.stats.drop_at(DropPoint::Reasm);
            }
            self.tele.on_reasm_expired(now, frags);
            self.next_reasm_sweep = now + SimDuration::from_secs(1);
        }
        // Receive timeouts: fire only if the armed deadline is still
        // current (seq token) and the process is still blocked in that
        // very receive — a deadline outlived by its receive is inert.
        let due: Vec<SimTime> = self.recv_deadlines.range(..=now).map(|(t, _)| *t).collect();
        for t in due {
            if let Some(entries) = self.recv_deadlines.remove(&t) {
                for (pid, sock, seq) in entries {
                    if self.recv_seq.get(&pid) != Some(&seq) {
                        continue;
                    }
                    let blocked_here = matches!(
                        self.exec.get(&pid),
                        Some(ProcExec::Blocked(Cont::RecvCheck { sock: s, .. })) if *s == sock
                    );
                    if !blocked_here {
                        continue;
                    }
                    self.recv_seq.remove(&pid);
                    if self.sched.wake_one(pid) {
                        self.exec.insert(
                            pid,
                            ProcExec::Cont(Cont::SyscallReturn(SyscallRet::Err(Errno::TimedOut))),
                        );
                        self.post_ipi(pid);
                    }
                }
            }
        }
        // End-host fault plan: scheduled restarts, then due crashes.
        let due_restarts: Vec<SimTime> = self.restart_at.range(..=now).map(|(t, _)| *t).collect();
        for t in due_restarts {
            if let Some(pids) = self.restart_at.remove(&t) {
                for pid in pids {
                    self.restart_process(now, pid);
                }
            }
        }
        while let Some(at) = self.fault.as_ref().and_then(|f| f.next_at()) {
            if at > now {
                break;
            }
            let ev = self
                .fault
                .as_mut()
                .expect("checked")
                .pending
                .pop()
                .expect("due event");
            match ev.kind {
                FaultKind::Reboot => {
                    // `restart_after` is the boot delay; a plan that
                    // somehow omits it gets a conventional 50 ms cold
                    // boot rather than a host that never returns.
                    let delay = ev.restart_after.unwrap_or(SimDuration::from_millis(50));
                    self.reboot(now, delay);
                }
                FaultKind::Process => {
                    let target = self.live_incarnation(ev.pid);
                    self.crash_process(now, target);
                    if let Some(after) = ev.restart_after {
                        let jitter = if ev.restart_jitter.is_zero() {
                            SimDuration::ZERO
                        } else {
                            let f = self.fault.as_mut().expect("checked");
                            SimDuration::from_nanos(f.rng.next_below(ev.restart_jitter.as_nanos()))
                        };
                        self.restart_at
                            .entry(now + after + jitter)
                            .or_default()
                            .push(target);
                    }
                }
            }
        }
        self.kick(now);
    }

    /// Transitions a woken process from `Blocked` to its continuation.
    /// If the process is homed on another CPU, delivering the wakeup
    /// costs an IPI on that CPU (SMP only).
    pub(crate) fn unblock(&mut self, pid: Pid) {
        if let Some(ex) = self.exec.get_mut(&pid) {
            if let ProcExec::Blocked(cont) = ex {
                let c = cont.clone();
                *ex = ProcExec::Cont(c);
                self.post_ipi(pid);
            }
        }
    }

    /// Posts an inter-processor interrupt to `pid`'s home CPU when the
    /// wakeup originates on a different CPU. The IPI's cost is charged on
    /// the target like any hardware interrupt (BSD policy: to whoever
    /// happens to run there). No-op on a uniprocessor.
    fn post_ipi(&mut self, pid: Pid) {
        if self.cpus.len() <= 1 {
            return;
        }
        let home = self.sched.proc_ref(pid).home_cpu;
        if home == self.cur_cpu {
            return;
        }
        let victim = self.current_proc_context_on(home);
        let cost = self.cfg.cost.ipi;
        self.cpus[home].pending_hw.push_back((cost, victim, "ipi"));
        self.stats.ipis += 1;
    }

    /// Wakes the APP kernel thread if sleeping.
    pub(crate) fn wake_app_thread(&mut self) {
        if let Some(t) = self.app_thread {
            self.update_app_thread_pri(t);
            for w in self.sched.wakeup(WC_APP_THREAD) {
                self.unblock(w);
            }
        }
    }

    /// Pins the APP thread's priority to the best (numerically lowest)
    /// priority among owners of sockets with pending TCP work (§3.4).
    pub(crate) fn update_app_thread_pri(&mut self, thread: Pid) {
        let mut best = lrp_sched::PRI_MAX;
        let mut any = false;
        for s in self.live_sockets() {
            if s.proto != SockProto::Tcp {
                continue;
            }
            let pending = s
                .chan
                .filter(|&c| self.nic.channel_exists(c))
                .is_some_and(|c| !self.nic.channel(c).is_empty())
                || self.tcp_timer_work.contains(&s.id);
            if pending {
                any = true;
                best = best.min(self.sched.proc_ref(s.owner).user_pri);
            }
        }
        let pri = if any { best } else { lrp_sched::PUSER };
        self.sched.set_fixed_pri(thread, Some(pri));
    }
}
