//! The system-call phase machine: decomposes each operation into
//! cost-bearing kernel phases, with architecture-specific receive paths.

use super::{sock_wchan, Cont, Host, PhaseOut, WC_ACCEPT, WC_CONNECT, WC_RECV, WC_SEND};
use crate::config::Architecture;
use crate::host::proto::ProtoCtx;
use crate::syscall::{AppCtx, Errno, SockProto, SyscallOp, SyscallRet};
use lrp_sched::{Account, Pid, WaitChannel, PPAUSE, PSOCK};
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::tcp::{TcpConn, TcpListener, TcpState};
use lrp_stack::SockId;
use lrp_wire::{proto, udp, Endpoint, FlowKey};
use std::rc::Rc;

impl Host {
    /// Executes one kernel phase for `pid`: applies its logic and reports
    /// the CPU to burn and what comes next.
    pub(crate) fn exec_phase(&mut self, now: SimTime, pid: Pid, cont: Cont) -> PhaseOut {
        let cost = self.cfg.cost;
        match cont {
            Cont::AppNext(ret) => {
                let ctx = AppCtx { now, pid };
                let op = self
                    .apps
                    .get_mut(&pid)
                    .expect("app for process")
                    .resume(ctx, ret);
                PhaseOut::Run {
                    dur: SimDuration::ZERO,
                    account: Account::System,
                    next: Cont::SyscallEntry(Box::new(op)),
                }
            }
            Cont::SyscallEntry(op) => self.begin_op(now, pid, *op),
            Cont::SyscallReturn(ret) => {
                self.sched.return_to_user(pid);
                PhaseOut::Run {
                    dur: cost.syscall_return,
                    account: Account::System,
                    next: Cont::AppNext(ret),
                }
            }
            Cont::ComputeSlice(remaining) => {
                let slice = remaining.min(self.cfg.quantum);
                let left = remaining - slice;
                let next = if left.is_zero() {
                    Cont::AppNext(SyscallRet::Ok)
                } else {
                    Cont::ComputeMore(left)
                };
                PhaseOut::Run {
                    dur: slice,
                    account: Account::User,
                    next,
                }
            }
            Cont::ComputeMore(remaining) => {
                // Round-robin at the quantum boundary: give the CPU away
                // if a process of equal or better priority is queued on
                // this CPU's run queue.
                let my_bucket = self.sched.proc_ref(pid).effective_pri() & !3u8;
                let others = self
                    .sched
                    .best_queued_pri_on(self.cur_cpu)
                    .is_some_and(|b| b <= my_bucket);
                if others {
                    PhaseOut::Yield(Cont::ComputeSlice(remaining))
                } else {
                    PhaseOut::Run {
                        dur: SimDuration::ZERO,
                        account: Account::User,
                        next: Cont::ComputeSlice(remaining),
                    }
                }
            }
            Cont::RecvCheck { sock, max_len } => self.phase_recv_check(now, pid, sock, max_len),
            Cont::TcpSend { sock, data, off } => self.phase_tcp_send(now, pid, sock, data, off),
            Cont::AcceptCheck { sock } => self.phase_accept(now, pid, sock),
            Cont::ConnectCheck { sock } => self.phase_connect_check(now, pid, sock),
            Cont::AppThreadStep => match self.app_thread_step(now) {
                Some((dur, owner)) => {
                    // Charge to the owning application (§3.4); the chunk's
                    // charge target is overridden below via a trick: we
                    // run the APP thread chunk but account to the owner.
                    self.charge_override(pid, owner);
                    PhaseOut::Run {
                        dur,
                        account: Account::System,
                        next: Cont::AppThreadStep,
                    }
                }
                None => {
                    self.charge_override(pid, pid);
                    // Request NI interrupts for all TCP channels before
                    // sleeping (demand interrupts).
                    let tcp_socks: Vec<SockId> = self
                        .live_sockets()
                        .filter(|s| s.proto == SockProto::Tcp)
                        .map(|s| s.id)
                        .collect();
                    for s in tcp_socks {
                        self.request_channel_interrupt(s);
                    }
                    PhaseOut::Block {
                        wchan: super::WC_APP_THREAD,
                        pri: lrp_sched::PSOCK,
                        resume: Cont::AppThreadStep,
                    }
                }
            },
            Cont::ForwardStep => match self.forward_step(now) {
                Some(dur) => PhaseOut::Run {
                    dur,
                    account: Account::System,
                    next: Cont::ForwardStep,
                },
                None => {
                    if self.cfg.arch == Architecture::NiLrp {
                        if let Some(chan) = self.nic.proxies().forward {
                            if self.nic.channel_exists(chan) {
                                self.nic.channel_mut(chan).intr_requested = true;
                            }
                        }
                    }
                    PhaseOut::Block {
                        wchan: super::WC_FORWARD,
                        pri: PSOCK,
                        resume: Cont::ForwardStep,
                    }
                }
            },
            Cont::IdleThreadStep => match self.idle_thread_step(now) {
                Some((dur, owner)) => {
                    self.charge_override(pid, owner);
                    PhaseOut::Run {
                        dur,
                        account: Account::System,
                        next: Cont::IdleThreadStep,
                    }
                }
                None => {
                    self.charge_override(pid, pid);
                    PhaseOut::Block {
                        wchan: super::WC_IDLE_THREAD,
                        pri: 126,
                        resume: Cont::IdleThreadStep,
                    }
                }
            },
        }
    }

    /// Begins a system call: pays the entry cost and routes to the first
    /// phase.
    fn begin_op(&mut self, now: SimTime, pid: Pid, op: SyscallOp) -> PhaseOut {
        let cost = self.cfg.cost;
        let entry = cost.syscall_entry;
        match op {
            SyscallOp::Compute(d) => PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::User,
                next: Cont::ComputeSlice(d),
            },
            SyscallOp::Exit => PhaseOut::Done,
            SyscallOp::Sleep(d) => {
                let wake_at = now + d;
                self.sleep_until.entry(wake_at).or_default().push(pid);
                PhaseOut::Block {
                    wchan: WaitChannel(0xFFFF_0000 + pid.0 as u64),
                    pri: PPAUSE,
                    resume: Cont::SyscallReturn(SyscallRet::Ok),
                }
            }
            SyscallOp::Socket(p) => {
                let sock = self.alloc_sock(pid, p);
                PhaseOut::Run {
                    dur: entry + cost.accept_sock,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Socket(sock)),
                }
            }
            SyscallOp::Bind { sock, port } => {
                let ret = self.do_bind(sock, port);
                PhaseOut::Run {
                    dur: entry + cost.accept_sock,
                    account: Account::System,
                    next: Cont::SyscallReturn(ret),
                }
            }
            SyscallOp::Listen { sock, backlog } => {
                let ret = self.do_listen(sock, backlog);
                PhaseOut::Run {
                    dur: entry + cost.accept_sock,
                    account: Account::System,
                    next: Cont::SyscallReturn(ret),
                }
            }
            SyscallOp::Connect { sock, dst } => self.do_connect(now, pid, sock, dst, entry),
            SyscallOp::Accept { sock } => PhaseOut::Run {
                dur: entry,
                account: Account::System,
                next: Cont::AcceptCheck { sock },
            },
            SyscallOp::SendTo { sock, dst, data } => {
                let (dur, ret) = self.do_udp_send(now, sock, dst, &data);
                PhaseOut::Run {
                    dur: entry + dur,
                    account: Account::System,
                    next: Cont::SyscallReturn(ret),
                }
            }
            SyscallOp::Send { sock, data } => {
                if self.sock_opt(sock).and_then(|s| s.tcp.as_ref()).is_none() {
                    // Connected UDP socket: send to the default remote.
                    if let Some(dst) = self.sock_opt(sock).and_then(|s| s.remote) {
                        let (dur, ret) = self.do_udp_send(now, sock, dst, &data);
                        return PhaseOut::Run {
                            dur: entry + dur,
                            account: Account::System,
                            next: Cont::SyscallReturn(ret),
                        };
                    }
                    return PhaseOut::Run {
                        dur: entry,
                        account: Account::System,
                        next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
                    };
                }
                PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::TcpSend {
                        sock,
                        data: Rc::new(data),
                        off: 0,
                    },
                }
            }
            SyscallOp::Recv { sock, max_len } => {
                // A plain receive invalidates any armed receive timeout.
                self.recv_seq.remove(&pid);
                PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::RecvCheck { sock, max_len },
                }
            }
            SyscallOp::RecvTimeout {
                sock,
                max_len,
                timeout,
            } => {
                // Arm a kernel timer for this receive. The seq token ties
                // the deadline to *this* arm: a deadline that outlives its
                // receive (data arrived first) is inert when it fires.
                self.recv_deadline_seq += 1;
                let seq = self.recv_deadline_seq;
                self.recv_seq.insert(pid, seq);
                self.recv_deadlines
                    .entry(now + timeout)
                    .or_default()
                    .push((pid, sock, seq));
                PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::RecvCheck { sock, max_len },
                }
            }
            SyscallOp::SockDepth { sock } => {
                let depth = self.sock_depth(sock);
                PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Depth(depth)),
                }
            }
            SyscallOp::SockStats { sock } => {
                let ret = match self.sock_stats_of(sock) {
                    Some(st) => SyscallRet::Stats(Box::new(st)),
                    None => SyscallRet::Err(Errno::Invalid),
                };
                PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::SyscallReturn(ret),
                }
            }
            SyscallOp::Close { sock } => {
                let dur = self.do_close(now, sock);
                PhaseOut::Run {
                    dur: entry + dur,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Ok),
                }
            }
        }
    }

    fn do_bind(&mut self, sock: SockId, port: u16) -> SyscallRet {
        let Some(s) = self.sock_opt(sock) else {
            return SyscallRet::Err(Errno::Invalid);
        };
        let ip_proto = match s.proto {
            SockProto::Udp => proto::UDP,
            SockProto::Tcp => proto::TCP,
            SockProto::Icmp => {
                // Raw ICMP proxy socket (§3.5): no PCB entry; all ICMP
                // traffic routes to its channel / queue.
                let local = Endpoint::new(self.addr, 0);
                self.sock_mut(sock).local = Some(local);
                if self.cfg.arch != Architecture::Bsd {
                    let chan = self.nic.create_default_channel();
                    self.sock_mut(sock).chan = Some(chan);
                    self.bind_channel(chan, sock);
                    self.nic.set_icmp_proxy(chan);
                }
                self.icmp_sock = Some(sock);
                return SyscallRet::Ok;
            }
        };
        let local = Endpoint::new(self.addr, port);
        let key = FlowKey::listening(ip_proto, local);
        if self.pcb.insert(key, sock).is_err() {
            return SyscallRet::Err(Errno::AddrInUse);
        }
        self.sock_mut(sock).local = Some(local);
        // LRP / Early-Demux: binding creates the NI channel and installs
        // the demux filter (§3.1).
        if self.cfg.arch != Architecture::Bsd {
            let chan = self.nic.create_default_channel();
            self.sock_mut(sock).chan = Some(chan);
            self.bind_channel(chan, sock);
            if self.nic.demux.register(key, chan).is_err() {
                return SyscallRet::Err(Errno::NoBufs);
            }
            // TCP channels are drained by the APP thread, which may be
            // asleep right now: arm the demand interrupt from the start.
            if ip_proto == proto::TCP {
                self.nic.channel_mut(chan).intr_requested = true;
            }
        }
        SyscallRet::Ok
    }

    fn do_listen(&mut self, sock: SockId, backlog: usize) -> SyscallRet {
        let Some(s) = self.sock_opt(sock) else {
            return SyscallRet::Err(Errno::Invalid);
        };
        let Some(local) = s.local else {
            return SyscallRet::Err(Errno::Invalid);
        };
        if s.proto != SockProto::Tcp {
            return SyscallRet::Err(Errno::Invalid);
        }
        self.sock_mut(sock).listener = Some(TcpListener::new(local, backlog));
        SyscallRet::Ok
    }

    fn do_connect(
        &mut self,
        now: SimTime,
        _pid: Pid,
        sock: SockId,
        dst: Endpoint,
        entry: SimDuration,
    ) -> PhaseOut {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return PhaseOut::Run {
                dur: entry,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
            };
        };
        let sproto = s.proto;
        // Implicit bind to an ephemeral port.
        if self.sock(sock).local.is_none() {
            let port = self.next_ephemeral();
            let r = self.do_bind(sock, port);
            if r != SyscallRet::Ok {
                return PhaseOut::Run {
                    dur: entry,
                    account: Account::System,
                    next: Cont::SyscallReturn(r),
                };
            }
        }
        let local = self.sock(sock).local.expect("bound above");
        self.sock_mut(sock).remote = Some(dst);
        match sproto {
            SockProto::Udp | SockProto::Icmp => {
                // Connected datagram/raw socket: remember the default
                // destination.
                PhaseOut::Run {
                    dur: entry + cost.accept_sock,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Ok),
                }
            }
            SockProto::Tcp => {
                let ip_proto = proto::TCP;
                let key = FlowKey::new(ip_proto, local, dst);
                let _ = self.pcb.insert(key, sock);
                if self.cfg.arch != Architecture::Bsd {
                    // The connected socket's channel gets an exact filter.
                    if let Some(chan) = self.sock(sock).chan {
                        let _ = self.nic.demux.register(key, chan);
                    }
                }
                let iss = self.next_iss();
                let mut conn = TcpConn::new(self.tcp_config(), local, dst, iss);
                let actions = conn.connect(now);
                self.sock_mut(sock).tcp = Some(conn);
                let tx = self.tx_segments(sock, &actions.segments);
                PhaseOut::Run {
                    dur: entry + cost.tcp_output + tx,
                    account: Account::System,
                    next: Cont::ConnectCheck { sock },
                }
            }
        }
    }

    fn phase_connect_check(&mut self, _now: SimTime, _pid: Pid, sock: SockId) -> PhaseOut {
        // Ablation A4: without the APP thread, handshake segments are
        // processed lazily in the blocked connect call.
        if self.cfg.arch.is_lrp() && !self.cfg.tcp_app_processing {
            if let Some(chan) = self.sock_opt(sock).and_then(|s| s.chan) {
                if self.nic.channel_exists(chan) {
                    if let Some(frame) = self.chan_dequeue(_now, chan) {
                        let dur = self.ip_deliver(_now, frame, ProtoCtx::Lrp { sock, lazy: true });
                        return PhaseOut::Run {
                            dur,
                            account: Account::System,
                            next: Cont::ConnectCheck { sock },
                        };
                    }
                }
            }
        }
        let Some(s) = self.sock_opt(sock) else {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::ConnReset)),
            };
        };
        match s.tcp.as_ref().map(|t| t.state) {
            Some(TcpState::Established)
            | Some(TcpState::FinWait1)
            | Some(TcpState::FinWait2)
            | Some(TcpState::CloseWait) => PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Ok),
            },
            Some(TcpState::Closed) | None => {
                let e = self.sock(sock).err.unwrap_or(Errno::ConnRefused);
                PhaseOut::Run {
                    dur: SimDuration::ZERO,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Err(e)),
                }
            }
            _ => PhaseOut::Block {
                wchan: sock_wchan(sock, WC_CONNECT),
                pri: PSOCK,
                resume: Cont::ConnectCheck { sock },
            },
        }
    }

    fn do_udp_send(
        &mut self,
        now: SimTime,
        sock: SockId,
        dst: Endpoint,
        data: &[u8],
    ) -> (SimDuration, SyscallRet) {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return (SimDuration::ZERO, SyscallRet::Err(Errno::Invalid));
        };
        if s.proto == SockProto::Icmp {
            return self.do_icmp_send(dst, data);
        }
        if s.proto != SockProto::Udp {
            return (SimDuration::ZERO, SyscallRet::Err(Errno::Invalid));
        }
        // Implicit bind.
        if self.sock(sock).local.is_none() {
            let port = self.next_ephemeral();
            let r = self.do_bind(sock, port);
            if r != SyscallRet::Ok {
                return (SimDuration::ZERO, r);
            }
        }
        let local = self.sock(sock).local.expect("bound");
        let ident = self.next_ident();
        let seg = udp::build(
            local.addr,
            dst.addr,
            local.port,
            dst.port,
            data,
            self.cfg.udp_checksum,
        );
        let frames =
            lrp_wire::ipv4::fragment(local.addr, dst.addr, proto::UDP, ident, &seg, self.cfg.mtu);
        let nfrags = frames.len() as u64;
        let mut dur = cost.copy(data.len()) + cost.udp_output;
        if self.cfg.udp_checksum {
            dur += cost.csum(data.len());
        }
        dur += (cost.ip_output + cost.driver_tx_per_pkt) * nfrags;
        // Causal trace: the reply continues the span of the request this
        // process most recently received (or mints a fresh one).
        let owner = self.sock(sock).owner;
        let cpu = self.cur_cpu;
        let span = self.tele.on_tx(now, cpu, owner.0);
        let mut dropped = false;
        for f in frames {
            if !self.ifq_enqueue_spanned(lrp_wire::Frame::ipv4(f), span) {
                self.stats.drop_at(super::DropPoint::IfQueue);
                dropped = true;
            }
        }
        let ret = if dropped {
            SyscallRet::Err(Errno::NoBufs)
        } else {
            SyscallRet::Sent(data.len())
        };
        (dur, ret)
    }

    /// Sends a raw ICMP message (the payload is the complete ICMP
    /// message bytes) to `dst`.
    fn do_icmp_send(&mut self, dst: Endpoint, data: &[u8]) -> (SimDuration, SyscallRet) {
        let cost = self.cfg.cost;
        let ident = self.next_ident();
        let frames =
            lrp_wire::ipv4::fragment(self.addr, dst.addr, proto::ICMP, ident, data, self.cfg.mtu);
        let nfrags = frames.len() as u64;
        let dur = cost.copy(data.len())
            + cost.udp_output
            + (cost.ip_output + cost.driver_tx_per_pkt) * nfrags;
        let mut dropped = false;
        for f in frames {
            if !self.ifq_enqueue_spanned(lrp_wire::Frame::ipv4(f), None) {
                self.stats.drop_at(super::DropPoint::IfQueue);
                dropped = true;
            }
        }
        let ret = if dropped {
            SyscallRet::Err(Errno::NoBufs)
        } else {
            SyscallRet::Sent(data.len())
        };
        (dur, ret)
    }

    /// The receive phase: delivers ready data, lazily processes raw
    /// channel packets (LRP), or blocks.
    fn phase_recv_check(
        &mut self,
        now: SimTime,
        _pid: Pid,
        sock: SockId,
        max_len: usize,
    ) -> PhaseOut {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
            };
        };
        let is_tcp = s.tcp.is_some();
        if is_tcp {
            return self.phase_tcp_recv(now, sock, max_len);
        }
        // UDP: ready data first.
        if !self.sock(sock).rcvq.is_empty() {
            let d = self.sock_mut(sock).rcvq.dequeue().expect("checked");
            let n = d.payload.len().min(max_len);
            let dur = cost.sock_dequeue + cost.copy(n);
            let cpu = self.cur_cpu;
            let owner = self.sock(sock).owner;
            self.tele.on_recv(now, cpu, sock.0 as u64, owner.0);
            // A user buffer smaller than the datagram truncates it (copy);
            // the common full-size receive hands the buffer over as-is.
            let payload = if n < d.payload.len() {
                lrp_wire::FrameBuf::from(&d.payload[..n])
            } else {
                d.payload
            };
            return PhaseOut::Run {
                dur,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::DataFrom(d.from, payload)),
            };
        }
        // LRP: lazily process one raw packet from the NI channel.
        if self.cfg.arch.is_lrp() {
            if let Some(chan) = self.sock(sock).chan {
                if self.nic.channel_exists(chan) {
                    if let Some(frame) = self.chan_dequeue(now, chan) {
                        let dur = self.ip_deliver(now, frame, ProtoCtx::Lrp { sock, lazy: true });
                        return PhaseOut::Run {
                            dur,
                            account: Account::System,
                            next: Cont::RecvCheck { sock, max_len },
                        };
                    }
                }
            }
            // Misordered fragments may be parked on the special fragment
            // channel (§3.2): reassemble and route them before sleeping.
            if !self.nic.channel(self.nic.fragment_channel).is_empty() {
                let dur = self.pump_fragment_channel(now);
                return PhaseOut::Run {
                    dur: dur.max(SimDuration::from_nanos(1)),
                    account: Account::System,
                    next: Cont::RecvCheck { sock, max_len },
                };
            }
            // Ask the NI to interrupt when the channel goes non-empty.
            self.request_channel_interrupt(sock);
        }
        PhaseOut::Block {
            wchan: sock_wchan(sock, WC_RECV),
            pri: PSOCK,
            resume: Cont::RecvCheck { sock, max_len },
        }
    }

    fn phase_tcp_recv(&mut self, now: SimTime, sock: SockId, max_len: usize) -> PhaseOut {
        let cost = self.cfg.cost;
        // Ablation A4: without the APP thread, TCP receiver processing
        // happens only here, in the receive call (§3.4's rejected design).
        if self.cfg.arch.is_lrp() && !self.cfg.tcp_app_processing {
            if let Some(chan) = self.sock(sock).chan {
                if self.nic.channel_exists(chan) {
                    if let Some(frame) = self.chan_dequeue(now, chan) {
                        let dur = self.ip_deliver(now, frame, ProtoCtx::Lrp { sock, lazy: true });
                        return PhaseOut::Run {
                            dur,
                            account: Account::System,
                            next: Cont::RecvCheck { sock, max_len },
                        };
                    }
                }
            }
        }
        let conn = self.sock(sock).tcp.as_ref().expect("tcp socket");
        if conn.available() > 0 {
            let mut conn = self.sock_mut(sock).tcp.take().expect("tcp");
            let (data, actions) = conn.read(max_len);
            self.sock_mut(sock).tcp = Some(conn);
            let n = data.len();
            let tx = self.tx_segments(sock, &actions.segments);
            self.stats.tcp_delivered_bytes += n as u64;
            let cpu = self.cur_cpu;
            let owner = self.sock(sock).owner;
            self.tele.on_recv(now, cpu, sock.0 as u64, owner.0);
            return PhaseOut::Run {
                dur: cost.sock_dequeue + cost.copy(n) + tx,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Data(data)),
            };
        }
        // A dead connection reports *why* it died (RST, retransmit
        // give-up, keepalive abort) — after any buffered data has been
        // drained above, and before the orderly-EOF path below can
        // mistake an abort for end-of-stream.
        if let Some(e) = self.sock(sock).err {
            return PhaseOut::Run {
                dur: cost.sock_dequeue,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(e)),
            };
        }
        // End of stream or dead connection?
        let state = self.sock(sock).tcp.as_ref().expect("tcp").state;
        match state {
            TcpState::CloseWait
            | TcpState::Closing
            | TcpState::LastAck
            | TcpState::TimeWait
            | TcpState::Closed => PhaseOut::Run {
                dur: cost.sock_dequeue,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Data(Vec::new())),
            },
            _ => PhaseOut::Block {
                wchan: sock_wchan(sock, WC_RECV),
                pri: PSOCK,
                resume: Cont::RecvCheck { sock, max_len },
            },
        }
    }

    fn phase_tcp_send(
        &mut self,
        now: SimTime,
        _pid: Pid,
        sock: SockId,
        data: Rc<Vec<u8>>,
        off: usize,
    ) -> PhaseOut {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::ConnReset)),
            };
        };
        let Some(state) = s.tcp.as_ref().map(|t| t.state) else {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
            };
        };
        match state {
            TcpState::Established | TcpState::CloseWait => {}
            TcpState::Closed | TcpState::TimeWait => {
                let e = self.sock(sock).err.unwrap_or(Errno::ConnReset);
                return PhaseOut::Run {
                    dur: SimDuration::ZERO,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Err(e)),
                };
            }
            _ => {
                return PhaseOut::Block {
                    wchan: sock_wchan(sock, WC_SEND),
                    pri: PSOCK,
                    resume: Cont::TcpSend { sock, data, off },
                };
            }
        }
        // Ablation A4: without the APP thread, ACKs are processed lazily
        // in the send call too (any-socket-syscall processing); otherwise
        // a window-stalled sender would deadlock with its peer.
        if self.cfg.arch.is_lrp()
            && !self.cfg.tcp_app_processing
            && self
                .sock(sock)
                .tcp
                .as_ref()
                .is_some_and(|t| t.send_space() == 0)
        {
            if let Some(chan) = self.sock(sock).chan {
                if self.nic.channel_exists(chan) {
                    if let Some(frame) = self.chan_dequeue(now, chan) {
                        let dur = self.ip_deliver(now, frame, ProtoCtx::Lrp { sock, lazy: true });
                        return PhaseOut::Run {
                            dur,
                            account: Account::System,
                            next: Cont::TcpSend { sock, data, off },
                        };
                    }
                }
            }
        }
        let mut conn = self.sock_mut(sock).tcp.take().expect("tcp");
        let (n, actions) = conn.write(now, &data[off..]);
        let nsegs = actions.segments.len() as u64;
        self.sock_mut(sock).tcp = Some(conn);
        let tx = self.apply_tcp_actions(now, sock, actions);
        let dur = cost.copy(n) + cost.tcp_output * nsegs.min(1) + tx;
        let new_off = off + n;
        if new_off >= data.len() {
            let total = data.len();
            PhaseOut::Run {
                dur,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Sent(total)),
            }
        } else if n > 0 {
            PhaseOut::Run {
                dur,
                account: Account::System,
                next: Cont::TcpSend {
                    sock,
                    data,
                    off: new_off,
                },
            }
        } else {
            PhaseOut::Block {
                wchan: sock_wchan(sock, WC_SEND),
                pri: PSOCK,
                resume: Cont::TcpSend { sock, data, off },
            }
        }
    }

    fn phase_accept(&mut self, _now: SimTime, _pid: Pid, sock: SockId) -> PhaseOut {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
            };
        };
        if s.listener.is_none() {
            return PhaseOut::Run {
                dur: SimDuration::ZERO,
                account: Account::System,
                next: Cont::SyscallReturn(SyscallRet::Err(Errno::Invalid)),
            };
        }
        // Ablation A4: without the APP thread, handshake processing (the
        // SYN on the listener's channel, the final ACK on an embryonic
        // child's channel) happens lazily in the accept call itself.
        if self.cfg.arch.is_lrp()
            && !self.cfg.tcp_app_processing
            && self.sock(sock).accept_q.is_empty()
        {
            let mut targets: Vec<SockId> = vec![sock];
            targets.extend(
                self.sockets
                    .iter()
                    .flatten()
                    .filter(|s| s.parent == Some(sock))
                    .map(|s| s.id),
            );
            for t in targets {
                let Some(chan) = self.sock(t).chan else {
                    continue;
                };
                if !self.nic.channel_exists(chan) {
                    continue;
                }
                if let Some(frame) = self.chan_dequeue(_now, chan) {
                    let dur = self.ip_deliver(
                        _now,
                        frame,
                        ProtoCtx::Lrp {
                            sock: t,
                            lazy: true,
                        },
                    );
                    return PhaseOut::Run {
                        dur,
                        account: Account::System,
                        next: Cont::AcceptCheck { sock },
                    };
                }
            }
        }
        if let Some(child) = self.sock_mut(sock).accept_q.pop_front() {
            if let Some(l) = self.sock_mut(sock).listener.as_mut() {
                l.on_accept();
            }
            // The accepting process becomes the owner (charging target).
            if self.sock_opt(child).is_some() {
                self.sock_mut(child).owner = _pid;
                return PhaseOut::Run {
                    dur: cost.accept_sock,
                    account: Account::System,
                    next: Cont::SyscallReturn(SyscallRet::Accepted(child)),
                };
            }
            // The child died while queued; try again.
            return PhaseOut::Run {
                dur: cost.accept_sock,
                account: Account::System,
                next: Cont::AcceptCheck { sock },
            };
        }
        PhaseOut::Block {
            wchan: sock_wchan(sock, WC_ACCEPT),
            pri: PSOCK,
            resume: Cont::AcceptCheck { sock },
        }
    }

    fn do_close(&mut self, now: SimTime, sock: SockId) -> SimDuration {
        let cost = self.cfg.cost;
        let Some(s) = self.sock_opt(sock) else {
            return SimDuration::ZERO;
        };
        let has_tcp = s.tcp.is_some();
        self.sock_mut(sock).closed_by_app = true;
        if has_tcp {
            let mut conn = self.sock_mut(sock).tcp.take().expect("tcp");
            let actions = conn.close(now);
            let already_closed = conn.is_closed();
            self.sock_mut(sock).tcp = Some(conn);
            let tx = self.apply_tcp_actions(now, sock, actions);
            if already_closed {
                self.teardown_tcp_sock(sock);
                self.free_socket(sock);
            }
            cost.accept_sock + tx
        } else {
            // A closing listener reaps its children first: embryonic
            // (half-open) connections die silently — their peers are mid-
            // handshake and time out, exactly as under SYN-cache eviction
            // — and completed-but-unaccepted connections are aborted with
            // an RST (BSD `soabort`). Without this, a close during a SYN
            // flood would leak every child socket, its NI channel and the
            // frames queued on it.
            let mut reap = SimDuration::ZERO;
            if self.sock(sock).listener.is_some() {
                while let Some(victim) = self
                    .sock(sock)
                    .listener
                    .as_ref()
                    .and_then(|l| l.oldest_half_open())
                {
                    if self.sock_opt(victim).is_none() {
                        // Stale entry: drop it and keep draining.
                        if let Some(l) = self.sock_mut(sock).listener.as_mut() {
                            l.untrack_half_open(victim);
                        }
                        continue;
                    }
                    // Silent teardown; the orphan path frees the slot and
                    // flushes the child's channel.
                    self.sock_mut(victim).tcp = None;
                    self.teardown_tcp_sock(victim);
                }
                let pending: Vec<SockId> = self.sock(sock).accept_q.iter().copied().collect();
                for child in pending {
                    if self.sock_opt(child).is_none() {
                        continue;
                    }
                    self.sock_mut(child).closed_by_app = true;
                    if self.sock(child).tcp.is_some() {
                        let mut conn = self.sock_mut(child).tcp.take().expect("checked");
                        let actions = conn.abort();
                        self.sock_mut(child).tcp = Some(conn);
                        reap += self.apply_tcp_actions(now, child, actions);
                    } else {
                        self.free_socket(child);
                    }
                }
                if let Some(s) = self
                    .sockets
                    .get_mut(sock.0 as usize)
                    .and_then(|x| x.as_mut())
                {
                    s.accept_q.clear();
                }
            }
            // UDP (or the reaped listener): free immediately.
            self.free_socket(sock);
            cost.accept_sock + reap
        }
    }

    /// Overrides the charge target of the next started chunk: APP and
    /// idle kernel threads bill their protocol work to the application
    /// that owns the socket (§3.4).
    pub(crate) fn charge_override(&mut self, thread: Pid, target: Pid) {
        self.pending_charge = (thread != target).then_some(target);
    }
}
