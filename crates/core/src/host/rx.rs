//! Frame reception: interrupt handling and software-interrupt protocol
//! work — the point where the four architectures diverge.

use super::{sock_wchan, DropPoint, Host, WC_RECV};
use crate::config::Architecture;
use crate::host::proto::ProtoCtx;
use crate::telemetry::SpanId;
use lrp_demux::{ChannelId, Verdict};
use lrp_nic::{NicDrop, RxOutcome};
use lrp_sched::Pid;
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::SockId;
use lrp_wire::Frame;

impl Host {
    /// A frame arrives from the link.
    ///
    /// Interrupt-handler *logic* runs here (hardware interrupts preempt
    /// everything instantly); the handler's CPU *cost* then occupies a
    /// CPU via the interrupt-preemption machinery. On SMP, each RX queue
    /// interrupts its target CPU (`rxq % ncpus`) — the RSS steering that
    /// spreads flows across processors.
    pub fn on_frame(&mut self, now: SimTime, frame: Frame) {
        self.on_frame_span(now, frame, None);
    }

    /// Like [`Host::on_frame`], carrying the causal-trace span of the
    /// frame (if one was minted at injection). The span is observational
    /// metadata only: it never influences queueing or cost decisions.
    pub fn on_frame_span(&mut self, now: SimTime, frame: Frame, span: Option<SpanId>) {
        let cost = self.cfg.cost;
        let ncpus = self.cpus.len();
        match self.cfg.arch {
            Architecture::Bsd => {
                match self.nic.rx_frame_at(now.as_nanos(), frame) {
                    RxOutcome::Interrupt(rxq) => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                        // Driver: drain the ring batch (one frame unless
                        // coalescing held earlier ones back), then mbuf
                        // encapsulation into the shared IP queue; drop
                        // (after the driver work!) if full.
                        let mut batch = std::mem::take(&mut self.rx_scratch);
                        self.nic
                            .ring_drain_into(rxq, self.cfg.rx_batch.max(1), &mut batch);
                        debug_assert!(!batch.is_empty(), "frame just queued");
                        let n = batch.len() as u64;
                        for f in batch.drain(..) {
                            if self.ip_queue.len() >= self.cfg.ip_queue_limit {
                                self.stats.drop_at(DropPoint::IpQueue);
                                self.tele.on_drop(now, rxq % ncpus, DropPoint::IpQueue);
                            } else {
                                self.ip_queue.push_back(f);
                                let depth = self.ip_queue.len();
                                self.tele.on_ipq_enqueue(now, depth, span);
                            }
                        }
                        self.rx_scratch = batch;
                        self.raise_hw_on(
                            now,
                            rxq % ncpus,
                            cost.hw_intr + cost.driver_rx_per_pkt * n,
                            "rx-intr",
                        );
                    }
                    RxOutcome::Dropped(NicDrop::Stalled) => {
                        self.stats.drop_at(DropPoint::NicStall);
                        self.tele.on_nic_drop(now, "NicStall");
                    }
                    RxOutcome::Dropped(_) => {
                        self.stats.drop_at(DropPoint::RxRing);
                        self.tele.on_nic_drop(now, "RxRing");
                    }
                    // Interrupt coalescing: the frame sits in the ring
                    // until the next uncoalesced interrupt batches it in.
                    // (Its span is lost — a documented trace limitation.)
                    RxOutcome::Queued => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                    }
                }
            }
            Architecture::EarlyDemux | Architecture::SoftLrp => {
                match self.nic.rx_frame_at(now.as_nanos(), frame) {
                    RxOutcome::Interrupt(rxq) => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                        // Drain the ring batch and demux each frame in
                        // arrival order; the handler's cost covers the
                        // whole batch (per-frame driver + demux work).
                        let mut batch = std::mem::take(&mut self.rx_scratch);
                        self.nic
                            .ring_drain_into(rxq, self.cfg.rx_batch.max(1), &mut batch);
                        debug_assert!(!batch.is_empty(), "frame just queued");
                        self.cur_cpu = rxq % ncpus;
                        let n = batch.len() as u64;
                        let mut d = SimDuration::ZERO;
                        for f in batch.drain(..) {
                            d += self.soft_demux_deliver(now, f, span);
                        }
                        self.rx_scratch = batch;
                        self.raise_hw_on(
                            now,
                            rxq % ncpus,
                            cost.hw_intr + cost.driver_rx_per_pkt * n + d,
                            "rx-intr",
                        );
                    }
                    RxOutcome::Dropped(NicDrop::Stalled) => {
                        self.stats.drop_at(DropPoint::NicStall);
                        self.tele.on_nic_drop(now, "NicStall");
                    }
                    RxOutcome::Dropped(_) => {
                        self.stats.drop_at(DropPoint::RxRing);
                        self.tele.on_nic_drop(now, "RxRing");
                    }
                    // Coalesced: held in the ring until the next interrupt.
                    RxOutcome::Queued => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                    }
                }
            }
            Architecture::NiLrp => {
                // Demux, early discard and queueing all happen on the NIC
                // processor: zero host cost unless an interrupt was
                // requested.
                match self.nic.rx_frame_at(now.as_nanos(), frame) {
                    RxOutcome::Interrupt(rxq) => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                        if let Some(chan) = self.nic.last_rx_channel() {
                            self.tele.on_chan_enqueue(now, rxq % ncpus, chan, span);
                        }
                        // Wake whoever requested notification for the
                        // newly non-empty channel. We do not know which
                        // channel fired; wake receivers with pending data.
                        self.cur_cpu = rxq % ncpus;
                        self.ni_interrupt_wakeups();
                        self.raise_hw_on(now, rxq % ncpus, cost.hw_intr_ni, "ni-intr");
                    }
                    RxOutcome::Queued => {
                        self.tele.on_rx(now, self.nic.stats().rx_frames, span);
                        if let Some(chan) = self.nic.last_rx_channel() {
                            self.tele.on_chan_enqueue(now, 0, chan, span);
                        }
                    }
                    RxOutcome::Dropped(NicDrop::Stalled) => {
                        self.stats.drop_at(DropPoint::NicStall);
                        self.tele.on_nic_drop(now, "NicStall");
                    }
                    RxOutcome::Dropped(_) => {
                        // Early packet discard on the NIC: by design, no
                        // host work at all. NIC stats carry the count.
                        self.tele.on_nic_drop(now, "EarlyDiscard");
                    }
                }
            }
        }
        self.kick(now);
    }

    /// Host-interrupt-handler demux (SOFT-LRP and Early-Demux): classify,
    /// enqueue or discard, wake receivers. Returns the extra handler cost
    /// beyond the base interrupt cost.
    fn soft_demux_deliver(
        &mut self,
        now: SimTime,
        frame: Frame,
        span: Option<SpanId>,
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let cpu = self.cur_cpu;
        let mut extra = cost.demux_per_pkt;
        let verdict = self.nic.demux.classify(&frame);
        let chan = match verdict {
            Verdict::Endpoint(c) => c,
            Verdict::Fragment => self.nic.fragment_channel,
            Verdict::IcmpDaemon | Verdict::ArpDaemon | Verdict::Forward => {
                // Proxy daemons: queue on their channel if registered.
                let p = self.nic.proxies();
                match verdict {
                    Verdict::IcmpDaemon => p.icmp,
                    Verdict::ArpDaemon => p.arp,
                    _ => p.forward,
                }
                .unwrap_or(self.nic.fragment_channel)
            }
            Verdict::NoMatch => {
                self.stats.drop_at(DropPoint::NoSocket);
                self.tele.on_drop(now, cpu, DropPoint::NoSocket);
                return extra;
            }
            Verdict::Malformed => {
                self.stats.drop_at(DropPoint::BadPacket);
                self.tele.on_drop(now, cpu, DropPoint::BadPacket);
                return extra;
            }
        };
        self.tele.on_demux(now, cpu, chan);
        if !self.nic.channel_exists(chan) {
            self.stats.drop_at(DropPoint::Channel);
            self.tele.on_drop(now, cpu, DropPoint::Channel);
            return extra;
        }
        // Forwarded traffic wakes the forwarding daemon.
        let is_forward_chan = self.nic.proxies().forward == Some(chan);
        let sock = self.sock_of_channel(chan);
        if self.cfg.arch == Architecture::EarlyDemux {
            // Early-Demux feedback: discard when the *socket queue* cannot
            // take this packet — the receiver is not keeping up (§3,
            // "early demultiplexing only"). Checking against the frame
            // size (not just zero space) is what makes the feedback bind.
            if let Some(s) = sock {
                let sk = self.sock(s);
                let rcvq_full = sk.rcvq.space() < frame.len();
                if rcvq_full || self.nic.channel(chan).is_full() {
                    self.stats.drop_at(DropPoint::Channel);
                    self.sock_mut(s).drops_channel += 1;
                    self.tele.on_drop(now, cpu, DropPoint::Channel);
                    return extra;
                }
            }
        }
        let was_empty = self.nic.channel(chan).is_empty();
        if !self.nic.channel_mut(chan).enqueue(frame) {
            self.stats.drop_at(DropPoint::Channel);
            if let Some(s) = sock {
                self.sock_mut(s).drops_channel += 1;
            }
            self.tele.on_drop(now, cpu, DropPoint::Channel);
            return extra;
        }
        self.tele.on_chan_enqueue(now, cpu, chan, span);
        match self.cfg.arch {
            Architecture::EarlyDemux => {
                // Schedule eager softirq protocol processing.
                if let Some(s) = sock {
                    if !self.ed_pending.contains(&s) {
                        self.ed_pending.push_back(s);
                    }
                }
            }
            Architecture::SoftLrp => {
                if is_forward_chan {
                    if self.forward_daemon.is_some() {
                        extra += cost.wakeup;
                        for w in self.sched.wakeup(super::WC_FORWARD) {
                            self.unblock(w);
                        }
                    }
                } else if let Some(s) = sock {
                    let sk = self.sock(s);
                    let is_tcp = sk.proto == crate::syscall::SockProto::Tcp;
                    if is_tcp {
                        if self.app_thread.is_some() {
                            // Asynchronous protocol processing thread.
                            extra += cost.wakeup;
                            self.wake_app_thread();
                        } else {
                            // A4 (no APP): lazy processing happens in the
                            // blocked receive/accept/connect call; wake it
                            // — for an embryonic child, the acceptor
                            // sleeps on the parent listener.
                            extra += cost.wakeup;
                            self.wake_sock(s, WC_RECV);
                            self.wake_sock(s, super::WC_SEND);
                            self.wake_sock(s, super::WC_ACCEPT);
                            self.wake_sock(s, super::WC_CONNECT);
                            if let Some(parent) = self.sock(s).parent {
                                self.wake_sock(parent, super::WC_ACCEPT);
                            }
                        }
                    } else if self.sched.has_sleeper(sock_wchan(s, WC_RECV)) {
                        extra += cost.wakeup;
                        self.wake_sock(s, WC_RECV);
                    } else if was_empty {
                        self.wake_idle_thread_if_sleeping();
                    }
                } else if chan == self.nic.fragment_channel {
                    // Wake blocked UDP receivers: their datagram's missing
                    // fragments may have just arrived. They re-check, pump
                    // the fragment channel, and re-sleep if idle.
                    self.wake_udp_recv_sleepers();
                }
            }
            _ => {}
        }
        extra
    }

    /// Wakes every process blocked receiving on a UDP socket (fragment
    /// arrivals: the sleeper must pump the shared fragment channel).
    pub(crate) fn wake_udp_recv_sleepers(&mut self) {
        let socks: Vec<SockId> = self
            .live_sockets()
            .filter(|s| s.proto != crate::syscall::SockProto::Tcp)
            .map(|s| s.id)
            .collect();
        for s in socks {
            if self.sched.has_sleeper(sock_wchan(s, WC_RECV)) {
                self.wake_sock(s, WC_RECV);
            }
        }
    }

    /// NI-LRP interrupt: a channel went empty→non-empty with notification
    /// requested. Wake the corresponding sleepers.
    fn ni_interrupt_wakeups(&mut self) {
        // Wake receivers of any UDP socket with queued channel data, the
        // APP thread if TCP channels have data, or the idle thread.
        let mut wake: Vec<(SockId, bool)> = Vec::new();
        for s in self.live_sockets() {
            if let Some(c) = s.chan {
                if self.nic.channel_exists(c) && !self.nic.channel(c).is_empty() {
                    let is_tcp = s.proto == crate::syscall::SockProto::Tcp;
                    wake.push((s.id, is_tcp));
                }
            }
        }
        let mut any_tcp = false;
        for (sock, is_tcp) in wake {
            if is_tcp {
                any_tcp = true;
                if self.app_thread.is_none() {
                    self.wake_sock(sock, WC_RECV);
                    self.wake_sock(sock, super::WC_SEND);
                    self.wake_sock(sock, super::WC_ACCEPT);
                    self.wake_sock(sock, super::WC_CONNECT);
                    if let Some(parent) = self.sock(sock).parent {
                        self.wake_sock(parent, super::WC_ACCEPT);
                    }
                }
            } else if self.sched.has_sleeper(sock_wchan(sock, WC_RECV)) {
                self.wake_sock(sock, WC_RECV);
            } else {
                self.wake_idle_thread_if_sleeping();
            }
        }
        if any_tcp {
            self.wake_app_thread();
        }
        // Forward-channel arrivals wake the forwarding daemon.
        if let Some(fc) = self.nic.proxies().forward {
            if self.nic.channel_exists(fc) && !self.nic.channel(fc).is_empty() {
                for w in self.sched.wakeup(super::WC_FORWARD) {
                    self.unblock(w);
                }
            }
        }
        // Fragment-channel arrivals: wake receivers so they pump it, and
        // re-arm the demand interrupt (the flag auto-clears on delivery).
        let frag = self.nic.fragment_channel;
        if !self.nic.channel(frag).is_empty() {
            self.wake_udp_recv_sleepers();
        }
        self.nic.channel_mut(frag).intr_requested = true;
    }

    pub(crate) fn wake_idle_thread_if_sleeping(&mut self) {
        if self.idle_thread.is_some() {
            for w in self.sched.wakeup(super::WC_IDLE_THREAD) {
                self.unblock(w);
            }
        }
    }

    /// Maps an NI channel back to its socket (indexed; O(log n)).
    pub(crate) fn sock_of_channel(&self, chan: ChannelId) -> Option<SockId> {
        self.chan_to_sock
            .get(&chan)
            .copied()
            .filter(|s| self.sock_opt(*s).is_some())
    }

    /// Produces the next software-interrupt job for BSD / Early-Demux:
    /// TCP timer work first, then one packet of protocol processing.
    /// Returns `(cost, tag)`; logic is applied immediately.
    pub(crate) fn next_soft_job(&mut self, now: SimTime) -> Option<(SimDuration, &'static str)> {
        let cost = self.cfg.cost;
        if let Some(sock) = self.tcp_timer_work.pop_front() {
            // The timer work rightfully belongs to the socket's owner —
            // note it for the charge-attribution ledger.
            if let Some(owner) = self.sock_opt(sock).map(|s| s.owner) {
                self.tele.note_proto_owner(owner.0);
            }
            let d = self.run_tcp_timer(now, sock);
            return Some((cost.softirq_dispatch + d, "tcp-timer"));
        }
        match self.cfg.arch {
            Architecture::Bsd => {
                let frame = self.ip_queue.pop_front()?;
                let cpu = self.cur_cpu;
                self.tele.on_ipq_dequeue(now, cpu);
                let d = self.ip_deliver(now, frame, ProtoCtx::BsdSoftirq);
                Some((cost.softirq_dispatch + d, "ip-input"))
            }
            Architecture::EarlyDemux => {
                // Round-robin over sockets with pending channel frames.
                while let Some(sock) = self.ed_pending.pop_front() {
                    let Some(s) = self.sock_opt(sock) else {
                        continue;
                    };
                    let Some(chan) = s.chan else { continue };
                    if !self.nic.channel_exists(chan) {
                        continue;
                    }
                    let Some(frame) = self.chan_dequeue(now, chan) else {
                        continue;
                    };
                    // More frames pending? Re-queue for fairness.
                    if !self.nic.channel(chan).is_empty() {
                        self.ed_pending.push_back(sock);
                    }
                    let cpu = self.cur_cpu;
                    self.tele.note_softirq_dispatch(now, cpu, "ed-input");
                    let d = self.ip_deliver(now, frame, ProtoCtx::EarlyDemuxSoftirq { sock });
                    return Some((cost.softirq_dispatch + d, "ed-input"));
                }
                None
            }
            _ => None,
        }
    }

    /// LRP: TCP timer work runs in kernel context charged to the socket
    /// owner even when the APP thread is not scheduled (the clock handler
    /// dispatches it). Returns `(cost, charged_pid)`.
    pub(crate) fn next_lrp_timer_job(
        &mut self,
        now: SimTime,
    ) -> Option<(SimDuration, Option<Pid>)> {
        let sock = self.tcp_timer_work.pop_front()?;
        let owner = self.sock_opt(sock).map(|s| s.owner);
        let d = self.run_tcp_timer(now, sock);
        Some((SimDuration::from_micros(5) + d, owner))
    }

    /// Mark a process as wanting an interrupt when its socket's channel
    /// receives data (NI-LRP demand interrupts).
    pub(crate) fn request_channel_interrupt(&mut self, sock: SockId) {
        if let Some(chan) = self.sock(sock).chan {
            if self.nic.channel_exists(chan) {
                self.nic.channel_mut(chan).intr_requested = true;
            }
        }
    }

    /// True if the LRP idle protocol thread has work: a UDP channel with
    /// raw frames whose socket has receive-buffer space.
    pub(crate) fn idle_work_available(&self) -> bool {
        if self.idle_thread.is_none() {
            return false;
        }
        self.live_sockets().any(|s| {
            s.tcp.is_none()
                && s.listener.is_none()
                && s.rcvq.space() > 0
                && s.chan
                    .is_some_and(|c| self.nic.channel_exists(c) && !self.nic.channel(c).is_empty())
        })
    }

    /// The idle thread processes one queued UDP packet; returns
    /// `(cost, owner)` or `None` if no work.
    pub(crate) fn idle_thread_step(&mut self, now: SimTime) -> Option<(SimDuration, Pid)> {
        let target = self.live_sockets().find_map(|s| {
            let udp = s.proto != crate::syscall::SockProto::Tcp;
            let chan = s.chan?;
            (udp && s.rcvq.space() > 0
                && self.nic.channel_exists(chan)
                && !self.nic.channel(chan).is_empty())
            .then_some((s.id, chan, s.owner))
        })?;
        let (sock, chan, owner) = target;
        let frame = self.chan_dequeue(now, chan)?;
        let d = self.ip_deliver(now, frame, ProtoCtx::Lrp { sock, lazy: false });
        // Wake a blocked receiver now that processed data is ready.
        if self.sched.has_sleeper(sock_wchan(sock, WC_RECV)) {
            self.wake_sock(sock, WC_RECV);
        }
        Some((d, owner))
    }

    /// The APP thread processes one queued TCP packet (or reports no
    /// work). Returns `(cost, owner)`.
    pub(crate) fn app_thread_step(&mut self, now: SimTime) -> Option<(SimDuration, Pid)> {
        // Round-robin over TCP sockets with non-empty channels, skipping
        // listeners whose backlog is exhausted: their channels fill and
        // the NI discards further SYNs (§3.4).
        let candidates: Vec<SockId> = self
            .live_sockets()
            .filter(|s| {
                (s.proto == crate::syscall::SockProto::Tcp)
                    && s.chan.is_some_and(|c| {
                        self.nic.channel_exists(c) && !self.nic.channel(c).is_empty()
                    })
            })
            .map(|s| s.id)
            .collect();
        for sock in candidates {
            let chan = self.sock(sock).chan.expect("filtered");
            if let Some(l) = &self.sock(sock).listener {
                // §3.4: protocol processing is disabled for listeners
                // whose backlog is exhausted; the channel then fills and
                // the NI discards further SYNs without host work. With
                // SYN cookies engaged the listener keeps draining: a
                // full backlog answers SYNs statelessly instead of
                // going deaf, so legitimate peers can still get in.
                let enabled =
                    l.can_accept_syn() || self.cfg.syn_cookies != crate::config::SynCookies::Off;
                self.nic.channel_mut(chan).processing_enabled = enabled;
                if !enabled {
                    continue;
                }
            }
            let Some(frame) = self.chan_dequeue(now, chan) else {
                continue;
            };
            let owner = self.sock(sock).owner;
            let d = self.ip_deliver(now, frame, ProtoCtx::Lrp { sock, lazy: false });
            return Some((d, owner));
        }
        None
    }
}
