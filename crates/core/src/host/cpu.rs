//! The CPU execution engine: chunk scheduling, interrupt preemption and
//! charge-as-you-go accounting, per simulated CPU.

use super::{ChunkMeta, Cont, Cpu, Host, PhaseOut, ProcExec, Running, Suspended, WorkKind};
use lrp_sched::{Account, Pid, ProcState};
use lrp_sim::{SimDuration, SimTime};

impl Cpu {
    fn bump(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }
}

/// The outcome of settling a running chunk: its kind, charge target,
/// profiler metadata, and unfinished duration.
type Settled = (WorkKind, Option<(Pid, Account)>, ChunkMeta, SimDuration);

fn account_label(a: Account) -> &'static str {
    match a {
        Account::User => "user",
        Account::System => "system",
        Account::Interrupt => "interrupt",
    }
}

impl Host {
    /// Charges elapsed time of the chunk running on `cpu` up to `now`,
    /// feeds the simulated-cycle profiler, and returns the remaining
    /// duration.
    fn settle_running(&mut self, now: SimTime, cpu: usize) -> Option<Settled> {
        let r = self.cpus[cpu].running.take()?;
        let elapsed = now.since(r.started);
        let total = r.ends.since(r.started);
        let remaining = total.saturating_sub(elapsed);
        let used = elapsed.min(total);
        self.cpus[cpu].busy += used;
        if let Some((pid, account)) = r.charge {
            if !used.is_zero() {
                self.sched.charge_on(cpu, pid, account, used);
            }
        }
        if !used.is_zero() {
            // Profiler context: what kind of execution the cycles belong
            // to. Kernel threads get their own contexts — they are the
            // paper's LRP mechanism, not ordinary processes.
            let context = match &r.kind {
                WorkKind::Hw => "interrupt",
                WorkKind::Soft => "softirq",
                WorkKind::Proc { pid, .. } => {
                    if Some(*pid) == self.app_thread {
                        "app-thread"
                    } else if Some(*pid) == self.idle_thread {
                        "idle-thread"
                    } else if matches!(r.charge, Some((_, Account::User))) {
                        "user"
                    } else {
                        "syscall"
                    }
                }
            };
            let billed = r.charge.map(|(p, a)| (p.0, account_label(a)));
            self.tele.on_cycles(
                cpu,
                context,
                r.meta.stage,
                billed,
                r.meta.owner.map(|p| p.0),
                used.as_nanos(),
            );
        }
        Some((r.kind, r.charge, r.meta, remaining))
    }

    fn start_chunk(
        &mut self,
        now: SimTime,
        cpu: usize,
        kind: WorkKind,
        charge: Option<(Pid, Account)>,
        meta: ChunkMeta,
        dur: SimDuration,
    ) {
        debug_assert!(self.cpus[cpu].running.is_none(), "CPU already busy");
        self.cpus[cpu].bump();
        self.cpus[cpu].running = Some(Running {
            kind,
            charge,
            meta,
            started: now,
            ends: now + dur,
        });
    }

    /// A hardware interrupt demands `cpu`: suspend whatever runs there and
    /// execute (or queue) the interrupt work. The interrupt's *logic* has
    /// already been applied by the caller; this models only its CPU cost.
    /// `stage` labels the interrupt source for the profiler.
    pub(crate) fn raise_hw_on(
        &mut self,
        now: SimTime,
        cpu: usize,
        cost: SimDuration,
        stage: &'static str,
    ) {
        self.cur_cpu = cpu;
        // BSD charges interrupt time to the process that happens to be
        // running (or that the interrupt suspended); idle time is free.
        let victim = self.current_proc_context_on(cpu);
        match &self.cpus[cpu].running {
            Some(r) if matches!(r.kind, WorkKind::Hw) => {
                // Interrupts queue behind the current handler.
                self.cpus[cpu].pending_hw.push_back((cost, victim, stage));
            }
            Some(_) => {
                // Preempt: settle and suspend the current chunk.
                let (kind, charge, meta, remaining) =
                    self.settle_running(now, cpu).expect("running chunk");
                match kind {
                    WorkKind::Soft => {
                        self.cpus[cpu].susp_soft = Some(Suspended {
                            kind,
                            charge,
                            meta,
                            remaining,
                        });
                    }
                    WorkKind::Proc { .. } => {
                        self.cpus[cpu].susp_proc = Some(Suspended {
                            kind,
                            charge,
                            meta,
                            remaining,
                        });
                    }
                    WorkKind::Hw => unreachable!("handled above"),
                }
                self.stats.hw_chunks += 1;
                self.start_chunk(
                    now,
                    cpu,
                    WorkKind::Hw,
                    victim.map(|p| (p, Account::Interrupt)),
                    ChunkMeta::stage(stage),
                    cost,
                );
            }
            None => {
                self.stats.hw_chunks += 1;
                self.start_chunk(
                    now,
                    cpu,
                    WorkKind::Hw,
                    victim.map(|p| (p, Account::Interrupt)),
                    ChunkMeta::stage(stage),
                    cost,
                );
            }
        }
    }

    /// The process whose context underlies `cpu`'s current activity (for
    /// BSD-style interrupt charging).
    pub(crate) fn current_proc_context_on(&self, cpu: usize) -> Option<Pid> {
        if let Some(s) = &self.cpus[cpu].susp_proc {
            if let WorkKind::Proc { pid, .. } = &s.kind {
                return Some(*pid);
            }
        }
        if let Some(r) = &self.cpus[cpu].running {
            if let WorkKind::Proc { pid, .. } = &r.kind {
                return Some(*pid);
            }
        }
        None
    }

    /// CPU completion event: `gen` guards against stale events.
    pub fn on_cpu_complete(&mut self, now: SimTime, cpu: usize, gen: u64) {
        if gen != self.cpus[cpu].gen || self.cpus[cpu].running.is_none() {
            return; // Stale event (chunk was preempted/replaced).
        }
        if self.cpus[cpu]
            .running
            .as_ref()
            .is_some_and(|r| r.ends > now)
        {
            return; // Stale (should not happen with gen check).
        }
        self.cur_cpu = cpu;
        let (kind, _, _, _) = self.settle_running(now, cpu).expect("checked");
        match kind {
            WorkKind::Hw | WorkKind::Soft => {}
            WorkKind::Proc { pid, next } => {
                // A process crashed mid-chunk finishes the chunk (the
                // cycles were already spent) but its continuation
                // evaporates — nothing may resurrect an exited process.
                if !matches!(self.exec.get(&pid), Some(ProcExec::Exited)) {
                    // The process continues with the next phase: requeue at
                    // the front of its bucket so it resumes immediately
                    // unless higher-priority work (interrupt, softirq,
                    // better process) claims the CPU first.
                    self.exec.insert(pid, ProcExec::Cont(next));
                    self.sched.requeue(pid, true);
                }
            }
        }
        self.dispatch(now);
    }

    /// Finds work for every idle CPU (used after enqueuing work from
    /// timers etc.).
    pub(crate) fn kick(&mut self, now: SimTime) {
        self.dispatch(now);
    }

    /// Mid-chunk preemption test for the processes running on each CPU
    /// (used at decay boundaries when priorities shift).
    pub(crate) fn maybe_preempt_running(&mut self, now: SimTime) {
        let mut preempted = false;
        for cpu in 0..self.cpus.len() {
            let Some(r) = &self.cpus[cpu].running else {
                continue;
            };
            let WorkKind::Proc { pid, .. } = &r.kind else {
                continue;
            };
            let pid = *pid;
            let pri = self.sched.proc_ref(pid).effective_pri();
            if self.sched.should_preempt_on(cpu, pri) {
                let (kind, charge, meta, remaining) =
                    self.settle_running(now, cpu).expect("running");
                let WorkKind::Proc { pid, next } = kind else {
                    unreachable!()
                };
                let account = charge.map(|(_, a)| a).unwrap_or(Account::System);
                let charge_pid = charge.map(|(p, _)| p).unwrap_or(pid);
                self.preempt_to_exec(pid, next, remaining, account, charge_pid, meta);
                preempted = true;
            }
        }
        if preempted {
            self.dispatch(now);
        }
    }

    /// Saves a preempted process phase back into its exec state and
    /// requeues the process.
    #[allow(clippy::too_many_arguments)]
    fn preempt_to_exec(
        &mut self,
        pid: Pid,
        next: Cont,
        remaining: SimDuration,
        account: Account,
        charge: Pid,
        meta: ChunkMeta,
    ) {
        // A crash between suspension and this save point must win: the
        // preempted phase of an exited process is discarded, not saved.
        if matches!(self.exec.get(&pid), Some(ProcExec::Exited)) {
            return;
        }
        if remaining.is_zero() {
            self.exec.insert(pid, ProcExec::Cont(next));
        } else {
            self.exec.insert(
                pid,
                ProcExec::Chunk {
                    remaining,
                    account,
                    charge,
                    meta,
                    next,
                },
            );
        }
        if self.sched.proc_ref(pid).state == ProcState::Running {
            self.sched.requeue(pid, true);
            self.stats.ctx_switches += 1;
        }
    }

    /// Dispatches every idle CPU, in CPU order, until no idle CPU can find
    /// work. The extra passes matter only on SMP: work queued for CPU `i`
    /// by CPU `j > i` (an IPI, a wakeup of a process homed there) is
    /// picked up in the next pass instead of waiting for the next event.
    pub(crate) fn dispatch(&mut self, now: SimTime) {
        loop {
            let mut progressed = false;
            for cpu in 0..self.cpus.len() {
                if self.cpus[cpu].running.is_none() {
                    self.dispatch_on(now, cpu);
                    progressed |= self.cpus[cpu].running.is_some();
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// The central dispatcher: picks the highest-priority work for `cpu`.
    /// Order: pending hardware interrupts, software interrupt work, the
    /// suspended process (unless preempted), then the scheduler.
    fn dispatch_on(&mut self, now: SimTime, cpu: usize) {
        if self.cpus[cpu].running.is_some() {
            return;
        }
        self.cur_cpu = cpu;
        loop {
            // 1. Hardware interrupts first.
            if let Some((cost, victim, stage)) = self.cpus[cpu].pending_hw.pop_front() {
                self.stats.hw_chunks += 1;
                self.start_chunk(
                    now,
                    cpu,
                    WorkKind::Hw,
                    victim.map(|p| (p, Account::Interrupt)),
                    ChunkMeta::stage(stage),
                    cost,
                );
                return;
            }
            // 2. Suspended softirq resumes.
            if let Some(s) = self.cpus[cpu].susp_soft.take() {
                self.cpus[cpu].bump();
                self.cpus[cpu].running = Some(Running {
                    kind: s.kind,
                    charge: s.charge,
                    meta: s.meta,
                    started: now,
                    ends: now + s.remaining,
                });
                return;
            }
            // 3. New softirq job (BSD / Early-Demux protocol work, and
            //    BSD-context TCP timer work). The queues are global; any
            //    CPU may drain them.
            if !self.cfg.arch.is_lrp() {
                if let Some((cost, tag)) = self.next_soft_job(now) {
                    self.stats.soft_jobs += 1;
                    let victim = self.current_proc_context_on(cpu);
                    // The job's protocol logic just ran and noted the
                    // rightful receiver (if the packet matched a socket);
                    // the chunk carries it for the attribution ledger.
                    let owner = self.tele.take_proto_owner().map(Pid);
                    self.start_chunk(
                        now,
                        cpu,
                        WorkKind::Soft,
                        victim.map(|p| (p, Account::Interrupt)),
                        ChunkMeta { stage: tag, owner },
                        cost,
                    );
                    return;
                }
            } else if let Some((cost, owner)) = self.next_lrp_timer_job(now) {
                // LRP TCP timer work executes in kernel context charged to
                // the socket owner, even if the APP thread is asleep — the
                // clock interrupt hands it straight to the APP path.
                self.stats.soft_jobs += 1;
                let _ = self.tele.take_proto_owner();
                self.start_chunk(
                    now,
                    cpu,
                    WorkKind::Soft,
                    owner.map(|p| (p, Account::System)),
                    ChunkMeta {
                        stage: "lrp-timer",
                        owner,
                    },
                    cost,
                );
                return;
            }
            // 4. Suspended process chunk: resume unless something better
            //    is queued (preemption at interrupt return).
            if let Some(s) = self.cpus[cpu].susp_proc.take() {
                let WorkKind::Proc { pid, next } = s.kind else {
                    unreachable!("susp_proc holds proc work")
                };
                // The suspended process crashed while an interrupt ran on
                // top of it: its saved chunk dies with it. (A live
                // suspended process has *no* exec entry — the continuation
                // lives in the chunk itself; a crash stores an explicit
                // `Exited`.)
                if matches!(self.exec.get(&pid), Some(ProcExec::Exited)) {
                    let _ = next;
                    continue;
                }
                let pri = self.sched.proc_ref(pid).effective_pri();
                if self.sched.should_preempt_on(cpu, pri) {
                    let account = s.charge.map(|(_, a)| a).unwrap_or(Account::System);
                    let charge_pid = s.charge.map(|(p, _)| p).unwrap_or(pid);
                    self.preempt_to_exec(pid, next, s.remaining, account, charge_pid, s.meta);
                    continue;
                }
                self.cpus[cpu].bump();
                self.cpus[cpu].running = Some(Running {
                    kind: WorkKind::Proc { pid, next },
                    charge: s.charge,
                    meta: s.meta,
                    started: now,
                    ends: now + s.remaining,
                });
                return;
            }
            // 5. Ask the scheduler (own run queue first, then idle-steal).
            if let Some(pid) = self.sched.pick_next_on(cpu) {
                if self.begin_proc(now, cpu, pid) {
                    return;
                }
                continue;
            }
            // 6. Idle. LRP: poll channels for the idle protocol thread.
            if self.idle_work_available() {
                if let Some(idle) = self.idle_thread {
                    if matches!(self.exec.get(&idle), Some(ProcExec::Blocked(_))) {
                        for w in self.sched.wakeup(super::WC_IDLE_THREAD) {
                            self.unblock(w);
                        }
                        continue;
                    }
                }
            }
            return;
        }
    }

    /// Runs phases for a process that just got `cpu` until one of them
    /// yields a cost-bearing chunk (returns true) or the process blocks /
    /// exits / yields (returns false).
    fn begin_proc(&mut self, now: SimTime, cpu: usize, pid: Pid) -> bool {
        // Context-switch accounting: switching to a different process
        // costs switch time plus a cache reload for the incoming working
        // set, scaled by how long the process has been off the CPU (a
        // brief preemption evicts little of a large working set).
        let mut switch_cost = SimDuration::ZERO;
        if self.cpus[cpu].last_on_cpu != Some(pid) {
            if let Some(prev) = self.cpus[cpu].last_on_cpu {
                self.last_ran.insert(prev, now);
            }
            let reload = self.sched.proc_ref(pid).cache_reload;
            let scaled = match self.last_ran.get(&pid) {
                Some(&t) => {
                    let away = now.since(t).as_nanos() as f64;
                    let window = self.cfg.cost.cache_decay_window.as_nanos() as f64;
                    reload.mul_f64((away / window).min(1.0))
                }
                None => reload,
            };
            switch_cost = self.cfg.cost.context_switch + scaled;
            self.stats.ctx_switches += 1;
            self.cpus[cpu].last_on_cpu = Some(pid);
        }
        loop {
            let ex = self.exec.remove(&pid).unwrap_or(ProcExec::Exited);
            // Profiler metadata for the chunk this phase may produce: a
            // resumed chunk carries its original metadata; a fresh phase
            // is labelled by its continuation.
            let mut carried_meta: Option<ChunkMeta> = None;
            let out = match ex {
                ProcExec::Start => {
                    let ctx = crate::syscall::AppCtx { now, pid };
                    let op = self.apps.get_mut(&pid).expect("app for process").start(ctx);
                    PhaseOut::Run {
                        dur: SimDuration::ZERO,
                        account: Account::System,
                        next: Cont::SyscallEntry(Box::new(op)),
                    }
                }
                ProcExec::Cont(cont) => {
                    let stage = cont.stage();
                    carried_meta = Some(ChunkMeta { stage, owner: None });
                    self.exec_phase(now, pid, cont)
                }
                ProcExec::Chunk {
                    remaining,
                    account,
                    charge,
                    meta,
                    next,
                } => {
                    self.pending_charge = Some(charge);
                    carried_meta = Some(meta);
                    PhaseOut::Run {
                        dur: remaining,
                        account,
                        next,
                    }
                }
                ProcExec::Blocked(c) => {
                    // Spurious pick of a blocked process — should not
                    // happen; restore and bail.
                    self.exec.insert(pid, ProcExec::Blocked(c));
                    return false;
                }
                ProcExec::Exited => {
                    self.sched.exit(pid);
                    return false;
                }
            };
            match out {
                PhaseOut::Run { dur, account, next } => {
                    let total = dur + switch_cost;
                    let charge_pid = self.pending_charge.take().unwrap_or(pid);
                    // The phase's protocol logic (if any) noted the
                    // rightful receiver; consume it here even for
                    // zero-cost transitions so it cannot leak into an
                    // unrelated later chunk.
                    let owner = self.tele.take_proto_owner().map(Pid);
                    if total.is_zero() {
                        // Zero-cost transition: immediately execute the
                        // next phase.
                        self.exec.insert(pid, ProcExec::Cont(next));
                        continue;
                    }
                    let mut meta = carried_meta.unwrap_or(ChunkMeta::stage("start"));
                    if meta.owner.is_none() {
                        meta.owner = owner;
                    }
                    self.start_chunk(
                        now,
                        cpu,
                        WorkKind::Proc { pid, next },
                        Some((charge_pid, account)),
                        meta,
                        total,
                    );
                    return true;
                }
                PhaseOut::Block { wchan, pri, resume } => {
                    self.exec.insert(pid, ProcExec::Blocked(resume));
                    self.sched.sleep(pid, wchan, pri);
                    self.cpus[cpu].last_on_cpu = Some(pid);
                    return false;
                }
                PhaseOut::Yield(cont) => {
                    self.exec.insert(pid, ProcExec::Cont(cont));
                    self.sched.requeue(pid, false);
                    return false;
                }
                PhaseOut::Done => {
                    self.exec.insert(pid, ProcExec::Exited);
                    self.sched.exit(pid);
                    return false;
                }
            }
        }
    }
}
