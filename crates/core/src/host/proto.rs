//! Shared protocol processing: the one IP/UDP/TCP delivery path executed
//! by all four architectures — in softirq context (BSD, Early-Demux), in
//! the receive system call or the APP/idle threads (LRP).
//!
//! Each function *applies the protocol logic immediately* and *returns the
//! CPU cost*; the caller turns that cost into a work chunk charged
//! according to its architecture's policy.

use super::{sock_wchan, DropPoint, Host, WC_CONNECT, WC_RECV, WC_SEND};
use crate::config::{Architecture, SynCookies};
use crate::syscall::{Errno, SockProto};
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::sockbuf::Datagram;
use lrp_stack::tcp::{cookie, Actions, ConnEvent, Segment, TcpConn};
use lrp_stack::{ReasmOutcome, SockId};
use lrp_wire::{icmp, ipv4, proto, tcp, udp, Endpoint, FlowKey, Frame};
use std::borrow::Cow;

/// Execution context of protocol processing: determines cost discounts
/// and whether the BSD PCB lookup is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ProtoCtx {
    /// BSD softirq: PCB lookup, eager costs.
    BsdSoftirq,
    /// Early-Demux softirq: socket known from the channel, no PCB lookup.
    EarlyDemuxSoftirq {
        /// The socket the channel identified.
        sock: SockId,
    },
    /// LRP: lazy context (receive syscall or idle thread) — locality
    /// discount applies; socket known from the channel.
    Lrp {
        /// The socket the channel identified.
        sock: SockId,
        /// True in the receive system call itself (full lazy benefit).
        lazy: bool,
    },
}

impl Host {
    /// Full input processing for one IP frame. Returns the CPU cost; all
    /// state changes are applied immediately.
    pub(crate) fn ip_deliver(&mut self, now: SimTime, frame: Frame, ctx: ProtoCtx) -> SimDuration {
        let d = self.ip_deliver_inner(now, frame, ctx);
        if self.tele.enabled() {
            let stage = match ctx {
                ProtoCtx::BsdSoftirq => "bsd-softirq",
                ProtoCtx::EarlyDemuxSoftirq { .. } => "ed-softirq",
                ProtoCtx::Lrp { lazy: true, .. } => "lrp-lazy",
                ProtoCtx::Lrp { .. } => "lrp-thread",
            };
            let cpu = self.cur_cpu;
            self.tele.on_proto(now, cpu, stage, d);
        }
        d
    }

    fn ip_deliver_inner(&mut self, now: SimTime, frame: Frame, ctx: ProtoCtx) -> SimDuration {
        let cost = self.cfg.cost;
        let cpu = self.cur_cpu;
        let lazy = matches!(ctx, ProtoCtx::Lrp { lazy: true, .. });
        let scale = |d: SimDuration| if lazy { cost.lazy(d) } else { d };
        let mut total = scale(cost.ip_input + cost.proto_bytes(frame.len()));
        let bytes = match frame {
            Frame::Ipv4(b) => b,
            Frame::Arp(_) => {
                // ARP handled by the proxy daemon path; count and ignore
                // here.
                self.tele.on_arp(now, cpu);
                return total;
            }
        };
        let Ok((first_hdr, first_payload)) = ipv4::parse(&bytes) else {
            self.stats.drop_at(DropPoint::BadPacket);
            self.tele.on_drop(now, cpu, DropPoint::BadPacket);
            return total;
        };
        // Fragment reassembly; whole datagrams pass straight through —
        // borrowed from the frame, so the common path copies nothing here.
        let completed: Option<(ipv4::Ipv4Header, Cow<'_, [u8]>)> = if first_hdr.is_fragment() {
            total += scale(cost.ip_reasm_per_frag);
            match self.reasm.input(now, &first_hdr, first_payload) {
                ReasmOutcome::Complete {
                    payload: p,
                    src,
                    dst,
                    proto: pr,
                } => Some((
                    ipv4::Ipv4Header::new(src, dst, pr, 0, p.len()),
                    Cow::Owned(p),
                )),
                ReasmOutcome::Incomplete => {
                    // This frame is now held by the reassembler (the
                    // completing frame inherits the delivery disposition).
                    self.tele.on_reasm_absorbed(now, cpu);
                    // In LRP, the missing fragments may already be waiting
                    // on the special NI fragment channel (§3.2).
                    if self.cfg.arch.is_lrp() {
                        let (extra, done) = self.drain_fragment_channel(now);
                        total += if lazy { cost.lazy(extra) } else { extra };
                        done.map(|(h, p)| (h, Cow::Owned(p)))
                    } else {
                        None
                    }
                }
                ReasmOutcome::Dropped => {
                    self.stats.drop_at(DropPoint::Reasm);
                    self.tele.on_drop(now, cpu, DropPoint::Reasm);
                    None
                }
            }
        } else {
            Some((first_hdr, Cow::Borrowed(first_payload)))
        };
        let Some((ih, payload)) = completed else {
            return total;
        };
        // Packets for another host: IP forwarding (BSD path — under LRP
        // the demux function already routed them to the forward channel).
        if ih.dst != self.addr {
            self.tele.on_forwarded(now, cpu);
            return total + self.do_forward(&bytes);
        }
        match ih.proto {
            proto::UDP => total + self.udp_deliver(now, &ih, &payload, ctx),
            proto::TCP => total + self.tcp_deliver(now, &ih, &payload, ctx),
            proto::ICMP => total + self.icmp_deliver(now, &ih, &payload, ctx),
            _ => {
                // Unknown protocols are dropped after IP input.
                self.stats.drop_at(DropPoint::NoSocket);
                self.tele.on_drop(now, cpu, DropPoint::NoSocket);
                total
            }
        }
    }

    /// Forwards an IP datagram: TTL handling, header rewrite, transmit
    /// queue. Returns the CPU cost.
    pub(crate) fn do_forward(&mut self, bytes: &[u8]) -> SimDuration {
        let cost = self.cfg.cost;
        if !self.forwarding_enabled {
            self.stats.drop_at(DropPoint::NoSocket);
            return cost.ip_forward;
        }
        let Ok((mut ih, payload)) = ipv4::parse(bytes) else {
            self.stats.drop_at(DropPoint::BadPacket);
            return cost.ip_forward;
        };
        if ih.ttl <= 1 {
            // TTL expired: a real router would emit ICMP Time Exceeded;
            // count the drop.
            self.stats.drop_at(DropPoint::BadPacket);
            return cost.ip_forward;
        }
        ih.ttl -= 1;
        let out = ipv4::build_datagram(&ih, payload);
        let total = cost.ip_forward + cost.ip_output + cost.driver_tx_per_pkt;
        if !self.ifq_enqueue_spanned(Frame::ipv4(out), None) {
            self.stats.drop_at(DropPoint::IfQueue);
        }
        total
    }

    /// The forwarding daemon processes one frame from the forward channel;
    /// returns the cost, or `None` when the channel is empty.
    pub(crate) fn forward_step(&mut self, now: SimTime) -> Option<SimDuration> {
        let chan = self.nic.proxies().forward?;
        if !self.nic.channel_exists(chan) {
            return None;
        }
        let frame = self.chan_dequeue(now, chan)?;
        let cost = self.cfg.cost;
        let cpu = self.cur_cpu;
        let d = match &frame {
            Frame::Ipv4(b) => {
                self.tele.on_forwarded(now, cpu);
                cost.ip_input + self.do_forward(b)
            }
            Frame::Arp(_) => {
                self.tele.on_arp(now, cpu);
                cost.ip_input
            }
        };
        Some(d)
    }

    /// Delivers an ICMP message to the proxy daemon's raw socket (§3.5).
    fn icmp_deliver(
        &mut self,
        now: SimTime,
        ih: &ipv4::Ipv4Header,
        payload: &[u8],
        ctx: ProtoCtx,
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let cpu = self.cur_cpu;
        let lazy = matches!(ctx, ProtoCtx::Lrp { lazy: true, .. });
        let scale = |d: SimDuration| if lazy { cost.lazy(d) } else { d };
        let mut total = scale(cost.udp_input) + scale(cost.csum(payload.len()));
        if lrp_wire::icmp::parse(payload).is_err() {
            self.stats.drop_at(DropPoint::BadPacket);
            self.tele.on_drop(now, cpu, DropPoint::BadPacket);
            return total;
        }
        let Some(sock) = self.icmp_sock.filter(|s| self.sock_opt(*s).is_some()) else {
            self.stats.drop_at(DropPoint::NoSocket);
            self.tele.on_drop(now, cpu, DropPoint::NoSocket);
            return total;
        };
        let rightful = self.sock(sock).owner;
        self.tele.note_proto_owner(rightful.0);
        let dgram = Datagram {
            from: Endpoint::new(ih.src, 0),
            payload: payload.into(),
        };
        if self.sock_mut(sock).rcvq.enqueue(dgram) {
            self.tele.on_icmp_delivered(now, cpu, sock.0 as u64);
            if !lazy {
                total += scale(cost.sock_enqueue);
                if self.sched.has_sleeper(sock_wchan(sock, WC_RECV)) {
                    total += cost.wakeup;
                    self.tele.on_wakeup(now, cpu, sock.0 as u64);
                    self.wake_sock(sock, WC_RECV);
                }
            }
        } else {
            self.stats.drop_at(DropPoint::SockBuf);
            self.sock_mut(sock).drops_sockbuf += 1;
            self.tele.on_drop(now, cpu, DropPoint::SockBuf);
        }
        total
    }

    /// LRP receive path helper: drains the fragment channel and delivers
    /// any completed datagram to its socket (resolved through the demux
    /// table, since the fragment channel is shared). Returns the cost.
    pub(crate) fn pump_fragment_channel(&mut self, now: SimTime) -> SimDuration {
        let (mut total, done) = self.drain_fragment_channel(now);
        if let Some((ih, payload)) = done {
            // Resolve the destination socket exactly as the demux function
            // would have, had the transport header been present.
            if ih.proto == proto::UDP {
                let sock = udp::parse(&payload).ok().and_then(|(uh, _)| {
                    let local = Endpoint::new(ih.dst, uh.dst_port);
                    let remote = Endpoint::new(ih.src, uh.src_port);
                    self.nic
                        .demux
                        .lookup_flow(proto::UDP, local, remote)
                        .and_then(|c| self.sock_of_channel(c))
                });
                if let Some(sock) = sock {
                    total +=
                        self.udp_deliver(now, &ih, &payload, ProtoCtx::Lrp { sock, lazy: false });
                    if self.sched.has_sleeper(sock_wchan(sock, WC_RECV)) {
                        let cpu = self.cur_cpu;
                        self.tele.on_wakeup(now, cpu, sock.0 as u64);
                        self.wake_sock(sock, WC_RECV);
                    }
                } else {
                    self.stats.drop_at(DropPoint::NoSocket);
                    let cpu = self.cur_cpu;
                    self.tele.on_drop(now, cpu, DropPoint::NoSocket);
                }
            } else {
                // A completed non-UDP datagram has no receiver on this
                // path; its completing frame stays with the reassembler
                // bucket.
                let cpu = self.cur_cpu;
                self.tele.on_reasm_absorbed(now, cpu);
            }
        }
        total
    }

    /// Pulls queued fragments from the special NI fragment channel into
    /// the reassembler (LRP §3.2). Returns the cost and a completed
    /// datagram if the drain finished one.
    fn drain_fragment_channel(
        &mut self,
        now: SimTime,
    ) -> (SimDuration, Option<(ipv4::Ipv4Header, Vec<u8>)>) {
        let mut total = SimDuration::ZERO;
        let mut done = None;
        let frag_chan = self.nic.fragment_channel;
        while let Some(f) = self.chan_dequeue(now, frag_chan) {
            total += self.cfg.cost.ip_reasm_per_frag;
            // Every drained frame is absorbed by the reassembler except
            // the one that completes the returned datagram — that frame's
            // disposition is decided by whoever delivers `done`.
            let mut completer = false;
            if let Frame::Ipv4(b) = f {
                if let Ok((fh, fp)) = ipv4::parse(&b) {
                    if let ReasmOutcome::Complete {
                        payload,
                        src,
                        dst,
                        proto: pr,
                    } = self.reasm.input(now, &fh, fp)
                    {
                        if done.is_none() {
                            done = Some((
                                ipv4::Ipv4Header::new(src, dst, pr, 0, payload.len()),
                                payload,
                            ));
                            completer = true;
                        }
                    }
                }
            }
            if !completer {
                let cpu = self.cur_cpu;
                self.tele.on_reasm_absorbed(now, cpu);
            }
        }
        (total, done)
    }

    fn udp_deliver(
        &mut self,
        now: SimTime,
        ih: &ipv4::Ipv4Header,
        payload: &[u8],
        ctx: ProtoCtx,
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let cpu = self.cur_cpu;
        let lazy = matches!(ctx, ProtoCtx::Lrp { lazy: true, .. });
        let scale = |d: SimDuration| if lazy { cost.lazy(d) } else { d };
        let mut total = scale(cost.udp_input);
        let Ok((uh, body)) = udp::parse(payload) else {
            self.stats.drop_at(DropPoint::BadPacket);
            self.tele.on_drop(now, cpu, DropPoint::BadPacket);
            return total;
        };
        // Checksum verification (skipped when the sender disabled it).
        if uh.checksum != 0 {
            total += scale(cost.csum(payload.len()));
            if !udp::verify_checksum(ih.src, ih.dst, payload) {
                self.stats.drop_at(DropPoint::BadPacket);
                self.tele.on_drop(now, cpu, DropPoint::BadPacket);
                return total;
            }
        }
        let local = Endpoint::new(ih.dst, uh.dst_port);
        let remote = Endpoint::new(ih.src, uh.src_port);
        // Socket resolution: PCB scan for BSD (and the redundant-lookup
        // control for LRP, Figure 5), channel identity otherwise.
        let sock = match ctx {
            ProtoCtx::BsdSoftirq => {
                let r = self.pcb.lookup(proto::UDP, local, remote);
                total += cost.pcb_lookup(r.steps);
                r.sock
            }
            ProtoCtx::EarlyDemuxSoftirq { sock } => Some(sock),
            ProtoCtx::Lrp { sock, .. } => {
                if self.cfg.redundant_pcb_lookup {
                    let r = self.pcb.lookup(proto::UDP, local, remote);
                    total += cost.pcb_lookup(r.steps);
                }
                Some(sock)
            }
        };
        let Some(sock) = sock.filter(|s| self.sock_opt(*s).is_some()) else {
            // Closed port: drop the datagram (its own ledger disposition)
            // and answer with ICMP port unreachable (RFC 1122 §4.1.3.1).
            self.stats.drop_at(DropPoint::PortUnreach);
            self.tele.on_drop(now, cpu, DropPoint::PortUnreach);
            total += scale(cost.ip_output + cost.driver_tx_per_pkt);
            // Quoted context: the offending IP header + leading 8 bytes of
            // its payload (the UDP header).
            let mut quote = ih.encode().to_vec();
            quote.extend_from_slice(&payload[..payload.len().min(8)]);
            let msg = icmp::IcmpMessage {
                kind: icmp::IcmpType::Unreachable(3),
                ident: 0,
                seq: 0,
                payload: quote,
            };
            let reply = icmp::build_datagram(self.addr, ih.src, 0, &msg);
            self.stats.icmp_unreach_sent += 1;
            if !self.ifq_enqueue_spanned(Frame::ipv4(reply), None) {
                self.stats.drop_at(DropPoint::IfQueue);
            }
            return total;
        };
        // The rightful receiver is now known; note it so the chunk that
        // carries this protocol work can record who *should* be billed.
        let rightful = self.sock(sock).owner;
        self.tele.note_proto_owner(rightful.0);
        let dgram = Datagram {
            from: remote,
            payload: body.into(),
        };
        let nbytes = dgram.payload.len() as u64;
        if self.sock_mut(sock).rcvq.enqueue(dgram) {
            self.stats.udp_delivered += 1;
            self.stats.udp_delivered_bytes += nbytes;
            self.tele.on_udp_delivered(now, cpu, sock.0 as u64);
            if !lazy {
                total += scale(cost.sock_enqueue);
                // Wake a blocked receiver (sowakeup).
                if self.sched.has_sleeper(sock_wchan(sock, WC_RECV)) {
                    total += cost.wakeup;
                    self.tele.on_wakeup(now, cpu, sock.0 as u64);
                    for w in self.sched.wakeup(sock_wchan(sock, WC_RECV)) {
                        self.unblock(w);
                    }
                }
            }
        } else {
            // BSD pays everything above and only now discovers the full
            // socket queue — the waste LRP eliminates.
            self.stats.drop_at(DropPoint::SockBuf);
            self.sock_mut(sock).drops_sockbuf += 1;
            self.tele.on_drop(now, cpu, DropPoint::SockBuf);
        }
        total
    }

    fn tcp_deliver(
        &mut self,
        now: SimTime,
        ih: &ipv4::Ipv4Header,
        payload: &[u8],
        ctx: ProtoCtx,
    ) -> SimDuration {
        // The whole frame is charged to TCP input from here on; per-drop
        // ledger granularity stops at the transport boundary (segments are
        // not 1:1 with user-visible deliveries).
        {
            let cpu = self.cur_cpu;
            self.tele.on_tcp_frame(now, cpu);
        }
        let cost = self.cfg.cost;
        let mut total = cost.csum(payload.len());
        if !tcp::verify_checksum(ih.src, ih.dst, payload) {
            self.stats.drop_at(DropPoint::BadPacket);
            return total;
        }
        let Ok((th, body)) = tcp::parse(payload) else {
            self.stats.drop_at(DropPoint::BadPacket);
            return total;
        };
        let local = Endpoint::new(ih.dst, th.dst_port);
        let remote = Endpoint::new(ih.src, th.src_port);
        let sock = match ctx {
            ProtoCtx::BsdSoftirq => {
                let r = self.pcb.lookup(proto::TCP, local, remote);
                total += cost.pcb_lookup(r.steps);
                r.sock
            }
            ProtoCtx::EarlyDemuxSoftirq { sock } => Some(sock),
            ProtoCtx::Lrp { sock, .. } => {
                if self.cfg.redundant_pcb_lookup {
                    let r = self.pcb.lookup(proto::TCP, local, remote);
                    total += cost.pcb_lookup(r.steps);
                }
                Some(sock)
            }
        };
        let Some(sock) = sock.filter(|s| self.sock_opt(*s).is_some()) else {
            // No socket: a RST would be generated by a real stack; cost
            // only.
            self.stats.drop_at(DropPoint::NoSocket);
            return total + cost.tcp_input;
        };
        // The rightful receiver is now known; note it for attribution.
        let rightful = self.sock(sock).owner;
        self.tele.note_proto_owner(rightful.0);
        // Listening socket: SYN handling.
        if self.sock(sock).listener.is_some() && th.has(tcp::flags::SYN) && !th.has(tcp::flags::ACK)
        {
            return total + self.tcp_handle_syn(now, sock, local, remote, &th);
        }
        // A bare ACK at a *listening* socket with cookies enabled is the
        // returning half of a stateless handshake: no child exists yet —
        // the cookie in the ACK field *is* the connection state.
        if self.cfg.syn_cookies != SynCookies::Off
            && self.sock(sock).listener.is_some()
            && th.has(tcp::flags::ACK)
            && !th.has(tcp::flags::SYN)
            && !th.has(tcp::flags::RST)
        {
            return total + self.tcp_cookie_ack(now, sock, local, remote, &th, body);
        }
        // Established (or embryonic) connection.
        if self.sock(sock).tcp.is_none() {
            self.stats.drop_at(DropPoint::NoSocket);
            return total + cost.tcp_input;
        }
        total += cost.tcp_input;
        let mut conn = self.sock_mut(sock).tcp.take().expect("checked");
        let actions = conn.on_segment(now, &th, body);
        let delivered = conn.stats.bytes_in;
        self.sock_mut(sock).tcp = Some(conn);
        total += self.apply_tcp_actions(now, sock, actions);
        let _ = delivered;
        // TIME_WAIT channel reclamation (NI-LRP §4.2).
        self.maybe_reclaim_channel(sock);
        total
    }

    /// SYN arrival at a listening socket: backlog admission, child
    /// creation, SYN|ACK transmission.
    pub(crate) fn tcp_handle_syn(
        &mut self,
        now: SimTime,
        lsock: SockId,
        local: Endpoint,
        remote: Endpoint,
        th: &tcp::TcpHeader,
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let mut total = cost.tcp_syn;
        // Duplicate SYN for an embryonic connection? Find the child by
        // exact PCB key.
        let exact = self.pcb.lookup(proto::TCP, local, remote);
        if let Some(child) = exact.sock {
            if child != lsock {
                // Retransmitted SYN: let the child handle it.
                if self.sock_opt(child).and_then(|s| s.tcp.as_ref()).is_some() {
                    let mut conn = self.sock_mut(child).tcp.take().expect("checked");
                    let actions = conn.on_segment(now, th, &[]);
                    self.sock_mut(child).tcp = Some(conn);
                    total += self.apply_tcp_actions(now, child, actions);
                }
                return total;
            }
        }
        let can = self
            .sock(lsock)
            .listener
            .as_ref()
            .expect("listener")
            .can_accept_syn();
        // Stateless SYN cookies: answer with a SYN|ACK whose sequence
        // number encodes the connection (no child socket, no half-open
        // entry — nothing for a flood to exhaust). In `Auto` mode this
        // engages only once the backlog is full, and takes precedence
        // over the SYN-cache eviction below: dropping *state* beats
        // recycling it when the flood outruns the table.
        let engaged = match self.cfg.syn_cookies {
            SynCookies::Always => true,
            SynCookies::Auto => !can,
            SynCookies::Off => false,
        };
        if engaged {
            return total + self.tcp_send_cookie_synack(lsock, local, remote, th, now);
        }
        if !can {
            // SYN-cache: evict the oldest half-open child to admit the
            // fresh SYN (bounded table, oldest-first), instead of letting
            // a flood of never-completing handshakes freeze the backlog.
            let victim = if self.cfg.syn_cache {
                self.sock(lsock)
                    .listener
                    .as_ref()
                    .expect("listener")
                    .oldest_half_open()
            } else {
                None
            };
            if let Some(victim) = victim {
                let l = self.sock_mut(lsock).listener.as_mut().expect("listener");
                l.untrack_half_open(victim);
                l.on_syn_cache_evict();
                if self.sock_opt(victim).is_some() {
                    // Drop the embryonic connection state silently (no
                    // RST — the peer, likely spoofed, retransmits or
                    // times out) and tear the child down; the orphan
                    // path releases its backlog slot.
                    self.sock_mut(victim).tcp = None;
                    self.teardown_tcp_sock(victim);
                }
                // Fall through to admit the new SYN below.
            } else {
                self.sock_mut(lsock)
                    .listener
                    .as_mut()
                    .expect("listener")
                    .on_syn_dropped();
                self.stats.drop_at(DropPoint::Backlog);
                let cpu = self.cur_cpu;
                self.tele.on_backlog_drop(now, cpu);
                return total;
            }
        }
        // Admit: create the child socket + connection.
        let owner = self.sock(lsock).owner;
        let child = self.alloc_sock(owner, SockProto::Tcp);
        let iss = self.next_iss();
        let (conn, actions) = TcpConn::accept_syn(self.tcp_config(), local, remote, iss, th, now);
        {
            let s = self.sock_mut(child);
            s.local = Some(local);
            s.remote = Some(remote);
            s.tcp = Some(conn);
            s.parent = Some(lsock);
        }
        {
            let l = self.sock_mut(lsock).listener.as_mut().expect("listener");
            l.on_syn_admitted();
            l.track_half_open(child);
        }
        // PCB entry (exact match) for the child.
        let key = FlowKey::new(proto::TCP, local, remote);
        let _ = self.pcb.insert(key, child);
        // LRP / Early-Demux: give the child its own NI channel + filter,
        // with the demand interrupt armed for the APP thread.
        if self.cfg.arch != Architecture::Bsd {
            let chan = self.nic.create_default_channel();
            self.sock_mut(child).chan = Some(chan);
            self.bind_channel(chan, child);
            let _ = self.nic.demux.register(key, chan);
            self.nic.channel_mut(chan).intr_requested = true;
        }
        total += self.apply_tcp_actions(now, child, actions);
        total
    }

    /// Emits a stateless cookie SYN|ACK for a SYN at `lsock`. The segment
    /// is built by hand — there is no child socket to transmit through;
    /// the sequence number carries the keyed hash of the 4-tuple, the
    /// quantized peer MSS and a coarse timestamp (see
    /// [`lrp_stack::tcp::cookie`]). Returns the output cost.
    fn tcp_send_cookie_synack(
        &mut self,
        lsock: SockId,
        local: Endpoint,
        remote: Endpoint,
        th: &tcp::TcpHeader,
        now: SimTime,
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let key = cookie::host_key(self.addr);
        let hdr = tcp::TcpHeader {
            src_port: local.port,
            dst_port: remote.port,
            seq: cookie::encode(key, local, remote, th.mss, now),
            ack: th.seq.wrapping_add(1),
            flags: tcp::flags::SYN | tcp::flags::ACK,
            // Advertise what a fresh child would: an empty receive buffer.
            window: self.cfg.tcp.rcv_buf.min(65_535) as u16,
            mss: Some(self.cfg.tcp.mss),
        };
        let ident = self.next_ident();
        let dgram = tcp::build_datagram(local.addr, remote.addr, &hdr, ident, &[]);
        if !self.ifq_enqueue_spanned(Frame::ipv4(dgram), None) {
            self.stats.drop_at(DropPoint::IfQueue);
        }
        self.sock_mut(lsock)
            .listener
            .as_mut()
            .expect("listener")
            .on_cookie_sent();
        cost.tcp_output + cost.csum(20) + cost.ip_output + cost.driver_tx_per_pkt
    }

    /// Handshake ACK returning to a listening socket under SYN cookies:
    /// validates the cookie (ACK − 1) and, on success, fabricates the
    /// fully-established child the SYN|ACK never instantiated. The child
    /// skips the SYN queue entirely — only the accept queue bounds it.
    fn tcp_cookie_ack(
        &mut self,
        now: SimTime,
        lsock: SockId,
        local: Endpoint,
        remote: Endpoint,
        th: &tcp::TcpHeader,
        body: &[u8],
    ) -> SimDuration {
        let cost = self.cfg.cost;
        let mut total = cost.tcp_input;
        let cpu = self.cur_cpu;
        // An exact-match child already owns this flow (e.g. the peer
        // retransmitted the ACK after the first copy established it):
        // hand the segment over rather than re-deriving a connection.
        let exact = self.pcb.lookup(proto::TCP, local, remote);
        if let Some(child) = exact.sock {
            if child != lsock {
                if self.sock_opt(child).and_then(|s| s.tcp.as_ref()).is_some() {
                    let mut conn = self.sock_mut(child).tcp.take().expect("checked");
                    let actions = conn.on_segment(now, th, body);
                    self.sock_mut(child).tcp = Some(conn);
                    total += self.apply_tcp_actions(now, child, actions);
                }
                return total;
            }
        }
        let key = cookie::host_key(self.addr);
        let Some(mss) = cookie::decode(key, local, remote, th.ack.wrapping_sub(1), now) else {
            // Forged or expired cookie: silent drop, separately ledgered —
            // under a flood this is the common case and must stay cheap.
            self.sock_mut(lsock)
                .listener
                .as_mut()
                .expect("listener")
                .on_cookie_rejected();
            self.tele.on_cookie_rejected(now, cpu);
            return total;
        };
        // Valid cookie, but the accept queue still bounds admission: a
        // listener nobody accepts from must not grow without limit.
        {
            let l = self.sock(lsock).listener.as_ref().expect("listener");
            if l.accept_queue >= l.backlog {
                self.sock_mut(lsock)
                    .listener
                    .as_mut()
                    .expect("listener")
                    .on_syn_dropped();
                self.stats.drop_at(DropPoint::Backlog);
                self.tele.on_backlog_drop(now, cpu);
                return total;
            }
        }
        // Reconstruct the child the stateless SYN|ACK stood in for.
        let owner = self.sock(lsock).owner;
        let child = self.alloc_sock(owner, SockProto::Tcp);
        let conn = TcpConn::cookie_established(self.tcp_config(), local, remote, th, mss, now);
        {
            let s = self.sock_mut(child);
            s.local = Some(local);
            s.remote = Some(remote);
            s.tcp = Some(conn);
            s.parent = Some(lsock);
            // Established from birth: never counted into the SYN queue,
            // reported straight into the accept queue below.
            s.established_reported = true;
        }
        let key = FlowKey::new(proto::TCP, local, remote);
        let _ = self.pcb.insert(key, child);
        if self.cfg.arch != Architecture::Bsd {
            let chan = self.nic.create_default_channel();
            self.sock_mut(child).chan = Some(chan);
            self.bind_channel(chan, child);
            let _ = self.nic.demux.register(key, chan);
            self.nic.channel_mut(chan).intr_requested = true;
        }
        self.sock_mut(lsock)
            .listener
            .as_mut()
            .expect("listener")
            .on_cookie_child_established();
        self.sock_mut(lsock).accept_q.push_back(child);
        self.stats.tcp_accepted += 1;
        self.tele.on_cookie_validated(now, cpu);
        self.wake_sock(lsock, super::WC_ACCEPT);
        // Any data riding on the ACK is processed by the new connection.
        let mut conn = self.sock_mut(child).tcp.take().expect("just set");
        let actions = conn.on_segment(now, th, body);
        self.sock_mut(child).tcp = Some(conn);
        total += self.apply_tcp_actions(now, child, actions);
        total
    }

    /// Transmits segments and dispatches events produced by a connection.
    /// Returns the CPU cost of output processing.
    pub(crate) fn apply_tcp_actions(
        &mut self,
        now: SimTime,
        sock: SockId,
        actions: Actions,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        total += self.tx_segments(sock, &actions.segments);
        for ev in &actions.events {
            self.handle_conn_event(now, sock, *ev);
        }
        total
    }

    /// Builds and enqueues outgoing TCP segments; returns output cost.
    pub(crate) fn tx_segments(&mut self, sock: SockId, segments: &[Segment]) -> SimDuration {
        let cost = self.cfg.cost;
        let mut total = SimDuration::ZERO;
        if segments.is_empty() {
            return total;
        }
        let (src, dst) = {
            let s = self.sock(sock);
            (
                s.local.expect("connected socket has local"),
                s.remote.expect("connected socket has remote"),
            )
        };
        for seg in segments {
            let ident = self.next_ident();
            let dgram = tcp::build_datagram(src.addr, dst.addr, &seg.hdr, ident, &seg.payload);
            total += cost.tcp_output
                + cost.csum(seg.payload.len() + 20)
                + cost.ip_output
                + cost.driver_tx_per_pkt;
            if !self.ifq_enqueue_spanned(Frame::ipv4(dgram), None) {
                self.stats.drop_at(DropPoint::IfQueue);
            }
        }
        total
    }

    /// Reacts to a connection event: wakeups, accept-queue movement,
    /// teardown.
    pub(crate) fn handle_conn_event(&mut self, now: SimTime, sock: SockId, ev: ConnEvent) {
        let _ = now;
        match ev {
            ConnEvent::Established => {
                let parent = self.sock(sock).parent;
                if let Some(p) = parent {
                    if !self.sock(sock).established_reported {
                        self.sock_mut(sock).established_reported = true;
                        if self.sock_opt(p).is_some() {
                            self.sock_mut(p).accept_q.push_back(sock);
                            if let Some(l) = self.sock_mut(p).listener.as_mut() {
                                l.on_child_established();
                                l.untrack_half_open(sock);
                            }
                            self.stats.tcp_accepted += 1;
                            self.wake_sock(p, super::WC_ACCEPT);
                        }
                    }
                } else {
                    self.wake_sock(sock, WC_CONNECT);
                }
            }
            ConnEvent::DataReady => self.wake_sock(sock, WC_RECV),
            ConnEvent::SendSpace => self.wake_sock(sock, WC_SEND),
            ConnEvent::PeerClosed => self.wake_sock(sock, WC_RECV),
            ConnEvent::Reset | ConnEvent::TimedOut => {
                // Record why the connection died *before* waking anyone,
                // so recv/send/connect report the error instead of
                // silently parking (or mis-reporting EOF).
                let errno = if matches!(ev, ConnEvent::Reset) {
                    Errno::ConnReset
                } else {
                    Errno::TimedOut
                };
                let s = self.sock_mut(sock);
                if s.err.is_none() {
                    s.err = Some(errno);
                }
                self.wake_sock(sock, WC_RECV);
                self.wake_sock(sock, WC_SEND);
                self.wake_sock(sock, WC_CONNECT);
            }
            ConnEvent::Closed => {
                self.wake_sock(sock, WC_RECV);
                self.wake_sock(sock, WC_SEND);
                self.wake_sock(sock, WC_CONNECT);
                self.teardown_tcp_sock(sock);
            }
        }
    }

    /// Wakes all sleepers on a socket wait channel.
    pub(crate) fn wake_sock(&mut self, sock: SockId, kind: u64) {
        for w in self.sched.wakeup(sock_wchan(sock, kind)) {
            self.unblock(w);
        }
    }

    /// NI-LRP: reclaim the NI channel of a connection entering TIME_WAIT.
    pub(crate) fn maybe_reclaim_channel(&mut self, sock: SockId) {
        if self.cfg.arch != Architecture::NiLrp || !self.cfg.time_wait_channel_reclaim {
            return;
        }
        let Some(s) = self.sock_opt(sock) else { return };
        if s.chan_reclaimed || !s.tcp.as_ref().is_some_and(|t| t.in_time_wait()) {
            return;
        }
        let (Some(chan), Some(local), Some(remote)) = (s.chan, s.local, s.remote) else {
            return;
        };
        let key = FlowKey::new(proto::TCP, local, remote);
        let _ = self.nic.demux.unregister(&key);
        self.destroy_channel_flushed(chan);
        self.chan_to_sock.remove(&chan);
        let s = self.sock_mut(sock);
        s.chan = None;
        s.chan_reclaimed = true;
    }

    /// Final teardown once a connection leaves the state machine: removes
    /// PCB entries, channels and — if the app already closed it — the
    /// socket itself.
    pub(crate) fn teardown_tcp_sock(&mut self, sock: SockId) {
        let Some(s) = self.sock_opt(sock) else { return };
        let parent = s.parent;
        let reported = s.established_reported;
        let local = s.local;
        let remote = s.remote;
        let chan = s.chan;
        let closed = s.closed_by_app;
        // Embryonic child died before the handshake completed.
        if let Some(p) = parent {
            if !reported {
                if let Some(ps) = self.sockets.get_mut(p.0 as usize).and_then(|x| x.as_mut()) {
                    if let Some(l) = ps.listener.as_mut() {
                        l.on_child_failed();
                        l.untrack_half_open(sock);
                    }
                }
            }
        }
        if let (Some(l), Some(r)) = (local, remote) {
            let key = FlowKey::new(proto::TCP, l, r);
            self.pcb.remove(&key);
            if self.cfg.arch != Architecture::Bsd {
                let _ = self.nic.demux.unregister(&key);
            }
        }
        if let Some(c) = chan {
            if self.nic.channel_exists(c) {
                self.destroy_channel_flushed(c);
            }
            self.chan_to_sock.remove(&c);
            self.sock_mut(sock).chan = None;
        }
        // Free the slot only when the application has also closed it, so
        // in-flight syscall continuations never dangle. An orphaned child
        // (never accepted) is freed immediately.
        let orphan = parent.is_some() && !reported;
        if closed || orphan {
            self.free_socket(sock);
        }
    }

    /// Releases a socket table slot and all remaining kernel state.
    pub(crate) fn free_socket(&mut self, sock: SockId) {
        let Some(s) = self.sockets.get_mut(sock.0 as usize).and_then(|x| x.take()) else {
            return;
        };
        self.tele.on_sock_close(sock.0 as u64);
        if let Some(conn) = &s.tcp {
            self.stats.tcp_closed.absorb(&conn.stats);
        }
        self.pcb.remove_socket(sock);
        if s.proto == SockProto::Icmp && self.icmp_sock == Some(sock) {
            self.icmp_sock = None;
        }
        if let Some(l) = s.local {
            if s.proto == SockProto::Udp {
                let key = FlowKey::listening(proto::UDP, l);
                self.pcb.remove(&key);
                if self.cfg.arch != Architecture::Bsd {
                    let _ = self.nic.demux.unregister(&key);
                }
            } else if s.listener.is_some() || s.parent.is_none() {
                // The wildcard key belongs to whoever *bound* the port: a
                // listener, or an actively-opened socket (implicit bind at
                // connect). A passive child shares `local` with its
                // listener and must not tear the listener's filter down.
                let key = FlowKey::listening(proto::TCP, l);
                if self.cfg.arch != Architecture::Bsd {
                    let _ = self.nic.demux.unregister(&key);
                }
            }
        }
        if let Some(c) = s.chan {
            if self.nic.channel_exists(c) {
                self.destroy_channel_flushed(c);
            }
            self.chan_to_sock.remove(&c);
        }
        self.live_socks.remove(&sock);
        self.tcp_timer_work.retain(|&x| x != sock);
        self.ed_pending.retain(|&x| x != sock);
    }

    /// Processes one due TCP timer for `sock`; returns the CPU cost.
    pub(crate) fn run_tcp_timer(&mut self, now: SimTime, sock: SockId) -> SimDuration {
        let Some(s) = self.sock_opt(sock) else {
            return SimDuration::ZERO;
        };
        if s.tcp.is_none() {
            return SimDuration::ZERO;
        }
        let mut conn = self.sock_mut(sock).tcp.take().expect("checked");
        let actions = conn.on_timer(now);
        self.sock_mut(sock).tcp = Some(conn);
        let base = SimDuration::from_micros(5);
        base + self.apply_tcp_actions(now, sock, actions)
    }
}
