//! The paper's contribution: a simulated server host implementing four
//! network-subsystem architectures — 4.4BSD, Early-Demux, SOFT-LRP and
//! NI-LRP — over shared protocol code, plus the [`World`] that connects
//! hosts with links and traffic injectors.
//!
//! The four architectures differ in exactly the dimensions the paper
//! identifies (§2.2/§3):
//!
//! | | demux | protocol processing | early discard | CPU charging |
//! |---|---|---|---|---|
//! | **BSD** | PCB lookup in softirq | eager, softirq priority | none (socket queue, after full processing) | interrupted process |
//! | **Early-Demux** | host interrupt handler | eager, softirq priority | at interrupt, socket-queue feedback | interrupted process |
//! | **SOFT-LRP** | host interrupt handler | lazy: receive syscall (UDP), APP thread at owner priority (TCP) | at interrupt, channel queue | receiving process |
//! | **NI-LRP** | NIC "firmware" (zero host cost) | lazy, as SOFT-LRP | on the NIC, before any host work | receiving process |
//!
//! See `DESIGN.md` at the repository root for the experiment index and the
//! calibration of [`CostModel`].

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod host;
pub mod hostfault;
pub mod syscall;
pub mod telemetry;
pub mod watchdog;
pub mod world;

pub use config::{Architecture, HostConfig, SynCookies};
pub use cost::CostModel;
pub use host::{DropPoint, Host, HostStats};
pub use hostfault::{CrashEvent, FaultKind, HostFaultPlan};
pub use syscall::{
    AppCtx, AppLogic, Errno, ListenStats, SockProto, SockStats, SyscallOp, SyscallRet,
};
pub use telemetry::{
    PacketLedger, SpanEvent, SpanId, Telemetry, DEFAULT_TRACE_CAP, TIMELINE_COLUMNS,
};
pub use watchdog::{AnomalyEvent, AnomalyKind, Watchdog, WatchdogSample};
pub use world::{Event, World};

pub use lrp_sched::Pid;
pub use lrp_stack::tcp::CcAlgo;
pub use lrp_stack::SockId;
