//! Host configuration: architecture selection and kernel parameters.

use crate::cost::CostModel;
use lrp_sim::SimDuration;
use lrp_stack::tcp::{CcAlgo, TcpConfig};

/// The four network-subsystem architectures compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// 4.4BSD: shared IP queue, eager softirq protocol processing, PCB
    /// lookup, interrupt time charged to whoever runs.
    Bsd,
    /// Early demultiplexing + early discard, but eager softirq processing
    /// and BSD accounting (the paper's control showing demux alone is not
    /// enough).
    EarlyDemux,
    /// LRP with demultiplexing in the host interrupt handler.
    SoftLrp,
    /// LRP with demultiplexing on the network interface.
    NiLrp,
}

impl Architecture {
    /// True for the two LRP variants.
    pub fn is_lrp(self) -> bool {
        matches!(self, Architecture::SoftLrp | Architecture::NiLrp)
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Bsd => "4.4BSD",
            Architecture::EarlyDemux => "Early-Demux",
            Architecture::SoftLrp => "SOFT-LRP",
            Architecture::NiLrp => "NI-LRP",
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Stateless SYN-cookie policy (see `lrp_stack::tcp::cookie`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynCookies {
    /// Never mint cookies — bit-identical to the pre-cookie stack.
    Off,
    /// Mint cookies only while the listen backlog is full (the classic
    /// high-watermark trigger): normal handshakes keep full fidelity,
    /// floods fall back to stateless operation. Takes precedence over
    /// the SYN-cache eviction when both are enabled.
    Auto,
    /// Mint a cookie for every SYN (maximum robustness, quantized MSS).
    Always,
}

/// Full host configuration.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Which architecture the kernel runs.
    pub arch: Architecture,
    /// CPU cost model.
    pub cost: CostModel,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Congestion controller every TCP connection on this host is created
    /// with (stamped into [`TcpConfig::cc`] at connection creation). The
    /// default, NewReno, is bit-identical to the pre-modular stack.
    pub tcp_cc: CcAlgo,
    /// Shared IP queue limit (BSD; `ipqmaxlen` = 50 in 4.4BSD).
    pub ip_queue_limit: usize,
    /// NI channel receive-queue limit, in packets.
    pub channel_limit: usize,
    /// UDP socket receive-buffer limit, in bytes.
    pub sockbuf_limit: usize,
    /// Compute UDP checksums (the paper's UDP tests disable them).
    pub udp_checksum: bool,
    /// LRP: perform the redundant PCB lookup anyway (the paper's Figure 5
    /// control, eliminating demux-efficiency bias).
    pub redundant_pcb_lookup: bool,
    /// LRP: run the minimal-priority idle protocol thread (§3.3).
    pub idle_thread: bool,
    /// LRP: run the asynchronous protocol processing (APP) thread for TCP
    /// (§3.4). Disabling it is the paper's thought experiment: receiver
    /// processing only in `recv` context, at most one congestion window
    /// per receive call.
    pub tcp_app_processing: bool,
    /// NI-LRP: reclaim a connection's NI channel when it enters TIME_WAIT
    /// (§4.2 scaling discussion).
    pub time_wait_channel_reclaim: bool,
    /// Maximum sockets/channels.
    pub max_sockets: usize,
    /// Link MTU (ATM LAN: 9180).
    pub mtu: usize,
    /// Statclock tick.
    pub tick: SimDuration,
    /// Round-robin quantum.
    pub quantum: SimDuration,
    /// Number of simulated CPUs. 1 (the default) reproduces the classic
    /// uniprocessor host bit-for-bit; larger values enable per-CPU run
    /// queues, multi-queue RX steering and IPI-based cross-CPU wakeups.
    pub ncpus: usize,
    /// Record telemetry (packet-lifecycle trace, per-stage latency
    /// histograms, frame-disposition ledger). Pure observation: the cost
    /// model, scheduling decisions and all simulated outcomes are
    /// bit-identical with telemetry on or off.
    pub telemetry: bool,
    /// SYN-flood defense: when the listen backlog's half-open budget is
    /// full, evict the *oldest* half-open connection to admit the new SYN
    /// (a minimal SYN-cache) instead of dropping it. Off by default —
    /// classic behaviour drops the new SYN at the backlog.
    pub syn_cache: bool,
    /// Stateless SYN cookies ([`SynCookies::Off`] by default). In `Auto`
    /// mode a full backlog switches the listener to stateless SYN|ACKs;
    /// the returning ACK re-derives the connection from the cookie. Off
    /// takes no new code paths — goldens are bit-identical.
    pub syn_cookies: SynCookies,
    /// Maximum receive-ring frames the driver hands to the kernel per
    /// interrupt (BSD / SOFT-LRP / Early-Demux). Without interrupt
    /// coalescing the ring holds exactly one frame when the interrupt
    /// fires, so any value ≥ 1 is behaviour-identical; under coalescing
    /// the batch is what lets held frames ride along. Per-frame driver
    /// cost is charged for every frame in the batch.
    pub rx_batch: usize,
}

impl HostConfig {
    /// Defaults for the given architecture.
    pub fn new(arch: Architecture) -> Self {
        HostConfig {
            arch,
            cost: CostModel::sparc20(),
            tcp: TcpConfig::default(),
            tcp_cc: CcAlgo::NewReno,
            ip_queue_limit: 50,
            channel_limit: 64,
            sockbuf_limit: 41_600,
            udp_checksum: false,
            redundant_pcb_lookup: false,
            idle_thread: true,
            tcp_app_processing: true,
            time_wait_channel_reclaim: true,
            max_sockets: 4096,
            mtu: 9180,
            tick: SimDuration::from_millis(10),
            quantum: SimDuration::from_millis(100),
            ncpus: 1,
            telemetry: false,
            syn_cache: false,
            syn_cookies: SynCookies::Off,
            rx_batch: 16,
        }
    }

    /// The given architecture with `ncpus` simulated CPUs.
    pub fn smp(arch: Architecture, ncpus: usize) -> Self {
        let mut c = Self::new(arch);
        c.ncpus = ncpus;
        c
    }

    /// The SunOS + FORE-driver baseline of Table 1: BSD architecture with
    /// the slow vendor driver.
    pub fn sunos_fore() -> Self {
        let mut c = Self::new(Architecture::Bsd);
        c.cost = CostModel::sunos_fore();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Architecture::Bsd.to_string(), "4.4BSD");
        assert_eq!(Architecture::NiLrp.to_string(), "NI-LRP");
        assert!(Architecture::SoftLrp.is_lrp());
        assert!(!Architecture::EarlyDemux.is_lrp());
    }

    #[test]
    fn defaults_sane() {
        let c = HostConfig::new(Architecture::SoftLrp);
        assert_eq!(c.ip_queue_limit, 50);
        assert!(c.channel_limit > 0);
        assert!(c.mtu >= 9000, "ATM LAN MTU");
    }
}
