//! The simulation world: hosts, links, injectors and the global event
//! loop.

use crate::host::Host;
use crate::telemetry::SpanId;
use lrp_net::{FaultPlan, FaultStats, Injector, LinkConfig, LinkFaults, TxLink};
use lrp_sim::{EventQueue, SimDuration, SimTime};
use lrp_wire::{ipv4, Frame, Ipv4Addr};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Event tracing (`LRP_TRACE=1`), checked once per process.
fn trace_enabled() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var("LRP_TRACE").is_ok())
}

/// One captured frame: `(arrival time, destination host, summary)`.
pub type CaptureEntry = (SimTime, usize, String);

/// Global simulation events.
#[derive(Debug)]
pub enum Event {
    /// A frame arrives at a host's NIC, with its causal-trace span (if
    /// any). The span is observational: it never alters simulation state.
    Frame(usize, Frame, Option<SpanId>),
    /// A work chunk completes on `(host, cpu)` (generation-guarded).
    Cpu(usize, usize, u64),
    /// A host kernel timer may be due.
    Timer(usize),
    /// Statclock tick for a host.
    Tick(usize),
    /// A host's transmit link became free.
    LinkFree(usize),
    /// A traffic injector fires.
    Inject(usize),
}

/// The world: owns hosts, one uplink per host, routing and injectors.
///
/// # Examples
///
/// ```
/// use lrp_core::{Architecture, Host, HostConfig, World};
/// use lrp_sim::SimTime;
///
/// let mut world = World::with_defaults();
/// world.add_host(Host::new(
///     HostConfig::new(Architecture::NiLrp),
///     "10.0.0.1".parse().unwrap(),
/// ));
/// world.run_until(SimTime::from_millis(100));
/// assert!(world.now >= SimTime::from_millis(100));
/// ```
pub struct World {
    /// Current simulated time.
    pub now: SimTime,
    /// The hosts, indexed by id.
    pub hosts: Vec<Host>,
    links: Vec<TxLink>,
    routes: HashMap<Ipv4Addr, usize>,
    /// Destinations reachable only through a gateway host: frames from any
    /// host other than the gateway are delivered to the gateway instead.
    via_routes: HashMap<Ipv4Addr, usize>,
    injectors: Vec<(usize, Injector)>,
    /// Per destination host: the fault stage its incoming frames pass
    /// through. `None` (the default) bypasses fault injection entirely.
    faults: Vec<Option<LinkFaults>>,
    queue: EventQueue<Event>,
    /// Per host: the earliest Timer event already scheduled.
    timer_at: Vec<SimTime>,
    /// Per host, per CPU: the generation last scheduled.
    cpu_gen: Vec<Vec<u64>>,
    link_cfg: LinkConfig,
    tick: SimDuration,
    started: bool,
    /// Events processed by `run_until` (all kinds), for wall-clock
    /// benchmarks (`bench_sim`): events/sec = events_processed / elapsed.
    events: u64,
    /// Capture tap: when enabled, every frame delivered to a host is
    /// recorded as `(time, host, summary)` up to the configured limit.
    capture: Option<(usize, Vec<CaptureEntry>)>,
}

impl World {
    /// Creates an empty world with the given link configuration.
    pub fn new(link_cfg: LinkConfig) -> Self {
        World {
            now: SimTime::ZERO,
            hosts: Vec::new(),
            links: Vec::new(),
            routes: HashMap::new(),
            via_routes: HashMap::new(),
            injectors: Vec::new(),
            faults: Vec::new(),
            queue: EventQueue::new(),
            timer_at: Vec::new(),
            cpu_gen: Vec::new(),
            link_cfg,
            tick: SimDuration::from_millis(10),
            started: false,
            events: 0,
            capture: None,
        }
    }

    /// Total events the event loop has dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Creates a world with the default 155 Mbit/s ATM-like links.
    pub fn with_defaults() -> Self {
        Self::new(LinkConfig::default())
    }

    /// Adds a host; returns its index.
    pub fn add_host(&mut self, host: Host) -> usize {
        let idx = self.hosts.len();
        self.routes.insert(host.addr, idx);
        self.cpu_gen.push(vec![0; host.ncpus()]);
        self.hosts.push(host);
        self.links.push(TxLink::new(self.link_cfg));
        self.faults.push(None);
        self.timer_at.push(SimTime::NEVER);
        idx
    }

    /// Installs a fault plan on the link *into* `host`: every frame bound
    /// for it (from other hosts' links and from injectors) passes through
    /// the plan's loss/corruption/duplication/reordering/pause stage at
    /// delivery time. An inert plan ([`FaultPlan::is_none`]) removes the
    /// stage, leaving the event stream bit-identical to a fault-free
    /// world.
    pub fn set_link_faults(&mut self, host: usize, plan: FaultPlan) {
        assert!(host < self.hosts.len(), "no host {host}");
        self.faults[host] = (!plan.is_none()).then(|| LinkFaults::new(plan));
    }

    /// Fault counters for the link into `host`, if a plan is installed.
    pub fn link_fault_stats(&self, host: usize) -> Option<&FaultStats> {
        self.faults.get(host)?.as_ref().map(|f| &f.stats)
    }

    /// Schedules a frame's arrival at `dst`, passing it through the
    /// destination's fault stage if one is installed.
    fn deliver(&mut self, arrival: SimTime, dst: usize, frame: Frame, span: Option<SpanId>) {
        match &mut self.faults[dst] {
            None => {
                self.queue.schedule(arrival, Event::Frame(dst, frame, span));
            }
            Some(stage) => {
                // Duplicates keep the original span: they are causally the
                // same request.
                for (at, f) in stage.apply(arrival, frame) {
                    self.queue.schedule(at, Event::Frame(dst, f, span));
                }
            }
        }
    }

    /// Enables the capture tap: up to `limit` delivered frames are
    /// recorded as one-line summaries (`Frame::describe`), like a tcpdump
    /// for the simulation. For debugging and examples — captures cost
    /// wall-clock time, not simulated time.
    pub fn enable_capture(&mut self, limit: usize) {
        self.capture = Some((limit, Vec::new()));
    }

    /// The captured frames so far: `(arrival time, destination host,
    /// summary)`.
    pub fn capture(&self) -> &[CaptureEntry] {
        self.capture
            .as_ref()
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Declares `dst` to be reachable only via the `gateway` host: frames
    /// for `dst` emitted by any other host are delivered to the gateway,
    /// which must forward them (see `Host::enable_forwarding`).
    pub fn add_route_via(&mut self, dst: Ipv4Addr, gateway: usize) {
        self.via_routes.insert(dst, gateway);
    }

    /// Adds a traffic injector delivering frames to `target` host.
    pub fn add_injector(&mut self, target: usize, injector: Injector) -> usize {
        let idx = self.injectors.len();
        self.injectors.push((target, injector));
        idx
    }

    /// Packets emitted by injector `idx` so far.
    pub fn injector_emitted(&self, idx: usize) -> u64 {
        self.injectors[idx].1.emitted()
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.schedule(at, ev);
    }

    /// Selects the event-queue implementation (timer wheel vs. legacy
    /// heap). Both pop in identical order, so results are bit-identical
    /// either way; benchmarks use this to A/B the two. Must be called
    /// before the world boots.
    pub fn use_queue_impl(&mut self, imp: lrp_sim::QueueImpl) {
        assert!(
            !self.started && self.queue.is_empty(),
            "queue impl must be chosen before the world starts"
        );
        self.queue = EventQueue::with_impl(imp);
    }

    /// Boots all hosts and arms periodic events. Runs automatically on the
    /// first `run_until`.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.hosts.len() {
            self.hosts[i].start(self.now);
            self.schedule(self.now + self.tick, Event::Tick(i));
            self.post_host(i);
        }
        for i in 0..self.injectors.len() {
            if let Some(t) = self.injectors[i].1.next_fire() {
                self.schedule(t, Event::Inject(i));
            }
        }
    }

    /// After any host interaction: schedule its CPU completion, its next
    /// kernel timer, and pull frames onto its link.
    fn post_host(&mut self, h: usize) {
        // CPU completions, one event per busy CPU.
        for c in 0..self.hosts[h].ncpus() {
            if let Some((t, gen)) = self.hosts[h].cpu_event_on(c) {
                if gen != self.cpu_gen[h][c] {
                    self.cpu_gen[h][c] = gen;
                    self.schedule(t, Event::Cpu(h, c, gen));
                }
            }
        }
        // Kernel timer.
        if let Some(t) = self.hosts[h].next_timer_deadline() {
            if t < self.timer_at[h] {
                self.timer_at[h] = t;
                self.schedule(t.max(self.now), Event::Timer(h));
            }
        }
        // Transmit.
        self.pump_link(h);
    }

    /// Starts one transmission if the link is idle and the interface
    /// queue is non-empty; the LinkFree event pulls the next frame.
    fn pump_link(&mut self, h: usize) {
        if !self.links[h].idle_at(self.now) {
            return;
        }
        let Some((frame, span)) = self.hosts[h].ifq_dequeue_spanned() else {
            return;
        };
        let (done, arrival) = self.links[h].transmit(self.now, &frame);
        if let Some(dst) = self.route_of(&frame, Some(h)) {
            self.deliver(arrival, dst, frame, span);
        }
        self.schedule(done, Event::LinkFree(h));
    }

    fn route_of(&self, frame: &Frame, origin: Option<usize>) -> Option<usize> {
        match frame {
            Frame::Ipv4(b) => {
                let h = ipv4::Ipv4Header::decode(b).ok()?;
                if let Some(&gw) = self.via_routes.get(&h.dst) {
                    if origin != Some(gw) {
                        return Some(gw);
                    }
                }
                self.routes.get(&h.dst).copied()
            }
            Frame::Arp(_) => None, // Broadcast ARP is not routed in the world.
        }
    }

    /// Runs the simulation until `t_end` (events at exactly `t_end`
    /// included).
    pub fn run_until(&mut self, t_end: SimTime) {
        self.start();
        while let Some((t, ev)) = self.queue.pop_before(t_end) {
            self.now = t;
            self.events += 1;
            // Set LRP_TRACE=1 to stream every event to stderr (debugging).
            if trace_enabled() {
                eprintln!("[{}] {:?}", t.as_micros(), ev);
            }
            match ev {
                Event::Frame(h, frame, span) => {
                    if let Some((limit, log)) = &mut self.capture {
                        if log.len() < *limit {
                            log.push((t, h, frame.describe()));
                        }
                    }
                    self.hosts[h].on_frame_span(t, frame, span);
                    self.post_host(h);
                }
                Event::Cpu(h, c, gen) => {
                    self.hosts[h].on_cpu_complete(t, c, gen);
                    self.post_host(h);
                }
                Event::Timer(h) => {
                    self.timer_at[h] = SimTime::NEVER;
                    self.hosts[h].on_timer(t);
                    self.post_host(h);
                }
                Event::Tick(h) => {
                    self.hosts[h].on_tick(t);
                    self.schedule(t + self.tick, Event::Tick(h));
                    self.post_host(h);
                }
                Event::LinkFree(h) => {
                    self.pump_link(h);
                    self.post_host(h);
                }
                Event::Inject(i) => {
                    let (target, inj) = &mut self.injectors[i];
                    let target = *target;
                    // Mint the causal span before firing: injector index
                    // in the high bits, per-injector sequence below.
                    let span: SpanId = ((i as u64 + 1) << 48) | inj.emitted();
                    let frame = inj.fire();
                    let next = inj.next_fire();
                    let latency = self.link_cfg.latency;
                    self.hosts[target].note_injected_span(t, span);
                    self.deliver(t + latency, target, frame, Some(span));
                    if let Some(nt) = next {
                        self.schedule(nt, Event::Inject(i));
                    }
                }
            }
        }
        self.now = t_end.max(self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Architecture, HostConfig};

    #[test]
    fn empty_world_runs() {
        let mut w = World::with_defaults();
        w.run_until(SimTime::from_millis(10));
        assert!(w.now >= SimTime::from_millis(10));
    }

    #[test]
    fn add_host_routes_by_address() {
        let mut w = World::with_defaults();
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let h = w.add_host(Host::new(HostConfig::new(Architecture::Bsd), a));
        assert_eq!(w.routes.get(&a), Some(&h));
    }
}
