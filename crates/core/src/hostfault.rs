//! Deterministic end-host failure plans: scheduled process crashes and
//! restarts.
//!
//! Mirrors the link-level `FaultPlan` of `lrp-net`: a plan owns its own
//! SplitMix64 stream (seeded independently of every other consumer) so
//! attaching one never perturbs unrelated random draws, and the inert
//! plan — no crash events — draws **no** RNG at all, keeping fault-free
//! runs bit-identical to builds without this module.
//!
//! Two failure granularities share one schedule, distinguished by
//! [`FaultKind`]:
//!
//! - **Process crash** ([`FaultKind::Process`]): the kernel survives and
//!   runs a deterministic teardown (sockets closed, NI channels unmapped
//!   with in-flight frames attributed to the conserved `owner_dead`
//!   ledger bucket, PCBs freed, RST sent on established TCP connections
//!   per RFC 793). An optional restart re-registers the process through
//!   its registered factory; the app then re-binds its sockets and (on
//!   LRP architectures) re-creates its channels exactly as it did at
//!   boot.
//! - **Whole-host reboot** ([`FaultKind::Reboot`]): power fails. The NIC
//!   goes down for the whole boot delay (arriving frames are conserved
//!   as `nic_stall_drops`); frames already sitting in the receive rings,
//!   NI channels and the shared IP queue move to the `reboot_flushed`
//!   ledger bucket; every process dies and all kernel state — sockets,
//!   PCBs, demux filters, reassembly, timers — goes cold. No RSTs are
//!   sent (the NIC is off); peers observe the death through retransmit
//!   give-up, exactly like a real power cut. After the boot delay the
//!   kernel daemons are recreated and every restartable process respawns
//!   as a fresh incarnation.

use lrp_sched::Pid;
use lrp_sim::{SimDuration, SimTime, SplitMix64};

/// What a [`CrashEvent`] takes down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// One process dies; the kernel survives.
    Process,
    /// The whole host power-cycles; see the module docs for the teardown
    /// order. `restart_after` is the boot delay (the NIC stays down for
    /// its whole span); `pid` is ignored.
    Reboot,
}

/// One scheduled crash (and optional restart) of a process, or a
/// whole-host reboot.
#[derive(Clone, Debug)]
pub struct CrashEvent {
    /// Process or host granularity.
    pub kind: FaultKind,
    /// Process to crash. Must have been spawned with
    /// [`crate::Host::spawn_app_restartable`] for the restart half to
    /// work; a plain process can still be crashed. Ignored for reboots.
    pub pid: Pid,
    /// Absolute sim time of the crash.
    pub at: SimTime,
    /// Delay from crash to restart; `None` means the process stays dead.
    pub restart_after: Option<SimDuration>,
    /// Uniform jitter `[0, restart_jitter)` added to the restart delay,
    /// drawn from the plan's own stream. `SimDuration::ZERO` draws no
    /// RNG (the inert-plan rule applies per-event too).
    pub restart_jitter: SimDuration,
}

impl CrashEvent {
    /// Crash `pid` at `at` with no restart.
    pub fn kill(pid: Pid, at: SimTime) -> Self {
        CrashEvent {
            kind: FaultKind::Process,
            pid,
            at,
            restart_after: None,
            restart_jitter: SimDuration::ZERO,
        }
    }

    /// Crash `pid` at `at`, restarting it `after` later (no jitter).
    pub fn crash_restart(pid: Pid, at: SimTime, after: SimDuration) -> Self {
        CrashEvent {
            kind: FaultKind::Process,
            pid,
            at,
            restart_after: Some(after),
            restart_jitter: SimDuration::ZERO,
        }
    }

    /// Reboot the whole host at `at`, coming back up `boot_delay` later.
    /// The delay is deterministic (no jitter draw — the inert-plan rule
    /// extends to armed-but-unfired reboot plans being bit-identical).
    pub fn reboot(at: SimTime, boot_delay: SimDuration) -> Self {
        CrashEvent {
            kind: FaultKind::Reboot,
            pid: Pid(0),
            at,
            restart_after: Some(boot_delay),
            restart_jitter: SimDuration::ZERO,
        }
    }
}

/// A deterministic schedule of process crashes/restarts for one host.
#[derive(Clone, Debug)]
pub struct HostFaultPlan {
    /// Seed for the plan's private SplitMix64 stream (restart jitter).
    pub seed: u64,
    /// Crash events; the host sorts them by time on attach.
    pub crashes: Vec<CrashEvent>,
}

impl HostFaultPlan {
    /// The inert plan: no crashes, draws no RNG.
    pub fn none() -> Self {
        HostFaultPlan {
            seed: 0,
            crashes: Vec::new(),
        }
    }

    /// True when the plan schedules nothing (attach is then a no-op).
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// Host-side runtime for an attached plan: the pending schedule (sorted
/// by time, earliest last so `pop` yields the next event) plus the plan's
/// private jitter stream.
#[derive(Debug)]
pub(crate) struct HostFaultState {
    pub(crate) pending: Vec<CrashEvent>,
    pub(crate) rng: SplitMix64,
}

impl HostFaultState {
    pub(crate) fn new(plan: &HostFaultPlan) -> Self {
        let mut pending = plan.crashes.clone();
        // Earliest event last, so the next due event is `pending.last()`.
        pending.sort_by(|a, b| b.at.cmp(&a.at).then(b.pid.0.cmp(&a.pid.0)));
        HostFaultState {
            pending,
            rng: SplitMix64::new(plan.seed ^ 0xD1E5_EA5E_0F1A_57ED),
        }
    }

    /// Sim time of the next scheduled crash, if any.
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        self.pending.last().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_none() {
        assert!(HostFaultPlan::none().is_none());
        assert!(!HostFaultPlan {
            seed: 1,
            crashes: vec![CrashEvent::kill(Pid(3), SimTime::from_millis(5))],
        }
        .is_none());
    }

    #[test]
    fn schedule_sorted_earliest_first() {
        let plan = HostFaultPlan {
            seed: 9,
            crashes: vec![
                CrashEvent::kill(Pid(1), SimTime::from_millis(50)),
                CrashEvent::crash_restart(
                    Pid(2),
                    SimTime::from_millis(10),
                    SimDuration::from_millis(5),
                ),
            ],
        };
        let mut st = HostFaultState::new(&plan);
        assert_eq!(st.next_at(), Some(SimTime::from_millis(10)));
        let e = st.pending.pop().unwrap();
        assert_eq!(e.pid, Pid(2));
        assert_eq!(st.next_at(), Some(SimTime::from_millis(50)));
    }
}
