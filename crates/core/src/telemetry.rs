//! Host telemetry: packet-lifecycle tracing, per-stage latency histograms,
//! and a frame-disposition ledger for the packet-conservation self-check.
//!
//! Everything in this module is *pure observation*. Hooks are called from
//! the host's packet path at logic time; they record into side structures
//! (a [`TraceRing`], [`Histogram`]s, counters and timestamp sidecars) and
//! never touch the cost model, the scheduler, queue contents or any RNG —
//! so a run with telemetry enabled is bit-identical, in simulated time and
//! in every statistic, to the same run with it disabled. The determinism
//! goldens in `tests/determinism.rs` enforce this: the experiment builders
//! enable telemetry unconditionally.
//!
//! # The disposition ledger
//!
//! Every frame the NIC accepts from the link ends in exactly one bucket:
//!
//! * dropped on the NIC (ring overrun or early discard — NIC statistics);
//! * still queued (RX ring, an NI channel, or the shared IP queue);
//! * delivered (UDP datagram or ICMP message into a socket buffer);
//! * consumed by TCP input processing (segments are not 1:1 with
//!   user-visible deliveries, so TCP is accounted at frame granularity);
//! * handed to IP forwarding, counted-and-ignored ARP, absorbed by the
//!   fragment reassembler, or flushed when a channel was destroyed;
//! * dropped in the host ([`DropPoint`] granularity).
//!
//! [`Host::packet_ledger`] assembles the buckets;
//! [`PacketLedger::conserved`] checks that they sum back to the accepted
//! count. Experiments run this self-check at the end of every run.

use crate::host::{DropPoint, Host};
use crate::watchdog::{AnomalyEvent, Watchdog, WatchdogSample};
use lrp_demux::ChannelId;
use lrp_sim::{
    CycleAccount, CycleKey, FastHashMap, Histogram, MetricsTimeline, QuantileSketch, SimDuration,
    SimTime, TraceEvent, TraceRing,
};
use lrp_wire::Frame;
use std::collections::{BTreeMap, VecDeque};

/// Default trace-ring capacity, in events. Sized to stay L2-resident
/// (~80 KB of [`TraceEvent`]s): the ring sits on the per-packet hot path
/// and a larger tail buffer measurably slows the simulator down by
/// streaming every record through the cache (the <10% telemetry overhead
/// budget in `bench_sim` is measured with this default).
pub const DEFAULT_TRACE_CAP: usize = 2_048;

/// Maximum stored span events per host; further events are counted in
/// [`Telemetry::span_events_dropped`] and discarded.
pub const SPAN_LOG_CAP: usize = 1 << 20;

/// A causal request span identifier. Minted by the world at the traffic
/// injector (`(injector + 1) << 48 | seq`) or by a sending host
/// (`1 << 63 | addr-octet << 48 | seq`), and carried alongside — never
/// inside — the frame through NIC, queues, sockets and replies.
pub type SpanId = u64;

/// One recorded point on a request span's path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span this event belongs to.
    pub span: SpanId,
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Path stage: `inject`, `rx`, `enq`, `deq`, `deliver`, `recv`, `tx`.
    pub stage: &'static str,
    /// CPU the stage ran on (0 for NIC/link stages).
    pub cpu: u32,
}

/// Span path stage names, indexed by the packed stage byte.
const SPAN_STAGES: [&str; 7] = ["inject", "rx", "enq", "deq", "deliver", "recv", "tx"];
const SP_INJECT: u8 = 0;
const SP_RX: u8 = 1;
const SP_ENQ: u8 = 2;
const SP_DEQ: u8 = 3;
const SP_DELIVER: u8 = 4;
const SP_RECV: u8 = 5;
const SP_TX: u8 = 6;

/// In-memory form of one span event: 24 bytes instead of [`SpanEvent`]'s
/// 32. The span log takes several entries per packet on the hot path, so
/// the packing is a measurable slice of the telemetry overhead budget;
/// [`Telemetry::span_log`] unpacks on export.
#[derive(Clone, Copy, Debug)]
struct PackedSpanEvent {
    span: SpanId,
    t_ns: u64,
    cpu: u16,
    stage: u8,
}

/// Column names of the per-host metrics timeline, in recording order.
/// Counter columns are cumulative; `*_depth` and `runq` are gauges.
pub const TIMELINE_COLUMNS: &[&str] = &[
    "delivered_udp",
    "delivered_icmp",
    "tcp_frames",
    "host_dropped",
    "nic_ring_drops",
    "nic_early_discards",
    "ipq_depth",
    "chan_depth",
    "chan_depth_max",
    "runq",
    "charged_ns",
    "tcp_cwnd",
    "tcp_ssthresh",
    "anomalies",
];

/// A tiny association list. The per-host cardinality of live channels,
/// sockets, and processes is small, and these sidecars sit on the
/// per-frame hot path: a linear scan over a compact vector beats hash
/// probes there (and stays deterministic).
#[derive(Debug)]
struct FlatMap<K, V>(Vec<(K, V)>);

impl<K, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap(Vec::new())
    }
}

impl<K: Copy + PartialEq, V> FlatMap<K, V> {
    fn get_or_insert(&mut self, k: K) -> &mut V
    where
        V: Default,
    {
        match self.0.iter().position(|(kk, _)| *kk == k) {
            Some(i) => &mut self.0[i].1,
            None => {
                self.0.push((k, V::default()));
                &mut self.0.last_mut().unwrap().1
            }
        }
    }

    fn get_mut(&mut self, k: K) -> Option<&mut V> {
        self.0.iter_mut().find(|(kk, _)| *kk == k).map(|(_, v)| v)
    }

    fn insert(&mut self, k: K, v: V) {
        match self.0.iter_mut().find(|(kk, _)| *kk == k) {
            Some(e) => e.1 = v,
            None => self.0.push((k, v)),
        }
    }

    fn remove(&mut self, k: K) -> Option<V> {
        self.0
            .iter()
            .position(|(kk, _)| *kk == k)
            .map(|i| self.0.swap_remove(i).1)
    }
}

/// Per-host telemetry state (see the module docs).
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// Packet-lifecycle event ring.
    pub trace: TraceRing,
    /// NIC arrival → socket-buffer delivery latency (UDP/ICMP), ns.
    pub arrival_to_deliver: Histogram,
    /// Time frames spend queued on NI channels, ns.
    pub channel_residency: Histogram,
    /// Enqueue (IP queue / ED channel) → softirq dispatch delay, ns.
    pub softirq_dispatch: Histogram,
    /// Mergeable sketch shadowing [`Self::arrival_to_deliver`]; backs
    /// p999/p9999 and cross-host/CPU aggregation.
    pub arrival_to_deliver_sketch: QuantileSketch,
    /// Mergeable sketch shadowing [`Self::channel_residency`].
    pub channel_residency_sketch: QuantileSketch,
    /// Mergeable sketch shadowing [`Self::softirq_dispatch`].
    pub softirq_dispatch_sketch: QuantileSketch,
    /// The anomaly watchdog, fed one sample per statclock tick.
    watchdog: Watchdog,
    /// Enqueue timestamps + spans paralleling the BSD IP queue (FIFO,
    /// tail-drop before enqueue — mirrors the frame queue exactly).
    ipq_ts: VecDeque<(SimTime, Option<SpanId>)>,
    /// Enqueue timestamps + spans paralleling each NI channel's frame
    /// queue.
    chan_ts: FlatMap<ChannelId, VecDeque<(SimTime, Option<SpanId>)>>,
    /// NIC arrival time of the frame most recently dequeued for protocol
    /// processing (consumed by the delivery hook).
    cur_arrival: Option<SimTime>,
    /// Span of the frame most recently dequeued for protocol processing.
    cur_span: Option<SpanId>,
    /// Spans paralleling each socket's receive queue (keyed by raw sock
    /// id; pushed at delivery, popped at recv).
    sock_spans: FlatMap<u64, VecDeque<Option<SpanId>>>,
    /// Spans paralleling the NIC interface (transmit) queue.
    ifq_spans: VecDeque<Option<SpanId>>,
    /// Per process (raw pid): the span of the last datagram it received,
    /// consumed by its next send — a reply continues the request's span.
    last_recv_span: FlatMap<u32, SpanId>,
    /// Tag prefix for spans minted at this host's send path.
    span_tag: SpanId,
    /// Sequence counter for host-minted spans.
    local_span_seq: u64,
    /// Recorded span events, in time order (packed; unpacked on export).
    span_log: Vec<PackedSpanEvent>,
    /// Span events discarded past [`SPAN_LOG_CAP`].
    pub span_events_dropped: u64,
    /// The simulated-cycle profiler: every charged chunk attributed to a
    /// `(cpu, context, stage, billed process, account)` key.
    profiler: CycleAccount,
    /// Protocol cycles by `(billed process, rightful receiver)` — the
    /// charge-attribution ledger behind the paper's accounting claim.
    /// Stored as a flat vector (the pair cardinality is tiny and a linear
    /// scan beats tree lookups on the per-chunk hot path); sorted on
    /// export.
    proto_attr: Vec<((Option<u32>, u32), u64)>,
    /// Rightful owner (raw pid) of the protocol work most recently
    /// performed at job-creation time; consumed when its chunk starts.
    pending_proto_owner: Option<u32>,
    /// Interval-sampled metrics timeline (columns: [`TIMELINE_COLUMNS`]).
    timeline: MetricsTimeline,
    /// Per timeline row: per-process `(total_charged_ns, user_ns)`,
    /// indexed by pid.
    timeline_proc_cpu: Vec<Vec<(u64, u64)>>,
    /// UDP datagrams delivered into socket buffers (frames).
    pub delivered_udp: u64,
    /// ICMP messages delivered to the proxy daemon's raw socket.
    pub delivered_icmp: u64,
    /// Frames consumed by TCP input processing.
    pub tcp_frames: u64,
    /// Frames handed to IP forwarding (transmitted or dropped there).
    pub forwarded: u64,
    /// ARP frames counted and ignored.
    pub arp_frames: u64,
    /// Fragment frames absorbed by the reassembler without (yet)
    /// completing a datagram, plus non-reassemblable channel drainage.
    pub reasm_absorbed: u64,
    /// Fragment frames discarded when their reassembly flow expired
    /// (moved out of `reasm_absorbed` at expiry time).
    pub reasm_expired: u64,
    /// Frames discarded because their channel was destroyed.
    pub flushed: u64,
    /// Frames discarded because their owning process crashed while they
    /// were queued on its NI channel (distinct from `flushed`: an orderly
    /// close vs. a dead receiver).
    pub owner_dead: u64,
    /// Frames lost to a whole-host reboot while queued in the NIC
    /// receive rings, NI channels or the shared IP queue (distinct from
    /// `owner_dead`: the entire kernel died, not one receiver).
    pub reboot_flushed: u64,
    /// Handshake ACKs whose SYN cookie validated (moved out of
    /// `tcp_frames` — the frame's terminal disposition is the stateless
    /// connection establishment it performed).
    pub cookie_validated: u64,
    /// Handshake ACKs whose SYN cookie failed validation (stale or
    /// forged; moved out of `tcp_frames`).
    pub cookie_rejected: u64,
    /// Host-side frame drops by location.
    pub host_drops: FastHashMap<DropPoint, u64>,
}

impl Telemetry {
    /// Creates telemetry state; when `enabled` is false every hook is a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            enabled,
            trace: TraceRing::new(if enabled { DEFAULT_TRACE_CAP } else { 0 }),
            arrival_to_deliver: Histogram::new(),
            channel_residency: Histogram::new(),
            softirq_dispatch: Histogram::new(),
            arrival_to_deliver_sketch: QuantileSketch::new(),
            channel_residency_sketch: QuantileSketch::new(),
            softirq_dispatch_sketch: QuantileSketch::new(),
            watchdog: Watchdog::new(),
            ipq_ts: VecDeque::new(),
            chan_ts: FlatMap::default(),
            cur_arrival: None,
            cur_span: None,
            sock_spans: FlatMap::default(),
            ifq_spans: VecDeque::new(),
            last_recv_span: FlatMap::default(),
            span_tag: 1 << 63,
            local_span_seq: 0,
            span_log: Vec::new(),
            span_events_dropped: 0,
            profiler: CycleAccount::new(),
            proto_attr: Vec::new(),
            pending_proto_owner: None,
            timeline: MetricsTimeline::new(TIMELINE_COLUMNS.to_vec()),
            timeline_proc_cpu: Vec::new(),
            delivered_udp: 0,
            delivered_icmp: 0,
            tcp_frames: 0,
            forwarded: 0,
            arp_frames: 0,
            reasm_absorbed: 0,
            reasm_expired: 0,
            flushed: 0,
            owner_dead: 0,
            reboot_flushed: 0,
            cookie_validated: 0,
            cookie_rejected: 0,
            host_drops: FastHashMap::default(),
        }
    }

    /// True when hooks record.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn ev(&mut self, t: SimTime, kind: &'static str, stage: &'static str, id: u64, cpu: usize) {
        self.trace.record(TraceEvent {
            t_ns: t.as_nanos(),
            kind,
            stage,
            id,
            cpu: cpu as u32,
            dur_ns: 0,
        });
    }

    /// Appends one span event, bounded by [`SPAN_LOG_CAP`].
    fn span_ev(&mut self, now: SimTime, stage: u8, span: Option<SpanId>, cpu: usize) {
        let Some(span) = span else { return };
        if self.span_log.len() >= SPAN_LOG_CAP {
            self.span_events_dropped += 1;
            return;
        }
        self.span_log.push(PackedSpanEvent {
            span,
            t_ns: now.as_nanos(),
            cpu: cpu as u16,
            stage,
        });
    }

    /// A traffic injector minted `span` for a frame bound for this host.
    pub(crate) fn on_span_inject(&mut self, now: SimTime, span: SpanId) {
        if self.enabled {
            self.span_ev(now, SP_INJECT, Some(span), 0);
        }
    }

    /// A frame arrived at the NIC (rx-DMA). `ordinal` is the NIC's frame
    /// counter; `span` is the causal span riding with the frame.
    pub(crate) fn on_rx(&mut self, now: SimTime, ordinal: u64, span: Option<SpanId>) {
        if self.enabled {
            self.ev(now, "rx-dma", "link", ordinal, 0);
            self.span_ev(now, SP_RX, span, 0);
        }
    }

    /// A frame died on the NIC (ring overrun / early discard). Ledger
    /// counts come from NIC statistics; this only traces.
    pub(crate) fn on_nic_drop(&mut self, now: SimTime, stage: &'static str) {
        if self.enabled {
            self.ev(now, "drop", stage, 0, 0);
        }
    }

    /// A host-side frame drop: ledger + trace.
    pub(crate) fn on_drop(&mut self, now: SimTime, cpu: usize, p: DropPoint) {
        if self.enabled {
            *self.host_drops.entry(p).or_insert(0) += 1;
            self.ev(now, "drop", p.name(), 0, cpu);
        }
    }

    /// A frame entered the BSD shared IP queue.
    pub(crate) fn on_ipq_enqueue(&mut self, now: SimTime, depth: usize, span: Option<SpanId>) {
        if self.enabled {
            self.ipq_ts.push_back((now, span));
            self.ev(now, "enqueue", "ip-queue", depth as u64, 0);
            self.span_ev(now, SP_ENQ, span, 0);
        }
    }

    /// The softirq took a frame off the IP queue: dispatch-delay sample
    /// and arrival bookkeeping.
    pub(crate) fn on_ipq_dequeue(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            if let Some((t, span)) = self.ipq_ts.pop_front() {
                self.softirq_dispatch.record_duration(now - t);
                self.softirq_dispatch_sketch.record_duration(now - t);
                self.cur_arrival = Some(t);
                self.cur_span = span;
                self.span_ev(now, SP_DEQ, span, cpu);
            }
            self.ev(now, "softirq", "ip-input", 0, cpu);
        }
    }

    /// The demux function matched a frame to a channel (host interrupt
    /// handler, SOFT-LRP / Early-Demux).
    pub(crate) fn on_demux(&mut self, now: SimTime, cpu: usize, chan: ChannelId) {
        if self.enabled {
            self.ev(now, "demux", "match", chan.0 as u64, cpu);
        }
    }

    /// A frame was enqueued on an NI channel (by the host handler or by
    /// NI firmware).
    pub(crate) fn on_chan_enqueue(
        &mut self,
        now: SimTime,
        cpu: usize,
        chan: ChannelId,
        span: Option<SpanId>,
    ) {
        if self.enabled {
            self.chan_ts.get_or_insert(chan).push_back((now, span));
            self.ev(now, "enqueue", "channel", chan.0 as u64, cpu);
            self.span_ev(now, SP_ENQ, span, cpu);
        }
    }

    /// A frame left an NI channel for protocol processing: residency
    /// sample and arrival bookkeeping.
    pub(crate) fn on_chan_dequeue(&mut self, now: SimTime, cpu: usize, chan: ChannelId) {
        if self.enabled {
            if let Some((t, span)) = self.chan_ts.get_mut(chan).and_then(|q| q.pop_front()) {
                self.channel_residency.record_duration(now - t);
                self.channel_residency_sketch.record_duration(now - t);
                self.cur_arrival = Some(t);
                self.cur_span = span;
                self.span_ev(now, SP_DEQ, span, cpu);
            }
            self.ev(now, "dequeue", "channel", chan.0 as u64, cpu);
        }
    }

    /// An eager softirq (Early-Demux) dispatched the just-dequeued frame:
    /// the channel residency *is* the dispatch delay.
    pub(crate) fn note_softirq_dispatch(&mut self, now: SimTime, cpu: usize, tag: &'static str) {
        if self.enabled {
            if let Some(arr) = self.cur_arrival {
                self.softirq_dispatch.record_duration(now - arr);
                self.softirq_dispatch_sketch.record_duration(now - arr);
            }
            self.ev(now, "softirq", tag, 0, cpu);
        }
    }

    /// Protocol processing of one frame finished; `dur` is its modelled
    /// CPU cost (recorded as a span event).
    pub(crate) fn on_proto(
        &mut self,
        now: SimTime,
        cpu: usize,
        stage: &'static str,
        dur: SimDuration,
    ) {
        if self.enabled {
            self.trace.record(TraceEvent {
                t_ns: now.as_nanos(),
                kind: "proto",
                stage,
                id: 0,
                cpu: cpu as u32,
                dur_ns: dur.as_nanos(),
            });
        }
    }

    /// A UDP datagram landed in a socket receive buffer.
    pub(crate) fn on_udp_delivered(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.delivered_udp += 1;
            if let Some(arr) = self.cur_arrival.take() {
                self.arrival_to_deliver.record_duration(now - arr);
                self.arrival_to_deliver_sketch.record_duration(now - arr);
            }
            let span = self.cur_span.take();
            self.sock_spans.get_or_insert(sock).push_back(span);
            self.span_ev(now, SP_DELIVER, span, cpu);
            self.ev(now, "deliver", "udp", sock, cpu);
        }
    }

    /// An ICMP message landed in the proxy daemon's raw socket.
    pub(crate) fn on_icmp_delivered(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.delivered_icmp += 1;
            if let Some(arr) = self.cur_arrival.take() {
                self.arrival_to_deliver.record_duration(now - arr);
                self.arrival_to_deliver_sketch.record_duration(now - arr);
            }
            let span = self.cur_span.take();
            self.span_ev(now, SP_DELIVER, span, cpu);
            self.ev(now, "deliver", "icmp", sock, cpu);
        }
    }

    /// A frame entered TCP input processing.
    pub(crate) fn on_tcp_frame(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.tcp_frames += 1;
            self.cur_arrival = None;
            self.cur_span = None;
            self.ev(now, "deliver", "tcp", 0, cpu);
        }
    }

    /// A frame was handed to IP forwarding.
    pub(crate) fn on_forwarded(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.forwarded += 1;
            self.cur_arrival = None;
            self.cur_span = None;
            self.ev(now, "deliver", "forward", 0, cpu);
        }
    }

    /// An ARP frame was counted and ignored.
    pub(crate) fn on_arp(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.arp_frames += 1;
            self.cur_arrival = None;
            self.cur_span = None;
            self.ev(now, "deliver", "arp", 0, cpu);
        }
    }

    /// A fragment was absorbed by the reassembler (or unparseable channel
    /// drainage was discarded).
    pub(crate) fn on_reasm_absorbed(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.reasm_absorbed += 1;
            self.cur_arrival = None;
            self.cur_span = None;
            self.ev(now, "deliver", "reasm", 0, cpu);
        }
    }

    /// A reassembly flow expired holding `frames` absorbed fragments:
    /// re-attribute them from the absorbed bucket to the expired bucket.
    pub(crate) fn on_reasm_expired(&mut self, now: SimTime, frames: u64) {
        if self.enabled && frames > 0 {
            debug_assert!(
                self.reasm_absorbed >= frames,
                "expired more fragments than were absorbed"
            );
            self.reasm_absorbed = self.reasm_absorbed.saturating_sub(frames);
            self.reasm_expired += frames;
            self.ev(now, "drop", "ReasmExpired", frames, 0);
        }
    }

    /// A channel was destroyed with `n` frames still queued.
    pub(crate) fn on_chan_flush(&mut self, chan: ChannelId, n: usize) {
        if self.enabled {
            self.flushed += n as u64;
            self.chan_ts.remove(chan);
        }
    }

    /// A crashed process's channel was unmapped with `n` frames still
    /// queued: they died with their owner.
    pub(crate) fn on_chan_owner_dead(&mut self, now: SimTime, chan: ChannelId, n: usize) {
        if self.enabled {
            self.owner_dead += n as u64;
            self.chan_ts.remove(chan);
            if n > 0 {
                self.ev(now, "drop", "OwnerDead", n as u64, 0);
            }
        }
    }

    /// A SYN was dropped at a full listen backlog *after* entering TCP
    /// input: re-attribute its frame from the TCP bucket to the
    /// backlog-overflow drop bucket (mirrors the reassembly-expiry
    /// re-attribution — the ledger stays conserved).
    pub(crate) fn on_backlog_drop(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            debug_assert!(self.tcp_frames > 0, "backlog drop outside TCP input");
            self.tcp_frames = self.tcp_frames.saturating_sub(1);
            *self.host_drops.entry(DropPoint::Backlog).or_insert(0) += 1;
            self.ev(now, "drop", DropPoint::Backlog.name(), 0, cpu);
        }
    }

    /// A handshake ACK's SYN cookie validated and established a
    /// connection statelessly: re-attribute the frame from the TCP
    /// bucket to its own disposition (same pattern as
    /// [`Self::on_backlog_drop`]).
    pub(crate) fn on_cookie_validated(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            debug_assert!(self.tcp_frames > 0, "cookie ACK outside TCP input");
            self.tcp_frames = self.tcp_frames.saturating_sub(1);
            self.cookie_validated += 1;
            self.ev(now, "deliver", "cookie-ok", 0, cpu);
        }
    }

    /// A handshake ACK's SYN cookie failed validation (stale, forged, or
    /// a bare ACK sprayed at the listener): re-attribute the frame from
    /// the TCP bucket to the rejected-cookie disposition.
    pub(crate) fn on_cookie_rejected(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            debug_assert!(self.tcp_frames > 0, "cookie ACK outside TCP input");
            self.tcp_frames = self.tcp_frames.saturating_sub(1);
            self.cookie_rejected += 1;
            self.ev(now, "drop", "CookieRejected", 0, cpu);
        }
    }

    /// Whole-host reboot: `n` frames that were sitting in NIC receive
    /// rings, an NI channel, or the shared IP queue die with the kernel.
    pub(crate) fn on_reboot_flush(&mut self, now: SimTime, n: u64) {
        if self.enabled && n > 0 {
            self.reboot_flushed += n;
            self.ev(now, "drop", "RebootFlushed", n, 0);
        }
    }

    /// Whole-host reboot: drop every queue sidecar in lockstep with the
    /// queues themselves (rings, channels, IP queue, transmit queue,
    /// reply-span associations). Socket sidecars are cleared socket by
    /// socket through [`Self::on_sock_close`]. Unconditional — the
    /// sidecars are empty when telemetry is off, so this is a no-op then.
    pub(crate) fn on_reboot_clear_sidecars(&mut self) {
        self.ipq_ts.clear();
        self.chan_ts = FlatMap::default();
        self.ifq_spans.clear();
        self.last_recv_span = FlatMap::default();
        self.cur_arrival = None;
        self.cur_span = None;
    }

    /// A blocked receiver was woken for delivered data.
    pub(crate) fn on_wakeup(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.ev(now, "wakeup", "recv", sock, cpu);
        }
    }

    /// A receive call returned data to the application. `pid` is the
    /// receiving process; a subsequent send by it continues this span —
    /// unless this host minted the span itself, in which case the
    /// request has come back to its originator, the round trip is
    /// complete, and the next send starts a fresh span (otherwise a
    /// ping-pong session would chain every round into one giant span).
    pub(crate) fn on_recv(&mut self, now: SimTime, cpu: usize, sock: u64, pid: u32) {
        if self.enabled {
            if let Some(span) = self.sock_spans.get_mut(sock).and_then(|q| q.pop_front()) {
                self.span_ev(now, SP_RECV, span, cpu);
                if let Some(s) = span {
                    if s >> 48 != self.span_tag >> 48 {
                        self.last_recv_span.insert(pid, s);
                    }
                }
            }
            self.ev(now, "recv", "return", sock, cpu);
        }
    }

    /// A socket is being freed: drop its span sidecar (any still-queued
    /// datagrams' spans end here).
    pub(crate) fn on_sock_close(&mut self, sock: u64) {
        self.sock_spans.remove(sock);
    }

    /// Sets the prefix for host-minted spans (from the host address).
    pub(crate) fn set_span_tag(&mut self, tag: SpanId) {
        self.span_tag = tag;
    }

    /// A process is sending a datagram: returns the span to ride on the
    /// outgoing frame. A reply (the process received earlier) continues
    /// the request's span; an originating send mints a fresh one.
    pub(crate) fn on_tx(&mut self, now: SimTime, cpu: usize, pid: u32) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        let span = match self.last_recv_span.remove(pid) {
            Some(s) => s,
            None => {
                self.local_span_seq += 1;
                self.span_tag | self.local_span_seq
            }
        };
        self.span_ev(now, SP_TX, Some(span), cpu);
        Some(span)
    }

    /// A frame entered the NIC interface (transmit) queue: keep the span
    /// sidecar aligned. Call only on successful enqueue.
    pub(crate) fn on_ifq_enqueue(&mut self, span: Option<SpanId>) {
        if self.enabled {
            self.ifq_spans.push_back(span);
        }
    }

    /// The world took a frame off the interface queue for transmission:
    /// pop the riding span.
    pub(crate) fn ifq_pop_span(&mut self) -> Option<SpanId> {
        self.ifq_spans.pop_front().flatten()
    }

    /// Recorded span events, in time order (unpacked from the compact
    /// in-memory form).
    pub fn span_log(&self) -> Vec<SpanEvent> {
        self.span_log
            .iter()
            .map(|p| SpanEvent {
                span: p.span,
                t_ns: p.t_ns,
                stage: SPAN_STAGES[p.stage as usize],
                cpu: p.cpu as u32,
            })
            .collect()
    }

    /// Protocol work for the socket owned by `owner` was just performed
    /// at job-creation time; the chunk about to start carries this
    /// attribution (consumed by [`Self::take_proto_owner`]).
    pub(crate) fn note_proto_owner(&mut self, owner: u32) {
        if self.enabled {
            self.pending_proto_owner = Some(owner);
        }
    }

    /// Consumes the pending rightful owner for the chunk about to start.
    pub(crate) fn take_proto_owner(&mut self) -> Option<u32> {
        self.pending_proto_owner.take()
    }

    /// The CPU engine settled `ns` nanoseconds of a chunk: feed the
    /// profiler and, when the chunk carried protocol work for a known
    /// receiver, the charge-attribution ledger.
    pub(crate) fn on_cycles(
        &mut self,
        cpu: usize,
        context: &'static str,
        stage: &'static str,
        billed: Option<(u32, &'static str)>,
        owner: Option<u32>,
        ns: u64,
    ) {
        if !self.enabled || ns == 0 {
            return;
        }
        self.profiler.add(
            CycleKey {
                cpu: cpu as u32,
                context,
                stage,
                billed: billed.map(|(pid, _)| pid),
                account: billed.map(|(_, a)| a),
            },
            ns,
        );
        if let Some(owner) = owner {
            let key = (billed.map(|(pid, _)| pid), owner);
            match self.proto_attr.iter_mut().find(|(k, _)| *k == key) {
                Some(e) => e.1 += ns,
                None => self.proto_attr.push((key, ns)),
            }
        }
    }

    /// The simulated-cycle profiler's accumulated attribution.
    pub fn profiler(&self) -> &CycleAccount {
        &self.profiler
    }

    /// Protocol cycles by `(billed process, rightful receiver)`, in
    /// deterministic key order. `None` billing means the cycles ran with
    /// no process context (charged to nobody — e.g. interrupts taken
    /// while idle).
    pub fn proto_attribution(&self) -> BTreeMap<(Option<u32>, u32), u64> {
        self.proto_attr.iter().copied().collect()
    }

    /// Records one timeline row (values aligned with
    /// [`TIMELINE_COLUMNS`]) plus the per-process CPU snapshot.
    pub(crate) fn timeline_push(
        &mut self,
        now: SimTime,
        values: Vec<u64>,
        proc_cpu: Vec<(u64, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        let before = self.timeline.rows().len();
        self.timeline.push(now.as_nanos(), values);
        if self.timeline.rows().len() > before {
            self.timeline_proc_cpu.push(proc_cpu);
        }
    }

    /// The interval-sampled metrics timeline.
    pub fn timeline(&self) -> &MetricsTimeline {
        &self.timeline
    }

    /// Feeds the anomaly watchdog one statclock-tick sample (no-op when
    /// telemetry is disabled — the watchdog is pure observation).
    pub(crate) fn watchdog_feed(&mut self, now: SimTime, tick_ns: u64, sample: &WatchdogSample) {
        if self.enabled {
            self.watchdog.feed(now.as_nanos(), tick_ns, sample);
        }
    }

    /// Anomalies detected by the watchdog, in detection order.
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        self.watchdog.events()
    }

    /// Total anomaly detections (stored + discarded past the log cap).
    pub fn anomaly_total(&self) -> u64 {
        self.watchdog.total()
    }

    /// Per timeline row: per-process `(total_charged_ns, user_ns)`,
    /// indexed by pid (rows align with [`Self::timeline`]).
    pub fn timeline_proc_cpu(&self) -> &[Vec<(u64, u64)>] {
        &self.timeline_proc_cpu
    }

    /// Host-side drop count at a point.
    pub fn host_dropped(&self, p: DropPoint) -> u64 {
        self.host_drops.get(&p).copied().unwrap_or(0)
    }
}

/// The frame-disposition ledger: where every accepted frame ended up.
///
/// Produced by [`Host::packet_ledger`]; meaningful only when the host ran
/// with [`HostConfig::telemetry`](crate::HostConfig) enabled.
#[derive(Clone, Debug)]
pub struct PacketLedger {
    /// Frames the NIC accepted from the link.
    pub accepted: u64,
    /// Dropped at the NIC receive ring.
    pub nic_ring_drops: u64,
    /// Discarded early by NI-demux firmware.
    pub nic_early_discards: u64,
    /// Dropped by an injected NIC receive stall (device fault).
    pub nic_stall_drops: u64,
    /// Still queued (RX rings + NI channels + IP queue).
    pub in_flight: u64,
    /// UDP datagrams delivered into socket buffers.
    pub delivered_udp: u64,
    /// ICMP messages delivered.
    pub delivered_icmp: u64,
    /// Frames consumed by TCP input processing.
    pub tcp_frames: u64,
    /// Frames handed to IP forwarding.
    pub forwarded: u64,
    /// ARP frames counted and ignored.
    pub arp_frames: u64,
    /// Fragments absorbed by reassembly.
    pub reasm_absorbed: u64,
    /// Fragment frames discarded by reassembly-flow expiry.
    pub reasm_expired: u64,
    /// Frames flushed at channel destruction.
    pub flushed: u64,
    /// Frames that died with their crashed owner (channel unmapped at
    /// process-crash teardown).
    pub owner_dead: u64,
    /// Frames lost in queues (rings/channels/IP queue) to a whole-host
    /// reboot.
    pub reboot_flushed: u64,
    /// Handshake ACKs consumed by successful SYN-cookie validation.
    pub cookie_validated: u64,
    /// Handshake ACKs rejected by SYN-cookie validation.
    pub cookie_rejected: u64,
    /// Host-side drops, sorted by drop-point name.
    pub host_drops: Vec<(&'static str, u64)>,
}

impl PacketLedger {
    /// Total host-side drops.
    pub fn host_dropped(&self) -> u64 {
        self.host_drops.iter().map(|(_, n)| n).sum()
    }

    /// Sum of all disposition buckets.
    pub fn disposed(&self) -> u64 {
        self.nic_ring_drops
            + self.nic_early_discards
            + self.nic_stall_drops
            + self.in_flight
            + self.delivered_udp
            + self.delivered_icmp
            + self.tcp_frames
            + self.forwarded
            + self.arp_frames
            + self.reasm_absorbed
            + self.reasm_expired
            + self.flushed
            + self.owner_dead
            + self.reboot_flushed
            + self.cookie_validated
            + self.cookie_rejected
            + self.host_dropped()
    }

    /// The DESIGN §7 packet-conservation invariant: every accepted frame
    /// is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.accepted == self.disposed()
    }
}

impl Host {
    /// Read access to the telemetry state.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Assembles the frame-disposition ledger (see [`PacketLedger`]).
    pub fn packet_ledger(&self) -> PacketLedger {
        let nic = self.nic.stats();
        let in_flight = (self.nic.ring_depth() + self.nic.channel_depth_total()) as u64
            + self.ip_queue.len() as u64;
        let mut host_drops: Vec<(&'static str, u64)> = self
            .tele
            .host_drops
            .iter()
            .map(|(p, n)| (p.name(), *n))
            .collect();
        host_drops.sort_unstable();
        PacketLedger {
            accepted: nic.rx_frames,
            nic_ring_drops: nic.ring_drops,
            nic_early_discards: nic.early_discards,
            nic_stall_drops: nic.stall_drops,
            in_flight,
            delivered_udp: self.tele.delivered_udp,
            delivered_icmp: self.tele.delivered_icmp,
            tcp_frames: self.tele.tcp_frames,
            forwarded: self.tele.forwarded,
            arp_frames: self.tele.arp_frames,
            reasm_absorbed: self.tele.reasm_absorbed,
            reasm_expired: self.tele.reasm_expired,
            flushed: self.tele.flushed,
            owner_dead: self.tele.owner_dead,
            reboot_flushed: self.tele.reboot_flushed,
            cookie_validated: self.tele.cookie_validated,
            cookie_rejected: self.tele.cookie_rejected,
            host_drops,
        }
    }

    /// Dequeues a frame from an NI channel, recording channel residency.
    /// The single choke point for channel dequeues keeps the telemetry
    /// timestamp sidecars aligned with the frame queues.
    pub(crate) fn chan_dequeue(&mut self, now: SimTime, chan: ChannelId) -> Option<Frame> {
        let f = self.nic.channel_mut(chan).dequeue();
        if f.is_some() {
            let cpu = self.cur_cpu;
            self.tele.on_chan_dequeue(now, cpu, chan);
        }
        f
    }

    /// Destroys an NI channel, accounting any still-queued frames as
    /// flushed.
    pub(crate) fn destroy_channel_flushed(&mut self, chan: ChannelId) {
        let n = self.nic.channel(chan).depth();
        self.tele.on_chan_flush(chan, n);
        self.nic.destroy_channel(chan);
    }

    /// Destroys a crashed process's NI channel, accounting any
    /// still-queued frames to the `owner_dead` bucket.
    pub(crate) fn destroy_channel_owner_dead(&mut self, now: SimTime, chan: ChannelId) {
        let n = self.nic.channel(chan).depth();
        self.tele.on_chan_owner_dead(now, chan, n);
        self.nic.destroy_channel(chan);
    }

    /// Whole-host reboot: drains one NI channel's still-queued frames
    /// into the `reboot_flushed` bucket without destroying the channel
    /// (per-socket channels are destroyed by the socket teardown that
    /// follows; the fragment and proxy channels are permanent and merely
    /// emptied). Returns the number of frames flushed.
    pub(crate) fn reboot_flush_channel(&mut self, now: SimTime, chan: ChannelId) -> u64 {
        let mut n = 0u64;
        while self.nic.channel_mut(chan).dequeue().is_some() {
            n += 1;
        }
        self.tele.on_reboot_flush(now, n);
        n
    }

    /// Records one metrics-timeline sample (driven from the statclock
    /// tick): cumulative ledger counters, queue-depth gauges, run-queue
    /// length and the per-process CPU snapshot. Pure observation.
    pub(crate) fn sample_timeline(&mut self, now: SimTime) {
        if !self.tele.enabled() {
            return;
        }
        let nic = self.nic.stats();
        let host_dropped = self.tele.host_drops.values().sum::<u64>();
        // Feed the watchdog before recording the row so the row's
        // cumulative `anomalies` column includes this tick's detections.
        let sample = WatchdogSample {
            delivered: self.tele.delivered_udp + self.tele.delivered_icmp + self.tele.tcp_frames,
            dropped: host_dropped + nic.ring_drops + nic.early_discards + nic.stall_drops,
            charged_ns: self.sched.total_charged().as_nanos(),
            user_ns: self
                .sched
                .procs()
                .iter()
                .map(|p| p.acct.user.as_nanos())
                .sum(),
            ipq_depth: self.ip_queue.len() as u64,
            ipq_limit: self.cfg.ip_queue_limit as u64,
            chan_depth_max: self.nic.channel_depth_max() as u64,
            chan_limit: self.cfg.channel_limit as u64,
            procs: self
                .sched
                .procs()
                .iter()
                .map(|p| {
                    let runnable = matches!(
                        p.state,
                        lrp_sched::ProcState::Runnable | lrp_sched::ProcState::Running
                    );
                    (p.pid.0, runnable, p.acct.total().as_nanos())
                })
                .collect(),
        };
        self.tele
            .watchdog_feed(now, self.cfg.tick.as_nanos(), &sample);
        // Congestion-window gauges: the widest live connection's view
        // (cc_sweep plots per-controller cwnd evolution from these).
        let (tcp_cwnd, tcp_ssthresh) = self
            .live_sockets()
            .filter_map(|s| s.tcp.as_ref())
            .map(|c| (c.cwnd() as u64, c.ssthresh() as u64))
            .max()
            .unwrap_or((0, 0));
        let values = vec![
            self.tele.delivered_udp,
            self.tele.delivered_icmp,
            self.tele.tcp_frames,
            host_dropped,
            nic.ring_drops,
            nic.early_discards,
            self.ip_queue.len() as u64,
            self.nic.channel_depth_total() as u64,
            self.nic.channel_depth_max() as u64,
            self.sched.runnable_count() as u64,
            self.sched.total_charged().as_nanos(),
            tcp_cwnd,
            tcp_ssthresh,
            self.tele.anomaly_total(),
        ];
        let proc_cpu = self
            .sched
            .procs()
            .iter()
            .map(|p| (p.acct.total().as_nanos(), p.acct.user.as_nanos()))
            .collect();
        self.tele.timeline_push(now, values, proc_cpu);
    }

    /// The world minted `span` for an injected frame bound for this host.
    pub(crate) fn note_injected_span(&mut self, now: SimTime, span: SpanId) {
        self.tele.on_span_inject(now, span);
    }

    /// Enqueues an outgoing frame on the NIC interface queue, keeping the
    /// telemetry span sidecar aligned. The single choke point for
    /// transmit enqueues. Returns false when the queue was full (the
    /// frame is dropped; the caller accounts it).
    pub(crate) fn ifq_enqueue_spanned(&mut self, frame: Frame, span: Option<SpanId>) -> bool {
        let ok = self.nic.ifq_enqueue(frame);
        if ok {
            self.tele.on_ifq_enqueue(span);
        }
        ok
    }

    /// Dequeues the next outgoing frame plus its riding span (called by
    /// the world's link pump).
    pub fn ifq_dequeue_spanned(&mut self) -> Option<(Frame, Option<SpanId>)> {
        let f = self.nic.ifq_dequeue()?;
        let span = self.tele.ifq_pop_span();
        Some((f, span))
    }
}
