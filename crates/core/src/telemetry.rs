//! Host telemetry: packet-lifecycle tracing, per-stage latency histograms,
//! and a frame-disposition ledger for the packet-conservation self-check.
//!
//! Everything in this module is *pure observation*. Hooks are called from
//! the host's packet path at logic time; they record into side structures
//! (a [`TraceRing`], [`Histogram`]s, counters and timestamp sidecars) and
//! never touch the cost model, the scheduler, queue contents or any RNG —
//! so a run with telemetry enabled is bit-identical, in simulated time and
//! in every statistic, to the same run with it disabled. The determinism
//! goldens in `tests/determinism.rs` enforce this: the experiment builders
//! enable telemetry unconditionally.
//!
//! # The disposition ledger
//!
//! Every frame the NIC accepts from the link ends in exactly one bucket:
//!
//! * dropped on the NIC (ring overrun or early discard — NIC statistics);
//! * still queued (RX ring, an NI channel, or the shared IP queue);
//! * delivered (UDP datagram or ICMP message into a socket buffer);
//! * consumed by TCP input processing (segments are not 1:1 with
//!   user-visible deliveries, so TCP is accounted at frame granularity);
//! * handed to IP forwarding, counted-and-ignored ARP, absorbed by the
//!   fragment reassembler, or flushed when a channel was destroyed;
//! * dropped in the host ([`DropPoint`] granularity).
//!
//! [`Host::packet_ledger`] assembles the buckets;
//! [`PacketLedger::conserved`] checks that they sum back to the accepted
//! count. Experiments run this self-check at the end of every run.

use crate::host::{DropPoint, Host};
use lrp_demux::ChannelId;
use lrp_sim::{Histogram, SimDuration, SimTime, TraceEvent, TraceRing};
use lrp_wire::Frame;
use std::collections::{HashMap, VecDeque};

/// Default trace-ring capacity, in events.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// Per-host telemetry state (see the module docs).
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// Packet-lifecycle event ring.
    pub trace: TraceRing,
    /// NIC arrival → socket-buffer delivery latency (UDP/ICMP), ns.
    pub arrival_to_deliver: Histogram,
    /// Time frames spend queued on NI channels, ns.
    pub channel_residency: Histogram,
    /// Enqueue (IP queue / ED channel) → softirq dispatch delay, ns.
    pub softirq_dispatch: Histogram,
    /// Enqueue timestamps paralleling the BSD IP queue (FIFO, tail-drop
    /// before enqueue — mirrors the frame queue exactly).
    ipq_ts: VecDeque<SimTime>,
    /// Enqueue timestamps paralleling each NI channel's frame queue.
    chan_ts: HashMap<ChannelId, VecDeque<SimTime>>,
    /// NIC arrival time of the frame most recently dequeued for protocol
    /// processing (consumed by the delivery hook).
    cur_arrival: Option<SimTime>,
    /// UDP datagrams delivered into socket buffers (frames).
    pub delivered_udp: u64,
    /// ICMP messages delivered to the proxy daemon's raw socket.
    pub delivered_icmp: u64,
    /// Frames consumed by TCP input processing.
    pub tcp_frames: u64,
    /// Frames handed to IP forwarding (transmitted or dropped there).
    pub forwarded: u64,
    /// ARP frames counted and ignored.
    pub arp_frames: u64,
    /// Fragment frames absorbed by the reassembler without (yet)
    /// completing a datagram, plus non-reassemblable channel drainage.
    pub reasm_absorbed: u64,
    /// Fragment frames discarded when their reassembly flow expired
    /// (moved out of `reasm_absorbed` at expiry time).
    pub reasm_expired: u64,
    /// Frames discarded because their channel was destroyed.
    pub flushed: u64,
    /// Host-side frame drops by location.
    pub host_drops: HashMap<DropPoint, u64>,
}

impl Telemetry {
    /// Creates telemetry state; when `enabled` is false every hook is a
    /// no-op.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            enabled,
            trace: TraceRing::new(if enabled { DEFAULT_TRACE_CAP } else { 0 }),
            arrival_to_deliver: Histogram::new(),
            channel_residency: Histogram::new(),
            softirq_dispatch: Histogram::new(),
            ipq_ts: VecDeque::new(),
            chan_ts: HashMap::new(),
            cur_arrival: None,
            delivered_udp: 0,
            delivered_icmp: 0,
            tcp_frames: 0,
            forwarded: 0,
            arp_frames: 0,
            reasm_absorbed: 0,
            reasm_expired: 0,
            flushed: 0,
            host_drops: HashMap::new(),
        }
    }

    /// True when hooks record.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn ev(&mut self, t: SimTime, kind: &'static str, stage: &'static str, id: u64, cpu: usize) {
        self.trace.record(TraceEvent {
            t_ns: t.as_nanos(),
            kind,
            stage,
            id,
            cpu: cpu as u32,
            dur_ns: 0,
        });
    }

    /// A frame arrived at the NIC (rx-DMA). `ordinal` is the NIC's frame
    /// counter.
    pub(crate) fn on_rx(&mut self, now: SimTime, ordinal: u64) {
        if self.enabled {
            self.ev(now, "rx-dma", "link", ordinal, 0);
        }
    }

    /// A frame died on the NIC (ring overrun / early discard). Ledger
    /// counts come from NIC statistics; this only traces.
    pub(crate) fn on_nic_drop(&mut self, now: SimTime, stage: &'static str) {
        if self.enabled {
            self.ev(now, "drop", stage, 0, 0);
        }
    }

    /// A host-side frame drop: ledger + trace.
    pub(crate) fn on_drop(&mut self, now: SimTime, cpu: usize, p: DropPoint) {
        if self.enabled {
            *self.host_drops.entry(p).or_insert(0) += 1;
            self.ev(now, "drop", p.name(), 0, cpu);
        }
    }

    /// A frame entered the BSD shared IP queue.
    pub(crate) fn on_ipq_enqueue(&mut self, now: SimTime, depth: usize) {
        if self.enabled {
            self.ipq_ts.push_back(now);
            self.ev(now, "enqueue", "ip-queue", depth as u64, 0);
        }
    }

    /// The softirq took a frame off the IP queue: dispatch-delay sample
    /// and arrival bookkeeping.
    pub(crate) fn on_ipq_dequeue(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            if let Some(t) = self.ipq_ts.pop_front() {
                self.softirq_dispatch.record_duration(now - t);
                self.cur_arrival = Some(t);
            }
            self.ev(now, "softirq", "ip-input", 0, cpu);
        }
    }

    /// The demux function matched a frame to a channel (host interrupt
    /// handler, SOFT-LRP / Early-Demux).
    pub(crate) fn on_demux(&mut self, now: SimTime, cpu: usize, chan: ChannelId) {
        if self.enabled {
            self.ev(now, "demux", "match", chan.0 as u64, cpu);
        }
    }

    /// A frame was enqueued on an NI channel (by the host handler or by
    /// NI firmware).
    pub(crate) fn on_chan_enqueue(&mut self, now: SimTime, cpu: usize, chan: ChannelId) {
        if self.enabled {
            self.chan_ts.entry(chan).or_default().push_back(now);
            self.ev(now, "enqueue", "channel", chan.0 as u64, cpu);
        }
    }

    /// A frame left an NI channel for protocol processing: residency
    /// sample and arrival bookkeeping.
    pub(crate) fn on_chan_dequeue(&mut self, now: SimTime, cpu: usize, chan: ChannelId) {
        if self.enabled {
            if let Some(t) = self.chan_ts.get_mut(&chan).and_then(|q| q.pop_front()) {
                self.channel_residency.record_duration(now - t);
                self.cur_arrival = Some(t);
            }
            self.ev(now, "dequeue", "channel", chan.0 as u64, cpu);
        }
    }

    /// An eager softirq (Early-Demux) dispatched the just-dequeued frame:
    /// the channel residency *is* the dispatch delay.
    pub(crate) fn note_softirq_dispatch(&mut self, now: SimTime, cpu: usize, tag: &'static str) {
        if self.enabled {
            if let Some(arr) = self.cur_arrival {
                self.softirq_dispatch.record_duration(now - arr);
            }
            self.ev(now, "softirq", tag, 0, cpu);
        }
    }

    /// Protocol processing of one frame finished; `dur` is its modelled
    /// CPU cost (recorded as a span event).
    pub(crate) fn on_proto(
        &mut self,
        now: SimTime,
        cpu: usize,
        stage: &'static str,
        dur: SimDuration,
    ) {
        if self.enabled {
            self.trace.record(TraceEvent {
                t_ns: now.as_nanos(),
                kind: "proto",
                stage,
                id: 0,
                cpu: cpu as u32,
                dur_ns: dur.as_nanos(),
            });
        }
    }

    /// A UDP datagram landed in a socket receive buffer.
    pub(crate) fn on_udp_delivered(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.delivered_udp += 1;
            if let Some(arr) = self.cur_arrival.take() {
                self.arrival_to_deliver.record_duration(now - arr);
            }
            self.ev(now, "deliver", "udp", sock, cpu);
        }
    }

    /// An ICMP message landed in the proxy daemon's raw socket.
    pub(crate) fn on_icmp_delivered(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.delivered_icmp += 1;
            if let Some(arr) = self.cur_arrival.take() {
                self.arrival_to_deliver.record_duration(now - arr);
            }
            self.ev(now, "deliver", "icmp", sock, cpu);
        }
    }

    /// A frame entered TCP input processing.
    pub(crate) fn on_tcp_frame(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.tcp_frames += 1;
            self.cur_arrival = None;
            self.ev(now, "deliver", "tcp", 0, cpu);
        }
    }

    /// A frame was handed to IP forwarding.
    pub(crate) fn on_forwarded(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.forwarded += 1;
            self.cur_arrival = None;
            self.ev(now, "deliver", "forward", 0, cpu);
        }
    }

    /// An ARP frame was counted and ignored.
    pub(crate) fn on_arp(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.arp_frames += 1;
            self.cur_arrival = None;
            self.ev(now, "deliver", "arp", 0, cpu);
        }
    }

    /// A fragment was absorbed by the reassembler (or unparseable channel
    /// drainage was discarded).
    pub(crate) fn on_reasm_absorbed(&mut self, now: SimTime, cpu: usize) {
        if self.enabled {
            self.reasm_absorbed += 1;
            self.cur_arrival = None;
            self.ev(now, "deliver", "reasm", 0, cpu);
        }
    }

    /// A reassembly flow expired holding `frames` absorbed fragments:
    /// re-attribute them from the absorbed bucket to the expired bucket.
    pub(crate) fn on_reasm_expired(&mut self, now: SimTime, frames: u64) {
        if self.enabled && frames > 0 {
            debug_assert!(
                self.reasm_absorbed >= frames,
                "expired more fragments than were absorbed"
            );
            self.reasm_absorbed = self.reasm_absorbed.saturating_sub(frames);
            self.reasm_expired += frames;
            self.ev(now, "drop", "ReasmExpired", frames, 0);
        }
    }

    /// A channel was destroyed with `n` frames still queued.
    pub(crate) fn on_chan_flush(&mut self, chan: ChannelId, n: usize) {
        if self.enabled {
            self.flushed += n as u64;
            self.chan_ts.remove(&chan);
        }
    }

    /// A blocked receiver was woken for delivered data.
    pub(crate) fn on_wakeup(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.ev(now, "wakeup", "recv", sock, cpu);
        }
    }

    /// A receive call returned data to the application.
    pub(crate) fn on_recv(&mut self, now: SimTime, cpu: usize, sock: u64) {
        if self.enabled {
            self.ev(now, "recv", "return", sock, cpu);
        }
    }

    /// Host-side drop count at a point.
    pub fn host_dropped(&self, p: DropPoint) -> u64 {
        self.host_drops.get(&p).copied().unwrap_or(0)
    }
}

/// The frame-disposition ledger: where every accepted frame ended up.
///
/// Produced by [`Host::packet_ledger`]; meaningful only when the host ran
/// with [`HostConfig::telemetry`](crate::HostConfig) enabled.
#[derive(Clone, Debug)]
pub struct PacketLedger {
    /// Frames the NIC accepted from the link.
    pub accepted: u64,
    /// Dropped at the NIC receive ring.
    pub nic_ring_drops: u64,
    /// Discarded early by NI-demux firmware.
    pub nic_early_discards: u64,
    /// Dropped by an injected NIC receive stall (device fault).
    pub nic_stall_drops: u64,
    /// Still queued (RX rings + NI channels + IP queue).
    pub in_flight: u64,
    /// UDP datagrams delivered into socket buffers.
    pub delivered_udp: u64,
    /// ICMP messages delivered.
    pub delivered_icmp: u64,
    /// Frames consumed by TCP input processing.
    pub tcp_frames: u64,
    /// Frames handed to IP forwarding.
    pub forwarded: u64,
    /// ARP frames counted and ignored.
    pub arp_frames: u64,
    /// Fragments absorbed by reassembly.
    pub reasm_absorbed: u64,
    /// Fragment frames discarded by reassembly-flow expiry.
    pub reasm_expired: u64,
    /// Frames flushed at channel destruction.
    pub flushed: u64,
    /// Host-side drops, sorted by drop-point name.
    pub host_drops: Vec<(&'static str, u64)>,
}

impl PacketLedger {
    /// Total host-side drops.
    pub fn host_dropped(&self) -> u64 {
        self.host_drops.iter().map(|(_, n)| n).sum()
    }

    /// Sum of all disposition buckets.
    pub fn disposed(&self) -> u64 {
        self.nic_ring_drops
            + self.nic_early_discards
            + self.nic_stall_drops
            + self.in_flight
            + self.delivered_udp
            + self.delivered_icmp
            + self.tcp_frames
            + self.forwarded
            + self.arp_frames
            + self.reasm_absorbed
            + self.reasm_expired
            + self.flushed
            + self.host_dropped()
    }

    /// The DESIGN §7 packet-conservation invariant: every accepted frame
    /// is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.accepted == self.disposed()
    }
}

impl Host {
    /// Read access to the telemetry state.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    /// Assembles the frame-disposition ledger (see [`PacketLedger`]).
    pub fn packet_ledger(&self) -> PacketLedger {
        let nic = self.nic.stats();
        let in_flight = (self.nic.ring_depth() + self.nic.channel_depth_total()) as u64
            + self.ip_queue.len() as u64;
        let mut host_drops: Vec<(&'static str, u64)> = self
            .tele
            .host_drops
            .iter()
            .map(|(p, n)| (p.name(), *n))
            .collect();
        host_drops.sort_unstable();
        PacketLedger {
            accepted: nic.rx_frames,
            nic_ring_drops: nic.ring_drops,
            nic_early_discards: nic.early_discards,
            nic_stall_drops: nic.stall_drops,
            in_flight,
            delivered_udp: self.tele.delivered_udp,
            delivered_icmp: self.tele.delivered_icmp,
            tcp_frames: self.tele.tcp_frames,
            forwarded: self.tele.forwarded,
            arp_frames: self.tele.arp_frames,
            reasm_absorbed: self.tele.reasm_absorbed,
            reasm_expired: self.tele.reasm_expired,
            flushed: self.tele.flushed,
            host_drops,
        }
    }

    /// Dequeues a frame from an NI channel, recording channel residency.
    /// The single choke point for channel dequeues keeps the telemetry
    /// timestamp sidecars aligned with the frame queues.
    pub(crate) fn chan_dequeue(&mut self, now: SimTime, chan: ChannelId) -> Option<Frame> {
        let f = self.nic.channel_mut(chan).dequeue();
        if f.is_some() {
            let cpu = self.cur_cpu;
            self.tele.on_chan_dequeue(now, cpu, chan);
        }
        f
    }

    /// Destroys an NI channel, accounting any still-queued frames as
    /// flushed.
    pub(crate) fn destroy_channel_flushed(&mut self, chan: ChannelId) {
        let n = self.nic.channel(chan).depth();
        self.tele.on_chan_flush(chan, n);
        self.nic.destroy_channel(chan);
    }
}
