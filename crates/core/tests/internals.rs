//! Targeted tests of host-internal drop points and queue behaviours that
//! the architecture comparisons rest on.

use lrp_core::{Architecture, DropPoint, Host, HostConfig, World};
use lrp_net::{Injector, Pattern};
use lrp_sim::SimTime;
use lrp_wire::{udp, Frame, Ipv4Addr};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn blast_world(arch: Architecture, pps: f64) -> (World, lrp_apps::Shared<lrp_apps::SinkMetrics>) {
    let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
    let mut world = World::with_defaults();
    let mut host = Host::new(HostConfig::new(arch), B);
    host.spawn_app(
        "sink",
        0,
        0,
        Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
    );
    let b = world.add_host(host);
    let inj = Injector::new(
        Pattern::FixedRate { pps },
        SimTime::from_millis(10),
        3,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    world.add_injector(b, inj);
    (world, metrics)
}

/// BSD's drop cascade under deepening overload: first the socket buffer
/// (after full protocol processing), then the shared IP queue (after
/// interrupt processing only) once the softirq itself saturates — the
/// §2.2 sequence.
#[test]
fn bsd_drop_cascade_orders_by_depth() {
    // Moderate overload: drops at the socket buffer only.
    let (mut w, _m) = blast_world(Architecture::Bsd, 10_000.0);
    w.run_until(SimTime::from_secs(2));
    let h = &w.hosts[0];
    assert!(
        h.stats.dropped(DropPoint::SockBuf) > 0,
        "sockbuf drops first"
    );
    assert_eq!(
        h.stats.dropped(DropPoint::IpQueue),
        0,
        "softirq still keeps up at 10k"
    );
    // Deep overload: the IP queue overflows too.
    let (mut w, _m) = blast_world(Architecture::Bsd, 22_000.0);
    w.run_until(SimTime::from_secs(2));
    let h = &w.hosts[0];
    assert!(
        h.stats.dropped(DropPoint::IpQueue) > 0,
        "IP queue overflows once softirq saturates"
    );
}

/// LRP's counterpart: everything sheds at the NI channel; the socket
/// buffer never overflows because packets are only processed on demand.
#[test]
fn lrp_sheds_at_the_channel_only() {
    let (mut w, _m) = blast_world(Architecture::NiLrp, 20_000.0);
    w.run_until(SimTime::from_secs(2));
    let h = &w.hosts[0];
    assert_eq!(h.stats.dropped(DropPoint::SockBuf), 0);
    assert_eq!(h.stats.dropped(DropPoint::IpQueue), 0);
    assert!(
        h.nic.stats().early_discards > 10_000,
        "the NIC shed the excess: {}",
        h.nic.stats().early_discards
    );
}

/// SOFT-LRP: drops happen at the channel (host-side), counted under the
/// Channel drop point, still before any protocol processing.
#[test]
fn soft_lrp_sheds_at_the_channel() {
    let (mut w, _m) = blast_world(Architecture::SoftLrp, 20_000.0);
    w.run_until(SimTime::from_secs(2));
    let h = &w.hosts[0];
    assert!(h.stats.dropped(DropPoint::Channel) > 10_000);
    assert_eq!(h.stats.dropped(DropPoint::SockBuf), 0);
}

/// Early-Demux at overload drops at demux time with socket-queue
/// feedback; protocol processing is only spent on admitted packets.
#[test]
fn early_demux_feedback_admits_bounded_work() {
    let (mut w, m) = blast_world(Architecture::EarlyDemux, 20_000.0);
    w.run_until(SimTime::from_secs(2));
    let h = &w.hosts[0];
    let admitted = h.stats.udp_delivered + h.stats.dropped(DropPoint::SockBuf);
    let channel_drops = h.stats.dropped(DropPoint::Channel);
    assert!(channel_drops > 10_000, "most of the flood dies at demux");
    // Work admitted roughly tracks what the app consumed: the feedback
    // binds.
    let consumed = m.borrow().received;
    assert!(
        admitted < consumed + consumed / 2 + 4_000,
        "admitted {admitted} vs consumed {consumed}: feedback too loose"
    );
}

/// Packet conservation at the NIC boundary: received = delivered + still
/// queued + dropped (each drop at exactly one point).
#[test]
fn packet_conservation_exact() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (mut w, m) = blast_world(arch, 15_000.0);
        w.run_until(SimTime::from_secs(1));
        let h = &w.hosts[0];
        let nic = h.nic.stats();
        let delivered = h.stats.udp_delivered;
        let dropped = h.stats.total_drops() + nic.early_discards + nic.ring_drops;
        // Frames still in flight inside the host at cutoff.
        let consumed = m.borrow().received;
        let in_host = delivered - consumed;
        assert!(
            delivered + dropped <= nic.rx_frames,
            "{arch}: overcounted ({delivered}+{dropped} > {})",
            nic.rx_frames
        );
        let unaccounted = nic.rx_frames - delivered - dropped;
        // Whatever is neither delivered nor dropped must still be sitting
        // in a bounded queue (channel ≤ 64, ipq ≤ 50, ring ≤ 256, rcvq).
        assert!(
            unaccounted <= 64 + 50 + 256 + 325,
            "{arch}: {unaccounted} frames unaccounted"
        );
        let _ = in_host;
    }
}

/// Forwarding decrements TTL and drops expired packets instead of looping
/// them.
#[test]
fn forwarding_respects_ttl() {
    const D: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
    let mut world = World::with_defaults();
    let mut gw = Host::new(HostConfig::new(Architecture::SoftLrp), B);
    gw.enable_forwarding(0);
    let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
    let mut hd = Host::new(HostConfig::new(Architecture::SoftLrp), D);
    hd.spawn_app(
        "sink",
        0,
        0,
        Box::new(lrp_apps::BlastSink::new(7000, metrics.clone())),
    );
    let g = world.add_host(gw);
    world.add_host(hd);
    world.add_route_via(D, g);
    // Inject one normal packet and one with TTL=1 (expires at the
    // gateway).
    let inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(5),
        12,
        move |seq| {
            let seg = lrp_wire::udp::build(A, D, 6000, 7000, &[0u8; 14], false);
            let mut h = lrp_wire::ipv4::Ipv4Header::new(
                A,
                D,
                lrp_wire::proto::UDP,
                (seq & 0xFFFF) as u16,
                seg.len(),
            );
            if seq % 2 == 1 {
                h.ttl = 1; // Will expire at the gateway.
            }
            Frame::ipv4(lrp_wire::ipv4::build_datagram(&h, &seg))
        },
    );
    let idx = world.add_injector(g, inj);
    world.run_until(SimTime::from_millis(100));
    let emitted = world.injector_emitted(idx);
    let delivered = metrics.borrow().received;
    let expired = world.hosts[g].stats.dropped(DropPoint::BadPacket);
    assert!(emitted >= 20);
    // Half the packets expire at the gateway; the rest arrive.
    assert!(
        (delivered as i64 - (emitted / 2) as i64).abs() <= 2,
        "delivered {delivered} of {emitted}"
    );
    assert!(
        (expired as i64 - (emitted / 2) as i64).abs() <= 2,
        "expired {expired} of {emitted}"
    );
}
