//! Robustness scenarios from the paper's §2.3/§3 discussion: corrupted
//! packet floods, shared sockets, and the idle protocol thread.

use lrp_core::{
    AppCtx, AppLogic, Architecture, DropPoint, Host, HostConfig, SockProto, SyscallOp, SyscallRet,
    World,
};
use lrp_net::{Injector, Pattern};
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::SockId;
use lrp_wire::{udp, Endpoint, Frame, Ipv4Addr};
use std::cell::RefCell;
use std::rc::Rc;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Counts datagrams received on a socket created by someone else (shared
/// socket reader).
struct SharedReader {
    sock: Rc<RefCell<Option<SockId>>>,
    got: Rc<RefCell<u64>>,
}

impl AppLogic for SharedReader {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Sleep(SimDuration::from_millis(1))
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        if let SyscallRet::DataFrom(..) = ret {
            *self.got.borrow_mut() += 1;
        }
        match *self.sock.borrow() {
            Some(s) => SyscallOp::Recv {
                sock: s,
                max_len: 65_536,
            },
            None => SyscallOp::Sleep(SimDuration::from_millis(1)),
        }
    }
}

/// Creates the socket, publishes it, then reads like the others.
struct SharedOwner {
    port: u16,
    sock: Rc<RefCell<Option<SockId>>>,
    got: Rc<RefCell<u64>>,
    state: u8,
}

impl AppLogic for SharedOwner {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                *self.sock.borrow_mut() = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            (_, SyscallRet::DataFrom(..)) => {
                *self.got.borrow_mut() += 1;
                SyscallOp::Recv {
                    sock: self.sock.borrow().expect("published"),
                    max_len: 65_536,
                }
            }
            _ => SyscallOp::Recv {
                sock: self.sock.borrow().expect("published"),
                max_len: 65_536,
            },
        }
    }
}

/// §3.1/note 8: multiple processes may read from one UDP socket, sharing
/// its NI channel; "the process with the highest priority performs the
/// protocol processing". With the owner reniced into the background, the
/// favored reader does (nearly all of) the work, and nothing is lost.
#[test]
fn shared_udp_socket_higher_priority_reader_wins() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let sock = Rc::new(RefCell::new(None));
        let got_owner = Rc::new(RefCell::new(0u64));
        let got_reader = Rc::new(RefCell::new(0u64));
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        // The owner creates the socket but runs at nice +20.
        host.spawn_app(
            "owner",
            20,
            0,
            Box::new(SharedOwner {
                port: 9000,
                sock: sock.clone(),
                got: got_owner.clone(),
                state: 0,
            }),
        );
        // The sharing reader runs at normal priority.
        host.spawn_app(
            "reader",
            0,
            0,
            Box::new(SharedReader {
                sock: sock.clone(),
                got: got_reader.clone(),
            }),
        );
        let b = world.add_host(host);
        let inj = Injector::new(
            Pattern::FixedRate { pps: 2_000.0 },
            SimTime::from_millis(10),
            5,
            move |seq| {
                Frame::Ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        world.add_injector(b, inj);
        world.run_until(SimTime::from_secs(1));
        let o = *got_owner.borrow();
        let r = *got_reader.borrow();
        let total = o + r;
        assert!(
            (1_900..=2_000).contains(&total),
            "{arch}: {o}+{r} of ~1980 delivered"
        );
        assert!(
            r >= 9 * o.max(1) || o == 0,
            "{arch}: the high-priority reader should dominate: owner={o} reader={r}"
        );
    }
}

/// §3: "a flood of ... corrupted data packets can still cause livelock"
/// under early-demux-only designs. Under NI-LRP, malformed packets die on
/// the NIC with zero host cost, so a victim application keeps its full
/// throughput; under BSD the host pays interrupt + protocol work for every
/// corrupted packet.
#[test]
fn corrupted_packet_flood() {
    let good_rate = 4_000.0;
    let bad_rate = 18_000.0;
    let mut results = std::collections::HashMap::new();
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        host.spawn_app(
            "sink",
            0,
            0,
            Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
        );
        let b = world.add_host(host);
        let good = Injector::new(
            Pattern::FixedRate { pps: good_rate },
            SimTime::from_millis(10),
            6,
            move |seq| {
                Frame::Ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        let bad = Injector::new(
            Pattern::FixedRate { pps: bad_rate },
            SimTime::from_millis(12),
            7,
            move |seq| {
                // Corrupt the IP header checksum.
                let mut d =
                    udp::build_datagram(A, B, 6000, 9000, (seq & 0xFFFF) as u16, &[0u8; 14], false);
                d[10] ^= 0xFF;
                Frame::Ipv4(d)
            },
        );
        world.add_injector(b, good);
        world.add_injector(b, bad);
        world.run_until(SimTime::from_secs(2));
        results.insert(arch, metrics.borrow().series.steady_rate(5));
        if arch == Architecture::NiLrp {
            // The NIC discarded the garbage; the host never saw it.
            let h = &world.hosts[b];
            assert!(
                h.nic.stats().early_discards >= (bad_rate * 1.5) as u64,
                "NI discards malformed"
            );
            assert_eq!(h.stats.dropped(DropPoint::BadPacket), 0);
        }
    }
    let bsd = results[&Architecture::Bsd];
    let ni = results[&Architecture::NiLrp];
    assert!(
        ni > 0.95 * good_rate,
        "NI-LRP unaffected by the corrupt flood: {ni}"
    );
    assert!(
        bsd < 0.75 * good_rate,
        "BSD must lose throughput to corrupted packets: {bsd}"
    );
}

/// §3.3: with an otherwise idle CPU, the minimal-priority protocol thread
/// pre-processes queued UDP packets so a later `recv` finds them ready.
#[test]
fn idle_thread_preprocesses_when_idle() {
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.idle_thread = true;
    let sock = Rc::new(RefCell::new(None));
    let got = Rc::new(RefCell::new(0u64));
    let mut world = World::with_defaults();
    let mut host = Host::new(cfg, B);
    // The owner binds but then sleeps a long time before reading.
    struct LazyReader {
        sock: Rc<RefCell<Option<SockId>>>,
        got: Rc<RefCell<u64>>,
        state: u8,
    }
    impl AppLogic for LazyReader {
        fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
            SyscallOp::Socket(SockProto::Udp)
        }
        fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
            match (self.state, ret) {
                (0, SyscallRet::Socket(s)) => {
                    *self.sock.borrow_mut() = Some(s);
                    self.state = 1;
                    SyscallOp::Bind {
                        sock: s,
                        port: 9000,
                    }
                }
                (1, SyscallRet::Ok) => {
                    self.state = 2;
                    // Sleep while packets arrive: the idle thread should
                    // process them meanwhile.
                    SyscallOp::Sleep(SimDuration::from_millis(100))
                }
                (_, SyscallRet::DataFrom(..)) => {
                    *self.got.borrow_mut() += 1;
                    SyscallOp::Recv {
                        sock: self.sock.borrow().expect("bound"),
                        max_len: 65_536,
                    }
                }
                _ => SyscallOp::Recv {
                    sock: self.sock.borrow().expect("bound"),
                    max_len: 65_536,
                },
            }
        }
    }
    host.spawn_app(
        "lazy-reader",
        0,
        0,
        Box::new(LazyReader {
            sock: sock.clone(),
            got: got.clone(),
            state: 0,
        }),
    );
    let b = world.add_host(host);
    // 20 packets arrive during the reader's sleep.
    let mut inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(20),
        8,
        move |seq| {
            Frame::Ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    inj.until = SimTime::from_millis(40);
    world.add_injector(b, inj);
    world.run_until(SimTime::from_millis(80));
    // Reader is still asleep, but the idle thread has drained the channel
    // into the socket's ready queue.
    let h = &world.hosts[b];
    let chan_depths: usize = (0..0).sum::<usize>();
    let _ = chan_depths;
    assert_eq!(*got.borrow(), 0, "reader has not run yet");
    assert!(
        h.stats.udp_delivered >= 15,
        "idle thread pre-processed packets: {} ready",
        h.stats.udp_delivered
    );
    world.run_until(SimTime::from_secs(1));
    assert_eq!(*got.borrow(), 20, "all packets eventually read");
}

/// The paper's central accounting claim (§2.2 vs §3): under BSD,
/// interrupt-context network processing is charged to whatever process
/// happens to be running — here a compute hog that never touches the
/// network; under LRP it is charged to the receiving process as system
/// time.
#[test]
fn interrupt_time_charging_policy() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        host.spawn_app(
            "sink",
            0,
            0,
            Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
        );
        host.spawn_app("hog", 0, 0, Box::new(lrp_apps::ComputeHog));
        let b = world.add_host(host);
        let inj = Injector::new(
            Pattern::FixedRate { pps: 3_000.0 },
            SimTime::from_millis(10),
            9,
            move |seq| {
                Frame::Ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        world.add_injector(b, inj);
        world.run_until(SimTime::from_secs(2));
        let procs = world.hosts[b].sched.procs();
        let hog = procs.iter().find(|p| p.name == "hog").unwrap();
        let sink = procs.iter().find(|p| p.name == "sink").unwrap();
        let hog_intr = hog.acct.interrupt.as_secs_f64();
        let sink_sys = sink.acct.system.as_secs_f64();
        match arch {
            Architecture::Bsd => {
                // 3k pkts/s x ~70us of intr+softirq ≈ 0.21 s/s, landing
                // mostly on the hog (it holds the CPU).
                assert!(
                    hog_intr > 0.30,
                    "BSD: hog must be mis-charged for protocol work, got {hog_intr:.3}s"
                );
            }
            Architecture::SoftLrp => {
                // The hog still pays the hardware interrupt + demux
                // (~25-35us/pkt: SOFT-LRP's documented overhead) but not
                // the protocol processing.
                assert!(
                    (0.08..0.28).contains(&hog_intr),
                    "SOFT-LRP: hog pays demux only, got {hog_intr:.3}s"
                );
                assert!(
                    sink_sys > 0.15,
                    "SOFT-LRP: the receiver pays for its own traffic, got {sink_sys:.3}s"
                );
            }
            _ => {
                // NI-LRP: demux is on the NIC; the hog pays (almost)
                // nothing.
                assert!(
                    hog_intr < 0.05,
                    "NI-LRP: hog should pay ~nothing, got {hog_intr:.3}s"
                );
                assert!(
                    sink_sys > 0.15,
                    "NI-LRP: the receiver pays for its own traffic, got {sink_sys:.3}s"
                );
            }
        }
        assert!(metrics.borrow().received > 5_000, "{arch}: traffic flowed");
    }
}

/// The capture tap records delivered frames as summaries.
#[test]
fn capture_tap_records_traffic() {
    let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
    let mut world = World::with_defaults();
    world.enable_capture(16);
    let mut host = Host::new(HostConfig::new(Architecture::SoftLrp), B);
    host.spawn_app(
        "sink",
        0,
        0,
        Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
    );
    let b = world.add_host(host);
    let mut inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(5),
        10,
        move |seq| {
            Frame::Ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    inj.until = SimTime::from_millis(40);
    world.add_injector(b, inj);
    world.run_until(SimTime::from_millis(100));
    let cap = world.capture();
    assert!(!cap.is_empty() && cap.len() <= 16, "bounded capture");
    assert!(
        cap.iter().all(|(_, h, s)| *h == b && s.contains("UDP")),
        "summaries describe the traffic: {:?}",
        cap.first()
    );
}

/// Sending far beyond the link rate backs up in the interface queue and
/// overflows it: drops are counted at the IfQueue point, and the sender
/// sees ENOBUFS-style errors rather than silent loss.
#[test]
fn interface_queue_backpressure() {
    struct Flooder {
        sock: Option<SockId>,
        sent: u32,
        errors: Rc<RefCell<u32>>,
    }
    impl AppLogic for Flooder {
        fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
            SyscallOp::Socket(SockProto::Udp)
        }
        fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
            match ret {
                SyscallRet::Socket(s) => {
                    self.sock = Some(s);
                    SyscallOp::Bind {
                        sock: s,
                        port: 5000,
                    }
                }
                SyscallRet::Err(lrp_core::Errno::NoBufs) => {
                    *self.errors.borrow_mut() += 1;
                    self.next()
                }
                _ => self.next(),
            }
        }
    }
    impl Flooder {
        fn next(&mut self) -> SyscallOp {
            if self.sent >= 2_000 {
                return SyscallOp::Exit;
            }
            self.sent += 1;
            SyscallOp::SendTo {
                sock: self.sock.expect("socket"),
                dst: Endpoint::new(B, 9000),
                // 8 KB datagrams: the wire needs ~0.45 ms each, far slower
                // than the send syscall path produces them.
                data: vec![0u8; 8_000],
            }
        }
    }
    let errors = Rc::new(RefCell::new(0u32));
    let mut world = World::with_defaults();
    let mut host = Host::new(HostConfig::new(Architecture::Bsd), A);
    host.spawn_app(
        "flooder",
        0,
        0,
        Box::new(Flooder {
            sock: None,
            sent: 0,
            errors: errors.clone(),
        }),
    );
    let a = world.add_host(host);
    world.run_until(SimTime::from_secs(2));
    let drops = world.hosts[a].stats.dropped(DropPoint::IfQueue);
    assert!(drops > 0, "overdriven link must overflow the ifq");
    assert_eq!(
        *errors.borrow() as u64,
        drops,
        "every ifq drop surfaced to the sender"
    );
}
