//! Robustness scenarios from the paper's §2.3/§3 discussion: corrupted
//! packet floods, shared sockets, and the idle protocol thread.

use lrp_core::{
    AppCtx, AppLogic, Architecture, DropPoint, Host, HostConfig, SockProto, SyscallOp, SyscallRet,
    World,
};
use lrp_net::{Injector, Pattern};
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::SockId;
use lrp_wire::{ipv4, udp, Endpoint, Frame, Ipv4Addr};
use std::cell::RefCell;
use std::rc::Rc;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Counts datagrams received on a socket created by someone else (shared
/// socket reader).
struct SharedReader {
    sock: Rc<RefCell<Option<SockId>>>,
    got: Rc<RefCell<u64>>,
}

impl AppLogic for SharedReader {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Sleep(SimDuration::from_millis(1))
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        if let SyscallRet::DataFrom(..) = ret {
            *self.got.borrow_mut() += 1;
        }
        match *self.sock.borrow() {
            Some(s) => SyscallOp::Recv {
                sock: s,
                max_len: 65_536,
            },
            None => SyscallOp::Sleep(SimDuration::from_millis(1)),
        }
    }
}

/// Creates the socket, publishes it, then reads like the others.
struct SharedOwner {
    port: u16,
    sock: Rc<RefCell<Option<SockId>>>,
    got: Rc<RefCell<u64>>,
    state: u8,
}

impl AppLogic for SharedOwner {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                *self.sock.borrow_mut() = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            (_, SyscallRet::DataFrom(..)) => {
                *self.got.borrow_mut() += 1;
                SyscallOp::Recv {
                    sock: self.sock.borrow().expect("published"),
                    max_len: 65_536,
                }
            }
            _ => SyscallOp::Recv {
                sock: self.sock.borrow().expect("published"),
                max_len: 65_536,
            },
        }
    }
}

/// §3.1/note 8: multiple processes may read from one UDP socket, sharing
/// its NI channel; "the process with the highest priority performs the
/// protocol processing". With the owner reniced into the background, the
/// favored reader does (nearly all of) the work, and nothing is lost.
#[test]
fn shared_udp_socket_higher_priority_reader_wins() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let sock = Rc::new(RefCell::new(None));
        let got_owner = Rc::new(RefCell::new(0u64));
        let got_reader = Rc::new(RefCell::new(0u64));
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        // The owner creates the socket but runs at nice +20.
        host.spawn_app(
            "owner",
            20,
            0,
            Box::new(SharedOwner {
                port: 9000,
                sock: sock.clone(),
                got: got_owner.clone(),
                state: 0,
            }),
        );
        // The sharing reader runs at normal priority.
        host.spawn_app(
            "reader",
            0,
            0,
            Box::new(SharedReader {
                sock: sock.clone(),
                got: got_reader.clone(),
            }),
        );
        let b = world.add_host(host);
        let inj = Injector::new(
            Pattern::FixedRate { pps: 2_000.0 },
            SimTime::from_millis(10),
            5,
            move |seq| {
                Frame::ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        world.add_injector(b, inj);
        world.run_until(SimTime::from_secs(1));
        let o = *got_owner.borrow();
        let r = *got_reader.borrow();
        let total = o + r;
        assert!(
            (1_900..=2_000).contains(&total),
            "{arch}: {o}+{r} of ~1980 delivered"
        );
        assert!(
            r >= 9 * o.max(1) || o == 0,
            "{arch}: the high-priority reader should dominate: owner={o} reader={r}"
        );
    }
}

/// §3: "a flood of ... corrupted data packets can still cause livelock"
/// under early-demux-only designs. Under NI-LRP, malformed packets die on
/// the NIC with zero host cost, so a victim application keeps its full
/// throughput; under BSD the host pays interrupt + protocol work for every
/// corrupted packet.
#[test]
fn corrupted_packet_flood() {
    let good_rate = 4_000.0;
    let bad_rate = 18_000.0;
    let mut results = std::collections::HashMap::new();
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        host.spawn_app(
            "sink",
            0,
            0,
            Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
        );
        let b = world.add_host(host);
        let good = Injector::new(
            Pattern::FixedRate { pps: good_rate },
            SimTime::from_millis(10),
            6,
            move |seq| {
                Frame::ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        let bad = Injector::new(
            Pattern::FixedRate { pps: bad_rate },
            SimTime::from_millis(12),
            7,
            move |seq| {
                // Corrupt the IP header checksum.
                let mut d =
                    udp::build_datagram(A, B, 6000, 9000, (seq & 0xFFFF) as u16, &[0u8; 14], false);
                d[10] ^= 0xFF;
                Frame::ipv4(d)
            },
        );
        world.add_injector(b, good);
        world.add_injector(b, bad);
        world.run_until(SimTime::from_secs(2));
        results.insert(arch, metrics.borrow().series.steady_rate(5));
        if arch == Architecture::NiLrp {
            // The NIC discarded the garbage; the host never saw it.
            let h = &world.hosts[b];
            assert!(
                h.nic.stats().early_discards >= (bad_rate * 1.5) as u64,
                "NI discards malformed"
            );
            assert_eq!(h.stats.dropped(DropPoint::BadPacket), 0);
        }
    }
    let bsd = results[&Architecture::Bsd];
    let ni = results[&Architecture::NiLrp];
    assert!(
        ni > 0.95 * good_rate,
        "NI-LRP unaffected by the corrupt flood: {ni}"
    );
    assert!(
        bsd < 0.75 * good_rate,
        "BSD must lose throughput to corrupted packets: {bsd}"
    );
}

/// §3.3: with an otherwise idle CPU, the minimal-priority protocol thread
/// pre-processes queued UDP packets so a later `recv` finds them ready.
#[test]
fn idle_thread_preprocesses_when_idle() {
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.idle_thread = true;
    let sock = Rc::new(RefCell::new(None));
    let got = Rc::new(RefCell::new(0u64));
    let mut world = World::with_defaults();
    let mut host = Host::new(cfg, B);
    // The owner binds but then sleeps a long time before reading.
    struct LazyReader {
        sock: Rc<RefCell<Option<SockId>>>,
        got: Rc<RefCell<u64>>,
        state: u8,
    }
    impl AppLogic for LazyReader {
        fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
            SyscallOp::Socket(SockProto::Udp)
        }
        fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
            match (self.state, ret) {
                (0, SyscallRet::Socket(s)) => {
                    *self.sock.borrow_mut() = Some(s);
                    self.state = 1;
                    SyscallOp::Bind {
                        sock: s,
                        port: 9000,
                    }
                }
                (1, SyscallRet::Ok) => {
                    self.state = 2;
                    // Sleep while packets arrive: the idle thread should
                    // process them meanwhile.
                    SyscallOp::Sleep(SimDuration::from_millis(100))
                }
                (_, SyscallRet::DataFrom(..)) => {
                    *self.got.borrow_mut() += 1;
                    SyscallOp::Recv {
                        sock: self.sock.borrow().expect("bound"),
                        max_len: 65_536,
                    }
                }
                _ => SyscallOp::Recv {
                    sock: self.sock.borrow().expect("bound"),
                    max_len: 65_536,
                },
            }
        }
    }
    host.spawn_app(
        "lazy-reader",
        0,
        0,
        Box::new(LazyReader {
            sock: sock.clone(),
            got: got.clone(),
            state: 0,
        }),
    );
    let b = world.add_host(host);
    // 20 packets arrive during the reader's sleep.
    let mut inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(20),
        8,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    inj.until = SimTime::from_millis(40);
    world.add_injector(b, inj);
    world.run_until(SimTime::from_millis(80));
    // Reader is still asleep, but the idle thread has drained the channel
    // into the socket's ready queue.
    let h = &world.hosts[b];
    let chan_depths: usize = (0..0).sum::<usize>();
    let _ = chan_depths;
    assert_eq!(*got.borrow(), 0, "reader has not run yet");
    assert!(
        h.stats.udp_delivered >= 15,
        "idle thread pre-processed packets: {} ready",
        h.stats.udp_delivered
    );
    world.run_until(SimTime::from_secs(1));
    assert_eq!(*got.borrow(), 20, "all packets eventually read");
}

/// The paper's central accounting claim (§2.2 vs §3): under BSD,
/// interrupt-context network processing is charged to whatever process
/// happens to be running — here a compute hog that never touches the
/// network; under LRP it is charged to the receiving process as system
/// time.
#[test]
fn interrupt_time_charging_policy() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
        let mut world = World::with_defaults();
        let mut host = Host::new(HostConfig::new(arch), B);
        host.spawn_app(
            "sink",
            0,
            0,
            Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
        );
        host.spawn_app("hog", 0, 0, Box::new(lrp_apps::ComputeHog));
        let b = world.add_host(host);
        let inj = Injector::new(
            Pattern::FixedRate { pps: 3_000.0 },
            SimTime::from_millis(10),
            9,
            move |seq| {
                Frame::ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9000,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 14],
                    false,
                ))
            },
        );
        world.add_injector(b, inj);
        world.run_until(SimTime::from_secs(2));
        let procs = world.hosts[b].sched.procs();
        let hog = procs.iter().find(|p| p.name == "hog").unwrap();
        let sink = procs.iter().find(|p| p.name == "sink").unwrap();
        let hog_intr = hog.acct.interrupt.as_secs_f64();
        let sink_sys = sink.acct.system.as_secs_f64();
        match arch {
            Architecture::Bsd => {
                // 3k pkts/s x ~70us of intr+softirq ≈ 0.21 s/s, landing
                // mostly on the hog (it holds the CPU).
                assert!(
                    hog_intr > 0.30,
                    "BSD: hog must be mis-charged for protocol work, got {hog_intr:.3}s"
                );
            }
            Architecture::SoftLrp => {
                // The hog still pays the hardware interrupt + demux
                // (~25-35us/pkt: SOFT-LRP's documented overhead) but not
                // the protocol processing.
                assert!(
                    (0.08..0.28).contains(&hog_intr),
                    "SOFT-LRP: hog pays demux only, got {hog_intr:.3}s"
                );
                assert!(
                    sink_sys > 0.15,
                    "SOFT-LRP: the receiver pays for its own traffic, got {sink_sys:.3}s"
                );
            }
            _ => {
                // NI-LRP: demux is on the NIC; the hog pays (almost)
                // nothing.
                assert!(
                    hog_intr < 0.05,
                    "NI-LRP: hog should pay ~nothing, got {hog_intr:.3}s"
                );
                assert!(
                    sink_sys > 0.15,
                    "NI-LRP: the receiver pays for its own traffic, got {sink_sys:.3}s"
                );
            }
        }
        assert!(metrics.borrow().received > 5_000, "{arch}: traffic flowed");
    }
}

/// The capture tap records delivered frames as summaries.
#[test]
fn capture_tap_records_traffic() {
    let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
    let mut world = World::with_defaults();
    world.enable_capture(16);
    let mut host = Host::new(HostConfig::new(Architecture::SoftLrp), B);
    host.spawn_app(
        "sink",
        0,
        0,
        Box::new(lrp_apps::BlastSink::new(9000, metrics.clone())),
    );
    let b = world.add_host(host);
    let mut inj = Injector::new(
        Pattern::FixedRate { pps: 1_000.0 },
        SimTime::from_millis(5),
        10,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 14],
                false,
            ))
        },
    );
    inj.until = SimTime::from_millis(40);
    world.add_injector(b, inj);
    world.run_until(SimTime::from_millis(100));
    let cap = world.capture();
    assert!(!cap.is_empty() && cap.len() <= 16, "bounded capture");
    assert!(
        cap.iter().all(|(_, h, s)| *h == b && s.contains("UDP")),
        "summaries describe the traffic: {:?}",
        cap.first()
    );
}

/// Sending far beyond the link rate backs up in the interface queue and
/// overflows it: drops are counted at the IfQueue point, and the sender
/// sees ENOBUFS-style errors rather than silent loss.
#[test]
fn interface_queue_backpressure() {
    struct Flooder {
        sock: Option<SockId>,
        sent: u32,
        errors: Rc<RefCell<u32>>,
    }
    impl AppLogic for Flooder {
        fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
            SyscallOp::Socket(SockProto::Udp)
        }
        fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
            match ret {
                SyscallRet::Socket(s) => {
                    self.sock = Some(s);
                    SyscallOp::Bind {
                        sock: s,
                        port: 5000,
                    }
                }
                SyscallRet::Err(lrp_core::Errno::NoBufs) => {
                    *self.errors.borrow_mut() += 1;
                    self.next()
                }
                _ => self.next(),
            }
        }
    }
    impl Flooder {
        fn next(&mut self) -> SyscallOp {
            if self.sent >= 2_000 {
                return SyscallOp::Exit;
            }
            self.sent += 1;
            SyscallOp::SendTo {
                sock: self.sock.expect("socket"),
                dst: Endpoint::new(B, 9000),
                // 8 KB datagrams: the wire needs ~0.45 ms each, far slower
                // than the send syscall path produces them.
                data: vec![0u8; 8_000],
            }
        }
    }
    let errors = Rc::new(RefCell::new(0u32));
    let mut world = World::with_defaults();
    let mut host = Host::new(HostConfig::new(Architecture::Bsd), A);
    host.spawn_app(
        "flooder",
        0,
        0,
        Box::new(Flooder {
            sock: None,
            sent: 0,
            errors: errors.clone(),
        }),
    );
    let a = world.add_host(host);
    world.run_until(SimTime::from_secs(2));
    let drops = world.hosts[a].stats.dropped(DropPoint::IfQueue);
    assert!(drops > 0, "overdriven link must overflow the ifq");
    assert_eq!(
        *errors.borrow() as u64,
        drops,
        "every ifq drop surfaced to the sender"
    );
}

// ---------------------------------------------------------------------------
// Deterministic fault injection: link faults, NIC faults, and the ledger.
// ---------------------------------------------------------------------------

/// A telemetry-enabled receiver host with a `BlastSink` bound to `port`.
fn sink_host(arch: Architecture, port: u16) -> (Host, Rc<RefCell<lrp_apps::SinkMetrics>>) {
    let metrics = lrp_apps::shared::<lrp_apps::SinkMetrics>();
    let mut cfg = HostConfig::new(arch);
    cfg.telemetry = true;
    let mut host = Host::new(cfg, B);
    host.spawn_app(
        "sink",
        0,
        0,
        Box::new(lrp_apps::BlastSink::new(port, metrics.clone())),
    );
    (host, metrics)
}

fn udp_injector(pps: f64, seed: u64, checksum: bool) -> Injector {
    Injector::new(
        Pattern::FixedRate { pps },
        SimTime::from_millis(10),
        seed,
        move |seq| {
            Frame::ipv4(udp::build_datagram(
                A,
                B,
                6000,
                9000,
                (seq & 0xFFFF) as u16,
                &[0u8; 64],
                checksum,
            ))
        },
    )
}

/// Link loss happens before the NIC: the destination accepts exactly the
/// frames the fault stage delivered, and its ledger still balances.
#[test]
fn bernoulli_link_loss_is_attributed_and_conserved() {
    let (host, metrics) = sink_host(Architecture::Bsd, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    let mut inj = udp_injector(5_000.0, 6, false);
    inj.until = SimTime::from_millis(1800);
    world.add_injector(b, inj);
    world.set_link_faults(b, lrp_net::FaultPlan::bernoulli(5, 0.25));
    // Injection stops at 1.8s; the extra 200ms drains in-flight frames so
    // the NIC-side counters can be compared exactly.
    world.run_until(SimTime::from_secs(2));
    let fs = *world.link_fault_stats(b).expect("plan installed");
    assert!(fs.dropped > 0, "loss must fire: {fs:?}");
    assert_eq!(fs.offered, fs.delivered + fs.dropped);
    assert_eq!(
        world.hosts[b].rx_frames(),
        fs.delivered,
        "NIC accepts exactly what the link delivered"
    );
    let rate = fs.dropped as f64 / fs.offered as f64;
    assert!((rate - 0.25).abs() < 0.05, "loss rate {rate}");
    assert!(world.hosts[b].packet_ledger().conserved());
    assert!(metrics.borrow().received > 0);
}

/// A flipped bit anywhere in a checksummed UDP frame is caught by the
/// IP-header or UDP checksum verify and dies at `BadPacket` — never
/// delivered as corrupt data.
#[test]
fn corruption_is_caught_by_checksum_verify() {
    let (host, metrics) = sink_host(Architecture::Bsd, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    let mut inj = udp_injector(5_000.0, 6, true);
    inj.until = SimTime::from_millis(1800);
    world.add_injector(b, inj);
    let mut plan = lrp_net::FaultPlan::none();
    plan.seed = 17;
    plan.corrupt_p = 0.3;
    world.set_link_faults(b, plan);
    world.run_until(SimTime::from_secs(2));
    let fs = *world.link_fault_stats(b).expect("plan installed");
    let h = &world.hosts[b];
    let bad = h.stats.dropped(DropPoint::BadPacket);
    assert!(fs.corrupted > 0);
    assert_eq!(
        bad, fs.corrupted,
        "every corrupted frame dies at checksum verification"
    );
    assert!(h.packet_ledger().conserved());
    let expect = fs.delivered - fs.corrupted;
    assert_eq!(metrics.borrow().received, expect, "clean frames delivered");
}

/// Duplicated frames arrive as real traffic: the NIC accepts both copies
/// and UDP (no sequence numbers) delivers both.
#[test]
fn duplicates_are_delivered_twice() {
    let (host, metrics) = sink_host(Architecture::Bsd, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    let mut inj = udp_injector(2_000.0, 6, false);
    inj.until = SimTime::from_millis(800);
    world.add_injector(b, inj);
    let mut plan = lrp_net::FaultPlan::none();
    plan.seed = 23;
    plan.duplicate_p = 1.0;
    world.set_link_faults(b, plan);
    world.run_until(SimTime::from_secs(1));
    let fs = *world.link_fault_stats(b).expect("plan installed");
    assert_eq!(fs.delivered, 2 * fs.offered);
    assert_eq!(world.hosts[b].rx_frames(), fs.delivered);
    assert_eq!(metrics.borrow().received, fs.delivered);
    assert!(world.hosts[b].packet_ledger().conserved());
}

/// An injected NIC ring stall drops frames on the device; the ledger
/// attributes them to the stall bucket and still balances.
#[test]
fn nic_stall_window_is_ledger_attributed() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (host, _metrics) = sink_host(arch, 9000);
        let mut world = World::with_defaults();
        let b = world.add_host(host);
        world.add_injector(b, udp_injector(4_000.0, 6, false));
        world.hosts[b].nic.set_faults(lrp_nic::NicFaultPlan {
            stall_ns: vec![(500_000_000, 700_000_000)],
            coalesce_ns: 0,
        });
        world.run_until(SimTime::from_secs(2));
        let h = &world.hosts[b];
        let stalled = h.nic.stats().stall_drops;
        // ~200 ms of a 4 kpps stream.
        assert!(stalled > 600, "{arch:?}: stall_drops {stalled}");
        assert_eq!(h.stats.dropped(DropPoint::NicStall), stalled);
        let l = h.packet_ledger();
        assert_eq!(l.nic_stall_drops, stalled);
        assert!(l.conserved(), "{arch:?}: {l:?}");
    }
}

/// Interrupt coalescing suppresses some per-frame interrupts; held frames
/// ride the ring to the next interrupt and the ledger stays balanced.
#[test]
fn interrupt_coalescing_is_conserved() {
    let (host, metrics) = sink_host(Architecture::Bsd, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    world.add_injector(b, udp_injector(8_000.0, 6, false));
    world.hosts[b].nic.set_faults(lrp_nic::NicFaultPlan {
        stall_ns: Vec::new(),
        coalesce_ns: 200_000, // 200 µs — above the 125 µs inter-arrival gap.
    });
    world.run_until(SimTime::from_secs(2));
    let h = &world.hosts[b];
    let nic = h.nic.stats();
    assert!(nic.coalesced_intrs > 0, "coalescing must fire");
    assert!(
        nic.interrupts < nic.rx_frames,
        "fewer interrupts than frames: {} vs {}",
        nic.interrupts,
        nic.rx_frames
    );
    assert!(h.packet_ledger().conserved());
    assert!(metrics.borrow().received > 0, "traffic still flows");
}

/// UDP to a closed port answers with ICMP port unreachable (type 3 code
/// 3), and the dropped datagram gets its own ledger disposition.
#[test]
fn udp_closed_port_emits_port_unreachable() {
    let mut cfg = HostConfig::new(Architecture::Bsd);
    cfg.telemetry = true;
    let mut world = World::with_defaults();
    world.enable_capture(512);
    let a = world.add_host(Host::new(cfg, A)); // Reply target.
    let b = world.add_host(Host::new(cfg, B)); // No socket bound.
    world.add_injector(
        b,
        Injector::new(
            Pattern::FixedRate { pps: 100.0 },
            SimTime::from_millis(10),
            6,
            |seq| {
                Frame::ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9, // Nothing listens here.
                    (seq & 0xFFFF) as u16,
                    &[0u8; 32],
                    true,
                ))
            },
        ),
    );
    world.run_until(SimTime::from_secs(1));
    let h = &world.hosts[b];
    let unreach = h.stats.dropped(DropPoint::PortUnreach);
    assert!(unreach > 50, "closed-port drops: {unreach}");
    assert_eq!(h.stats.icmp_unreach_sent, unreach, "one reply per drop");
    assert!(h.packet_ledger().conserved());
    // The replies crossed the wire back to A as ICMP.
    let icmp_back = world
        .capture()
        .iter()
        .filter(|(_, host, what)| *host == a && what.starts_with("ICMP"))
        .count() as u64;
    assert_eq!(icmp_back, unreach, "every reply reached the sender");
    assert!(world.hosts[a].packet_ledger().conserved());
}

/// Under NI-LRP the same closed-port traffic dies on the NIC (demux
/// no-match): no host processing, hence no ICMP — the LRP discipline.
#[test]
fn ni_lrp_closed_port_is_silent() {
    let mut cfg = HostConfig::new(Architecture::NiLrp);
    cfg.telemetry = true;
    let mut world = World::with_defaults();
    let b = world.add_host(Host::new(cfg, B));
    world.add_injector(
        b,
        Injector::new(
            Pattern::FixedRate { pps: 100.0 },
            SimTime::from_millis(10),
            6,
            |seq| {
                Frame::ipv4(udp::build_datagram(
                    A,
                    B,
                    6000,
                    9,
                    (seq & 0xFFFF) as u16,
                    &[0u8; 32],
                    true,
                ))
            },
        ),
    );
    world.run_until(SimTime::from_secs(1));
    let h = &world.hosts[b];
    assert!(h.nic.stats().early_discards > 50, "NIC discards no-match");
    assert_eq!(h.stats.icmp_unreach_sent, 0, "no host work, no ICMP");
    assert!(h.packet_ledger().conserved());
}

/// Fragment loss mid-datagram leaves incomplete reassembly flows; when
/// they expire, their absorbed fragments move to the `reasm_expired`
/// ledger bucket and conservation still holds.
#[test]
fn expired_reassembly_flows_stay_in_the_ledger() {
    let (host, metrics) = sink_host(Architecture::Bsd, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    // 2.5 KB datagrams fragment into two frames at a 1500-byte MTU.
    world.add_injector(
        b,
        Injector::new(
            Pattern::FixedRate { pps: 400.0 },
            SimTime::from_millis(10),
            6,
            |seq| {
                let dgram = seq / 2;
                let seg = udp::build(A, B, 6000, 9000, &[7u8; 2500], false);
                let frags = ipv4::fragment(
                    A,
                    B,
                    lrp_wire::proto::UDP,
                    (dgram & 0xFFFF) as u16,
                    &seg,
                    1500,
                );
                Frame::ipv4(frags[(seq % 2) as usize].clone())
            },
        )
        .stop_at(SimTime::from_secs(2)),
    );
    // Injector stops at 2 s; flows expire at 30 s TTL.
    world.set_link_faults(b, lrp_net::FaultPlan::bernoulli(5, 0.2));
    world.run_until(SimTime::from_secs(40));
    let h = &world.hosts[b];
    let l = h.packet_ledger();
    assert!(metrics.borrow().received > 0, "some datagrams completed");
    assert!(
        l.reasm_expired > 0,
        "lossy fragments must strand flows: {l:?}"
    );
    // DropPoint::Reasm counts expired fragments plus fragments refused
    // because the 16-flow table was full; the latter show up in the
    // ledger's host_drops partition.
    let table_full = l
        .host_drops
        .iter()
        .find(|(n, _)| *n == "Reasm")
        .map_or(0, |(_, c)| *c);
    assert_eq!(
        h.stats.dropped(DropPoint::Reasm),
        l.reasm_expired + table_full,
        "host stats count the same discarded fragments"
    );
    assert!(l.conserved(), "{l:?}");
}

/// A timed link pause defers in-window arrivals to the window end; the
/// burst at resume is absorbed and accounted.
#[test]
fn link_pause_delivers_burst_at_window_end() {
    let (host, metrics) = sink_host(Architecture::NiLrp, 9000);
    let mut world = World::with_defaults();
    let b = world.add_host(host);
    world.add_injector(b, udp_injector(2_000.0, 6, false));
    let mut plan = lrp_net::FaultPlan::none();
    plan.pauses = vec![(SimTime::from_millis(300), SimTime::from_millis(600))];
    world.set_link_faults(b, plan);
    world.run_until(SimTime::from_secs(2));
    let fs = *world.link_fault_stats(b).expect("plan installed");
    // ~300 ms of a 2 kpps stream was deferred.
    assert!(fs.paused > 400, "paused {}", fs.paused);
    assert_eq!(fs.offered, fs.delivered, "pause defers, never drops");
    assert!(world.hosts[b].packet_ledger().conserved());
    assert!(metrics.borrow().received > 0);
}
