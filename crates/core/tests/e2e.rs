//! End-to-end tests: full hosts exchanging real packets through the world,
//! under each of the four architectures.

use lrp_core::{
    AppCtx, AppLogic, Architecture, Host, HostConfig, SockProto, SyscallOp, SyscallRet, World,
};
use lrp_sim::{SimDuration, SimTime};
use lrp_stack::SockId;
use lrp_wire::{Endpoint, Ipv4Addr};
use std::cell::RefCell;
use std::rc::Rc;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Shared observation channel between a test and its apps.
#[derive(Default, Debug)]
struct Probe {
    received: Vec<Vec<u8>>,
    events: Vec<String>,
}

type ProbeRef = Rc<RefCell<Probe>>;

/// Sends `count` datagrams of `payload` to `dst`, then exits.
struct UdpSender {
    dst: Endpoint,
    payload: Vec<u8>,
    count: usize,
    gap: SimDuration,
    sock: Option<SockId>,
    sent: usize,
}

impl AppLogic for UdpSender {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: 5555,
                }
            }
            SyscallRet::Sent(_) if !self.gap.is_zero() => {
                // Pace the stream: sleep between datagrams.
                SyscallOp::Sleep(self.gap)
            }
            _ => {
                if self.sent >= self.count {
                    return SyscallOp::Exit;
                }
                self.sent += 1;
                SyscallOp::SendTo {
                    sock: self.sock.unwrap(),
                    dst: self.dst,
                    data: self.payload.clone(),
                }
            }
        }
    }
}

/// Receives datagrams forever, recording them in the probe.
struct UdpSink {
    port: u16,
    probe: ProbeRef,
    sock: Option<SockId>,
}

impl AppLogic for UdpSink {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            SyscallRet::Ok => SyscallOp::Recv {
                sock: self.sock.unwrap(),
                max_len: 65_536,
            },
            SyscallRet::DataFrom(_, data) => {
                self.probe.borrow_mut().received.push(data.to_vec());
                SyscallOp::Recv {
                    sock: self.sock.unwrap(),
                    max_len: 65_536,
                }
            }
            other => panic!("sink got {other:?}"),
        }
    }
}

fn world_pair(arch: Architecture) -> (World, ProbeRef) {
    let mut w = World::with_defaults();
    let probe: ProbeRef = Rc::new(RefCell::new(Probe::default()));
    let mut ha = Host::new(HostConfig::new(arch), A);
    ha.spawn_app(
        "sender",
        0,
        0,
        Box::new(UdpSender {
            dst: Endpoint::new(B, 7000),
            payload: b"hello through the stack".to_vec(),
            count: 20,
            gap: SimDuration::ZERO,
            sock: None,
            sent: 0,
        }),
    );
    let mut hb = Host::new(HostConfig::new(arch), B);
    hb.spawn_app(
        "sink",
        0,
        0,
        Box::new(UdpSink {
            port: 7000,
            probe: probe.clone(),
            sock: None,
        }),
    );
    w.add_host(ha);
    w.add_host(hb);
    (w, probe)
}

#[test]
fn udp_delivery_all_architectures() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let (mut w, probe) = world_pair(arch);
        w.run_until(SimTime::from_millis(500));
        let got = probe.borrow().received.len();
        assert_eq!(got, 20, "{arch}: delivered {got} of 20");
        assert!(probe
            .borrow()
            .received
            .iter()
            .all(|d| d == b"hello through the stack"));
        // Host B's stats agree.
        assert_eq!(w.hosts[1].stats.udp_delivered, 20, "{arch}");
        assert_eq!(w.hosts[1].stats.total_drops(), 0, "{arch}: no drops");
    }
}

#[test]
fn udp_large_datagram_fragments_and_reassembles() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let mut w = World::with_defaults();
        let probe: ProbeRef = Rc::new(RefCell::new(Probe::default()));
        let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 251) as u8).collect();
        let mut ha = Host::new(HostConfig::new(arch), A);
        ha.spawn_app(
            "sender",
            0,
            0,
            Box::new(UdpSender {
                dst: Endpoint::new(B, 7001),
                payload: payload.clone(),
                count: 3,
                // 30 KB datagrams into a 41.6 KB socket buffer: pace them
                // so consecutive datagrams do not legitimately overrun it.
                gap: SimDuration::from_millis(10),
                sock: None,
                sent: 0,
            }),
        );
        let mut hb = Host::new(HostConfig::new(arch), B);
        hb.spawn_app(
            "sink",
            0,
            0,
            Box::new(UdpSink {
                port: 7001,
                probe: probe.clone(),
                sock: None,
            }),
        );
        w.add_host(ha);
        w.add_host(hb);
        w.run_until(SimTime::from_millis(500));
        let p = probe.borrow();
        assert_eq!(p.received.len(), 3, "{arch}: fragmented datagrams");
        assert!(p.received.iter().all(|d| *d == payload), "{arch}");
    }
}

// ---- TCP end-to-end ----

/// Connects to a server, sends a request, reads the full response, closes.
struct TcpClient {
    dst: Endpoint,
    request: Vec<u8>,
    expect: usize,
    probe: ProbeRef,
    sock: Option<SockId>,
    got: Vec<u8>,
    state: u8,
}

impl AppLogic for TcpClient {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Tcp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                self.state = 1;
                SyscallOp::Connect {
                    sock: s,
                    dst: self.dst,
                }
            }
            (1, SyscallRet::Ok) => {
                self.state = 2;
                self.probe.borrow_mut().events.push("connected".into());
                SyscallOp::Send {
                    sock: self.sock.unwrap(),
                    data: self.request.clone(),
                }
            }
            (2, SyscallRet::Sent(_)) => {
                self.state = 3;
                SyscallOp::Recv {
                    sock: self.sock.unwrap(),
                    max_len: 65_536,
                }
            }
            (3, SyscallRet::Data(d)) => {
                if d.is_empty() {
                    // EOF before full response.
                    self.probe.borrow_mut().events.push("eof".into());
                    self.probe.borrow_mut().received.push(self.got.clone());
                    self.state = 4;
                    return SyscallOp::Close {
                        sock: self.sock.unwrap(),
                    };
                }
                self.got.extend_from_slice(&d);
                if self.got.len() >= self.expect {
                    self.probe.borrow_mut().received.push(self.got.clone());
                    self.state = 4;
                    return SyscallOp::Close {
                        sock: self.sock.unwrap(),
                    };
                }
                SyscallOp::Recv {
                    sock: self.sock.unwrap(),
                    max_len: 65_536,
                }
            }
            (4, _) => SyscallOp::Exit,
            (s, r) => panic!("client state {s} got {r:?}"),
        }
    }
}

/// Accepts one connection at a time; echoes a fixed-size response to any
/// request, then closes the connection.
struct TcpServer {
    port: u16,
    response: Vec<u8>,
    lsock: Option<SockId>,
    conn: Option<SockId>,
    state: u8,
}

impl AppLogic for TcpServer {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Tcp)
    }
    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.lsock = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            (1, SyscallRet::Ok) => {
                self.state = 2;
                SyscallOp::Listen {
                    sock: self.lsock.unwrap(),
                    backlog: 5,
                }
            }
            (2, SyscallRet::Ok) => {
                self.state = 3;
                SyscallOp::Accept {
                    sock: self.lsock.unwrap(),
                }
            }
            (3, SyscallRet::Accepted(c)) => {
                self.conn = Some(c);
                self.state = 4;
                SyscallOp::Recv {
                    sock: c,
                    max_len: 65_536,
                }
            }
            (4, SyscallRet::Data(d)) => {
                if d.is_empty() {
                    self.state = 3;
                    let c = self.conn.take().unwrap();
                    // Peer closed without a request.
                    return SyscallOp::Close { sock: c };
                }
                self.state = 5;
                SyscallOp::Send {
                    sock: self.conn.unwrap(),
                    data: self.response.clone(),
                }
            }
            (5, SyscallRet::Sent(_)) => {
                self.state = 6;
                SyscallOp::Close {
                    sock: self.conn.take().unwrap(),
                }
            }
            (6, SyscallRet::Ok) => {
                self.state = 3;
                SyscallOp::Accept {
                    sock: self.lsock.unwrap(),
                }
            }
            (s, r) => panic!("server state {s} got {r:?}"),
        }
    }
}

#[test]
fn tcp_request_response_all_architectures() {
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let mut w = World::with_defaults();
        let probe: ProbeRef = Rc::new(RefCell::new(Probe::default()));
        let response: Vec<u8> = (0..50_000u32).map(|i| (i % 201) as u8).collect();
        let mut ha = Host::new(HostConfig::new(arch), A);
        ha.spawn_app(
            "client",
            0,
            0,
            Box::new(TcpClient {
                dst: Endpoint::new(B, 80),
                request: b"GET /index.html".to_vec(),
                expect: response.len(),
                probe: probe.clone(),
                sock: None,
                got: Vec::new(),
                state: 0,
            }),
        );
        let mut hb = Host::new(HostConfig::new(arch), B);
        hb.spawn_app(
            "server",
            0,
            0,
            Box::new(TcpServer {
                port: 80,
                response: response.clone(),
                lsock: None,
                conn: None,
                state: 0,
            }),
        );
        w.add_host(ha);
        w.add_host(hb);
        w.run_until(SimTime::from_secs(5));
        let p = probe.borrow();
        assert!(
            p.events.contains(&"connected".to_string()),
            "{arch}: handshake completed"
        );
        assert_eq!(p.received.len(), 1, "{arch}: one full response");
        assert_eq!(p.received[0], response, "{arch}: bytes intact");
    }
}

#[test]
fn packet_conservation_under_blast() {
    // Fire a fixed-rate UDP blast at a host; every received frame must be
    // accounted: delivered, queued, or dropped at a named point.
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let mut w = World::with_defaults();
        let probe: ProbeRef = Rc::new(RefCell::new(Probe::default()));
        let mut hb = Host::new(HostConfig::new(arch), B);
        hb.spawn_app(
            "sink",
            0,
            0,
            Box::new(UdpSink {
                port: 9000,
                probe: probe.clone(),
                sock: None,
            }),
        );
        let hb_idx = w.add_host(hb);
        let inj = lrp_net::Injector::new(
            lrp_net::Pattern::FixedRate { pps: 12_000.0 },
            SimTime::from_millis(10),
            42,
            move |_| {
                lrp_wire::Frame::ipv4(lrp_wire::udp::build_datagram(
                    A, B, 1234, 9000, 1, &[0u8; 14], true,
                ))
            },
        );
        w.add_injector(hb_idx, inj);
        w.run_until(SimTime::from_secs(2));
        let host = &w.hosts[hb_idx];
        let rx = host.nic.stats().rx_frames;
        let delivered = host.stats.udp_delivered;
        let host_drops = host.stats.total_drops();
        let nic_early = host.nic.stats().early_discards + host.nic.stats().ring_drops;
        // Remaining frames may still sit in queues at cutoff.
        let in_queues: u64 = (0..host.nic.channel_count()).map(|_| 0u64).sum::<u64>()
            + host.nic.stats().rx_frames
            - host.nic.stats().rx_frames; // placeholder: counted below
        let _ = in_queues;
        let accounted = delivered + host_drops + nic_early;
        assert!(
            accounted <= rx,
            "{arch}: over-accounted {accounted} > rx {rx}"
        );
        // Allow for frames still queued (channel/ipq/sockbuf) at cutoff.
        let slack = rx - accounted;
        assert!(
            slack <= 200,
            "{arch}: {slack} unaccounted frames (rx={rx} delivered={delivered} drops={host_drops} early={nic_early})"
        );
        assert!(delivered > 0, "{arch}: made progress");
    }
}

// ---- ICMP proxy daemon (§3.5) ----

#[test]
fn icmp_echo_through_proxy_daemon() {
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let mut w = World::with_defaults();
        let ping = lrp_apps::shared::<lrp_apps::PingMetrics>();
        let daemon = lrp_apps::shared::<lrp_apps::IcmpMetrics>();
        let mut ha = Host::new(HostConfig::new(arch), A);
        ha.spawn_app(
            "ping",
            0,
            0,
            Box::new(lrp_apps::PingClient::new(
                Endpoint::new(B, 0),
                10,
                ping.clone(),
            )),
        );
        let mut hb = Host::new(HostConfig::new(arch), B);
        hb.spawn_app(
            "icmp-daemon",
            0,
            0,
            Box::new(lrp_apps::IcmpEchoDaemon::new(
                SimDuration::from_micros(20),
                daemon.clone(),
            )),
        );
        w.add_host(ha);
        w.add_host(hb);
        w.run_until(SimTime::from_millis(500));
        assert_eq!(daemon.borrow().replies, 10, "{arch}: daemon answered");
        assert_eq!(ping.borrow().replies, 10, "{arch}: client saw replies");
        // The daemon process was charged for the work (§3.5): it is the
        // only process on B, so all protocol+compute charges land on it.
        let d = w.hosts[1].sched.procs();
        let daemon_proc = d.iter().find(|p| p.name == "icmp-daemon").unwrap();
        assert!(
            daemon_proc.acct.total() > lrp_sim::SimDuration::ZERO,
            "{arch}: daemon charged"
        );
    }
}

// ---- IP forwarding through a gateway (§3.5) ----

#[test]
fn ip_forwarding_through_gateway() {
    const D: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 9);
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        let mut w = World::with_defaults();
        let probe: ProbeRef = Rc::new(RefCell::new(Probe::default()));
        // Sender on A sends to D, which is only reachable via gateway G.
        let mut ha = Host::new(HostConfig::new(arch), A);
        ha.spawn_app(
            "sender",
            0,
            0,
            Box::new(UdpSender {
                dst: Endpoint::new(D, 7000),
                payload: b"forwarded".to_vec(),
                count: 15,
                gap: SimDuration::from_millis(1),
                sock: None,
                sent: 0,
            }),
        );
        let mut gw = Host::new(HostConfig::new(arch), B);
        gw.enable_forwarding(0);
        let mut hd = Host::new(HostConfig::new(arch), D);
        hd.spawn_app(
            "sink",
            0,
            0,
            Box::new(UdpSink {
                port: 7000,
                probe: probe.clone(),
                sock: None,
            }),
        );
        w.add_host(ha);
        let g = w.add_host(gw);
        w.add_host(hd);
        w.add_route_via(D, g);
        w.run_until(SimTime::from_millis(500));
        assert_eq!(
            probe.borrow().received.len(),
            15,
            "{arch}: all datagrams forwarded"
        );
        // The gateway transmitted the forwarded frames.
        assert!(w.hosts[g].nic.stats().tx_frames >= 15, "{arch}");
        // Under LRP the forwarding daemon was charged for the work.
        if arch.is_lrp() {
            let fwd = w.hosts[g]
                .sched
                .procs()
                .iter()
                .find(|p| p.name == "ipfwd")
                .expect("daemon spawned");
            assert!(
                fwd.acct.total() > lrp_sim::SimDuration::ZERO,
                "{arch}: forwarding charged to the daemon"
            );
        }
    }
}
