//! Benchmark support crate: see `benches/` for the Criterion harnesses
//! that regenerate each of the paper's tables and figures, plus
//! microbenchmarks of the hot kernel paths.

#![warn(missing_docs)]

use lrp_sim::{SimDuration, SimTime};
use lrp_stack::tcp::{CcAlgo, TcpConfig, TcpConn};
use lrp_wire::{Endpoint, Ipv4Addr};

const BENCH_LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const BENCH_PEER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// An established TCP pair for segment-processing benchmarks, with both
/// ends running the given congestion controller.
pub struct TcpBenchPair {
    /// Sender-side connection.
    pub a: TcpConn,
    /// Receiver-side connection.
    pub b: TcpConn,
    now: SimTime,
}

impl TcpBenchPair {
    /// Handshakes a fresh pair running `cc`.
    pub fn new(cc: CcAlgo) -> Self {
        let cfg = TcpConfig {
            delack: None,
            cc,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut a = TcpConn::new(
            cfg,
            Endpoint::new(BENCH_PEER, 1),
            Endpoint::new(BENCH_LOCAL, 2),
            100,
        );
        let acts = a.connect(now);
        let syn = &acts.segments[0];
        let (mut b, acts_b) = TcpConn::accept_syn(
            cfg,
            Endpoint::new(BENCH_LOCAL, 2),
            Endpoint::new(BENCH_PEER, 1),
            900,
            &syn.hdr,
            now,
        );
        let synack = &acts_b.segments[0];
        let acts_a = a.on_segment(now, &synack.hdr, &[]);
        let ack = &acts_a.segments[0];
        let _ = b.on_segment(now, &ack.hdr, &[]);
        TcpBenchPair { a, b, now }
    }

    /// One write → deliver → ack round trip; returns the number of
    /// segment-arrival events processed (data segments into the receiver
    /// plus ACKs into the sender). Simulated time advances 100 µs per
    /// call so rate-model controllers (BBR-lite) see real RTT samples.
    pub fn roundtrip(&mut self, payload: &[u8]) -> u64 {
        self.now += SimDuration::from_micros(100);
        let mut events = 0;
        let (_, acts) = self.a.write(self.now, payload);
        for seg in acts.segments {
            let racts = self.b.on_segment(self.now, &seg.hdr, &seg.payload);
            events += 1;
            let _ = self.b.read(usize::MAX);
            for rs in racts.segments {
                let _ = self.a.on_segment(self.now, &rs.hdr, &rs.payload);
                events += 1;
            }
        }
        events
    }
}
