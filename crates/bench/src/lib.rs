//! Benchmark support crate: see `benches/` for the Criterion harnesses
//! that regenerate each of the paper's tables and figures, plus
//! microbenchmarks of the hot kernel paths.

#![warn(missing_docs)]
