//! Measures TCP segment-arrival processing throughput per congestion
//! controller and writes `BENCH_tcp.json` at the repository root — the
//! first point of the ROADMAP's wall-clock trajectory. The workload is
//! the same established-pair round trip the `tcp_cc` criterion-shim
//! bench times interactively.

use lrp_bench::TcpBenchPair;
use lrp_stack::tcp::CcAlgo;
use std::time::Instant;

/// Round trips per controller. ~3 s total on a debug build, well under a
/// second in release.
const ITERS: u64 = 200_000;

fn main() {
    let payload = vec![7u8; 1000];
    let mut entries = Vec::new();
    for cc in CcAlgo::all() {
        // Warm-up pass so allocator and branch state settle.
        let mut warm = TcpBenchPair::new(cc);
        for _ in 0..ITERS / 10 {
            warm.roundtrip(&payload);
        }
        let mut pair = TcpBenchPair::new(cc);
        let start = Instant::now();
        let mut events = 0u64;
        for _ in 0..ITERS {
            events += pair.roundtrip(&payload);
        }
        let elapsed = start.elapsed();
        let eps = events as f64 / elapsed.as_secs_f64();
        println!(
            "tcp_cc/segment_arrival/{}: {} events in {:?} ({:.0} events/s)",
            cc.name(),
            events,
            elapsed,
            eps
        );
        entries.push(format!(
            "    {{ \"cc\": \"{}\", \"events\": {}, \"elapsed_ns\": {}, \"events_per_sec\": {:.1} }}",
            cc.name(),
            events,
            elapsed.as_nanos(),
            eps
        ));
    }
    let json = format!
        ("{{\n  \"bench\": \"tcp_segment_arrival\",\n  \"iters_per_cc\": {ITERS},\n  \"payload_bytes\": 1000,\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // The repo root, two levels up from this crate's manifest.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_tcp.json");
    std::fs::write(&path, json).expect("write BENCH_tcp.json");
    eprintln!("wrote {}", path.display());
}
