//! Whole-simulator wall-clock benchmark: drives the fig3 UDP blast, the
//! livelock timeline and a faulted TCP bulk transfer end to end and
//! reports events/sec, writing `BENCH_sim.json` at the repository root —
//! the second point of the ROADMAP's wall-clock trajectory (after
//! `BENCH_tcp.json`).
//!
//! Every workload runs twice: once in **baseline** mode (legacy binary
//! heap event queue, frame-arena recycling off, single-frame RX drain —
//! the pre-overhaul configuration) and once in **current** mode (timer
//! wheel, pooled frames, batched RX). The emitted document carries both
//! series plus the fig3 speedup ratio, so the trajectory stays
//! before/after-comparable run over run.

use lrp_core::{Architecture, World};
use lrp_experiments::{fault_sweep, fig3, livelock_timeline};
use lrp_sim::SimTime;
use lrp_stack::tcp::CcAlgo;
use std::time::Instant;

/// Timed attempts per (workload, mode); the fastest is reported. The
/// minimum over several attempts is the standard estimator of true cost
/// on a machine with background load — every slowdown is additive noise.
const ATTEMPTS: u32 = 7;

/// Aggregate fig3 events/sec measured on the pre-overhaul tree (commit
/// 6e15d92: lazy-cancel heap, per-frame `Vec` allocation, unbatched RX,
/// SipHash host maps), best of 3 on the reference machine. The in-binary
/// baseline mode can only toggle the switchable parts (queue, pooling,
/// batching); shared-code wins (arena-typed payloads, `Cow` delivery,
/// fast host maps) speed both modes up, so the recorded number is the
/// honest before-point of the trajectory.
const RECORDED_PRE_PR_FIG3_EPS: f64 = 2_686_932.0;

/// Which implementation set a run uses.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Pre-overhaul configuration: heap queue, no pooling, no batching.
    Baseline,
    /// The shipped defaults: timer wheel, arena frames, batched RX.
    Current,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Current => "current",
        }
    }

    /// Applies the mode to a freshly built world (before `run_until`).
    fn apply(self, world: &mut World) {
        match self {
            Mode::Baseline => {
                world.use_queue_impl(lrp_sim::QueueImpl::Heap);
                for h in &mut world.hosts {
                    h.cfg.rx_batch = 1;
                }
                lrp_wire::set_frame_pooling(false);
            }
            Mode::Current => {
                world.use_queue_impl(lrp_sim::QueueImpl::Wheel);
                lrp_wire::set_frame_pooling(true);
            }
        }
    }
}

struct Row {
    experiment: &'static str,
    arch: &'static str,
    mode: Mode,
    /// Full telemetry (traces, spans, sketches, watchdog, timeline) on?
    telemetry: bool,
    events: u64,
    elapsed_ns: u128,
    events_per_sec: f64,
}

/// Runs one world-building closure to `dur` under `mode`, best of
/// [`ATTEMPTS`]; returns (events, elapsed_ns, events/sec). When
/// `telemetry` is false every host's telemetry is disabled after build —
/// the experiment builders turn it on by default, so this is the
/// with/without pair the <10% overhead budget is measured on.
fn time_world(
    mode: Mode,
    telemetry: bool,
    dur: SimTime,
    build: impl Fn() -> World,
) -> (u64, u128, f64) {
    let mut best: Option<(u64, u128)> = None;
    for _ in 0..ATTEMPTS {
        let mut world = build();
        mode.apply(&mut world);
        if !telemetry {
            for h in &mut world.hosts {
                h.set_telemetry(false);
            }
        }
        let start = Instant::now();
        world.run_until(dur);
        let elapsed = start.elapsed().as_nanos();
        let events = world.events_processed();
        if best.is_none_or(|(_, b)| elapsed < b) {
            best = Some((events, elapsed));
        }
    }
    let (events, elapsed) = best.expect("at least one attempt");
    let eps = events as f64 / (elapsed as f64 / 1e9);
    (events, elapsed, eps)
}

fn arch_tag(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Bsd => "bsd",
        Architecture::SoftLrp => "soft-lrp",
        Architecture::NiLrp => "ni-lrp",
        Architecture::EarlyDemux => "early-demux",
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let modes = [Mode::Baseline, Mode::Current];

    // fig3: the Figure-3 UDP blast at 12 000 pkts/s (Poisson, seed 7).
    for arch in [
        Architecture::Bsd,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        for mode in modes {
            // In current mode also measure with telemetry fully disabled:
            // the pair enforces the <10% full-telemetry overhead budget.
            let tele_settings: &[bool] = if mode == Mode::Current {
                &[true, false]
            } else {
                &[true]
            };
            for &telemetry in tele_settings {
                let (events, elapsed_ns, eps) =
                    time_world(mode, telemetry, SimTime::from_secs(1), || {
                        fig3::build_seeded(arch, 12_000.0, true, 7).0
                    });
                println!(
                    "fig3/{}/{}/telemetry-{}: {events} events in {:.1} ms ({eps:.0} events/s)",
                    arch_tag(arch),
                    mode.name(),
                    if telemetry { "on" } else { "off" },
                    elapsed_ns as f64 / 1e6
                );
                rows.push(Row {
                    experiment: "fig3",
                    arch: arch_tag(arch),
                    mode,
                    telemetry,
                    events,
                    elapsed_ns,
                    events_per_sec: eps,
                });
            }
        }
    }

    // livelock: 20 000 pkts/s overload with the metered compute victim
    // (telemetry + timeline on — the heaviest per-event path).
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        for mode in modes {
            let (events, elapsed_ns, eps) = time_world(mode, true, SimTime::from_secs(1), || {
                livelock_timeline::build(arch, livelock_timeline::SEED).0
            });
            println!(
                "livelock/{}/{}: {events} events in {:.1} ms ({eps:.0} events/s)",
                arch_tag(arch),
                mode.name(),
                elapsed_ns as f64 / 1e6
            );
            rows.push(Row {
                experiment: "livelock",
                arch: arch_tag(arch),
                mode,
                telemetry: true,
                events,
                elapsed_ns,
                events_per_sec: eps,
            });
        }
    }

    // cc: TCP bulk transfer (NewReno) through a 2 % bursty-loss link —
    // retransmit-timer churn is the event-queue stress the heap bloat bug
    // was about.
    for arch in [Architecture::Bsd, Architecture::NiLrp] {
        for mode in modes {
            let (events, elapsed_ns, eps) = time_world(mode, true, SimTime::from_secs(20), || {
                let plan = fault_sweep::burst_plan(0xB57, 0.02);
                let (world, _m) = fault_sweep::build_cc(arch, CcAlgo::NewReno, plan, 1 << 20);
                world
            });
            println!(
                "cc/{}/{}: {events} events in {:.1} ms ({eps:.0} events/s)",
                arch_tag(arch),
                mode.name(),
                elapsed_ns as f64 / 1e6
            );
            rows.push(Row {
                experiment: "cc",
                arch: arch_tag(arch),
                mode,
                telemetry: true,
                events,
                elapsed_ns,
                events_per_sec: eps,
            });
        }
    }

    // fig3 speedup: total events/sec across architectures, current over
    // baseline (the acceptance ratio for the overhaul).
    let agg = |exp: &str, mode: Mode, telemetry: bool| {
        let (ev, ns) = rows
            .iter()
            .filter(|r| r.experiment == exp && r.mode == mode && r.telemetry == telemetry)
            .fold((0u64, 0u128), |(e, n), r| (e + r.events, n + r.elapsed_ns));
        ev as f64 / (ns as f64 / 1e9)
    };
    let fig3_current = agg("fig3", Mode::Current, true);
    let fig3_speedup = fig3_current / agg("fig3", Mode::Baseline, true);
    let fig3_speedup_vs_recorded = fig3_current / RECORDED_PRE_PR_FIG3_EPS;
    println!("fig3 speedup (current/baseline): {fig3_speedup:.2}x");
    println!("fig3 speedup (current/recorded pre-overhaul): {fig3_speedup_vs_recorded:.2}x");

    // The telemetry overhead budget: full telemetry (traces, spans,
    // sketches, watchdog, timeline, sockstats) must cost <10% events/sec
    // on the fig3 blast. Enforced here so the bench run itself fails CI
    // when instrumentation creep breaks the budget.
    let fig3_tele_off = agg("fig3", Mode::Current, false);
    let fig3_telemetry_overhead = 1.0 - fig3_current / fig3_tele_off;
    println!(
        "fig3 telemetry: on {fig3_current:.0} ev/s, off {fig3_tele_off:.0} ev/s \
         (overhead {:.1}%)",
        fig3_telemetry_overhead * 100.0
    );
    assert!(
        fig3_telemetry_overhead < 0.10,
        "full telemetry costs {:.1}% events/sec on fig3 — budget is <10%",
        fig3_telemetry_overhead * 100.0
    );

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"experiment\": \"{}\", \"arch\": \"{}\", \"mode\": \"{}\", \
                 \"telemetry\": {}, \
                 \"events\": {}, \"elapsed_ns\": {}, \"events_per_sec\": {:.1} }}",
                r.experiment,
                r.arch,
                r.mode.name(),
                r.telemetry,
                r.events,
                r.elapsed_ns,
                r.events_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sim_event_loop\",\n  \"attempts\": {ATTEMPTS},\n  \
         \"fig3_speedup\": {fig3_speedup:.3},\n  \
         \"recorded_pre_pr_fig3_events_per_sec\": {RECORDED_PRE_PR_FIG3_EPS:.1},\n  \
         \"fig3_speedup_vs_recorded\": {fig3_speedup_vs_recorded:.3},\n  \
         \"fig3_telemetry_on_events_per_sec\": {fig3_current:.1},\n  \
         \"fig3_telemetry_off_events_per_sec\": {fig3_tele_off:.1},\n  \
         \"fig3_telemetry_overhead\": {fig3_telemetry_overhead:.4},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // The repo root, two levels up from this crate's manifest.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
}
