//! Microbenchmarks of the hot kernel paths: the demux function (the code
//! the paper wants cheap enough for NIC firmware), checksums, the event
//! queue, and TCP segment processing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lrp_demux::{ChannelId, DemuxTable};
use lrp_sim::{EventQueue, SimTime, SplitMix64};
use lrp_wire::{checksum, tcp, udp, Endpoint, FlowKey, Frame, Ipv4Addr};
use std::hint::black_box;

const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const PEER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn bench_demux(c: &mut Criterion) {
    let mut g = c.benchmark_group("demux");
    // A realistically loaded table: 256 endpoints.
    let mut table = DemuxTable::new(512, LOCAL);
    for i in 0..256u32 {
        table
            .register(
                FlowKey::new(
                    lrp_wire::proto::TCP,
                    Endpoint::new(LOCAL, 80),
                    Endpoint::new(PEER, 1000 + i as u16),
                ),
                ChannelId(i),
            )
            .unwrap();
    }
    table
        .register(
            FlowKey::listening(lrp_wire::proto::UDP, Endpoint::new(LOCAL, 9000)),
            ChannelId(300),
        )
        .unwrap();
    let udp_frame = Frame::ipv4(udp::build_datagram(
        PEER, LOCAL, 5, 9000, 1, &[0u8; 14], false,
    ));
    let tcp_frame = {
        let h = tcp::TcpHeader {
            src_port: 1100,
            dst_port: 80,
            seq: 1,
            ack: 1,
            flags: tcp::flags::ACK,
            window: 8192,
            mss: None,
        };
        Frame::ipv4(tcp::build_datagram(PEER, LOCAL, &h, 1, b""))
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("classify_udp_wildcard", |b| {
        b.iter(|| black_box(table.classify(&udp_frame)))
    });
    g.bench_function("classify_tcp_exact", |b| {
        b.iter(|| black_box(table.classify(&tcp_frame)))
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [64usize, 1460, 9140] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("internet_checksum_{size}B"), |b| {
            b.iter(|| black_box(checksum::checksum(&data)))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_1k", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_nanos(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_tcp_machine(c: &mut Criterion) {
    use lrp_stack::tcp::{TcpConfig, TcpConn};
    let mut g = c.benchmark_group("tcp");
    g.bench_function("segment_roundtrip", |b| {
        // Established pair exchanging one data segment + ack per iter.
        let cfg = TcpConfig {
            delack: None,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut a = TcpConn::new(cfg, Endpoint::new(PEER, 1), Endpoint::new(LOCAL, 2), 100);
        let acts = a.connect(now);
        let syn = &acts.segments[0];
        let (mut bconn, acts_b) = TcpConn::accept_syn(
            cfg,
            Endpoint::new(LOCAL, 2),
            Endpoint::new(PEER, 1),
            900,
            &syn.hdr,
            now,
        );
        let synack = &acts_b.segments[0];
        let acts_a = a.on_segment(now, &synack.hdr, &[]);
        let ack = &acts_a.segments[0];
        let _ = bconn.on_segment(now, &ack.hdr, &[]);
        let payload = vec![7u8; 1000];
        b.iter(|| {
            let (_, acts) = a.write(now, &payload);
            for seg in acts.segments {
                let racts = bconn.on_segment(now, &seg.hdr, &seg.payload);
                let _ = bconn.read(usize::MAX);
                for rs in racts.segments {
                    let _ = a.on_segment(now, &rs.hdr, &rs.payload);
                }
            }
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_demux,
    bench_checksum,
    bench_event_queue,
    bench_tcp_machine
);
criterion_main!(micro);
