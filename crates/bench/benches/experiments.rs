//! One Criterion benchmark per table/figure of the paper.
//!
//! Each benchmark regenerates a reduced instance of the experiment (short
//! simulated duration, single representative parameter) so `cargo bench`
//! exercises the full pipeline in reasonable time; the experiment binaries
//! in `lrp-experiments` produce the complete sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use lrp_core::Architecture;
use lrp_experiments::{fig3, fig4, fig5, mlfrr, table1, table2};
use lrp_sim::SimTime;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("rtt_bsd_100rounds", |b| {
        b.iter(|| {
            black_box(table1::measure_rtt(
                lrp_core::HostConfig::new(Architecture::Bsd),
                100,
            ))
        })
    });
    g.bench_function("udp_window_nilrp", |b| {
        b.iter(|| {
            black_box(table1::measure_udp_mbps(
                lrp_core::HostConfig::new(Architecture::NiLrp),
                100,
            ))
        })
    });
    g.bench_function("tcp_bulk_softlrp_2mb", |b| {
        b.iter(|| {
            black_box(table1::measure_tcp_mbps(
                lrp_core::HostConfig::new(Architecture::SoftLrp),
                2 << 20,
            ))
        })
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for arch in [
        Architecture::Bsd,
        Architecture::EarlyDemux,
        Architecture::SoftLrp,
        Architecture::NiLrp,
    ] {
        g.bench_function(format!("overload_12k_{}", arch.name()), |b| {
            b.iter(|| black_box(fig3::measure(arch, 12_000.0, SimTime::from_secs(1))))
        });
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("latency_under_load_softlrp", |b| {
        b.iter(|| black_box(fig4::measure(Architecture::SoftLrp, 6_000.0, 200)))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("rpc_fast_nilrp", |b| {
        b.iter(|| black_box(table2::measure(Architecture::NiLrp, table2::Variant::Fast)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for arch in [Architecture::Bsd, Architecture::SoftLrp] {
        g.bench_function(format!("http_synflood_10k_{}", arch.name()), |b| {
            b.iter(|| black_box(fig5::measure(arch, 10_000.0, SimTime::from_secs(2))))
        });
    }
    g.finish();
}

fn bench_mlfrr(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlfrr");
    g.sample_size(10);
    g.bench_function("loss_free_probe_softlrp", |b| {
        b.iter(|| {
            black_box(mlfrr::loss_free(
                Architecture::SoftLrp,
                8_000.0,
                SimTime::from_secs(1),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig3,
    bench_fig4,
    bench_table2,
    bench_fig5,
    bench_mlfrr
);
criterion_main!(benches);
