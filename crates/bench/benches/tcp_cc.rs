//! Per-controller TCP segment-arrival microbenchmark: how fast the pure
//! state machine processes a write → deliver → ack round trip under each
//! pluggable congestion controller. The `bench_tcp` binary runs the same
//! workload and emits `BENCH_tcp.json` for the CI trajectory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lrp_bench::TcpBenchPair;
use lrp_stack::tcp::CcAlgo;

fn bench_tcp_cc(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_cc");
    g.throughput(Throughput::Elements(1));
    for cc in CcAlgo::all() {
        g.bench_function(format!("segment_arrival/{}", cc.name()), |b| {
            let mut pair = TcpBenchPair::new(cc);
            let payload = vec![7u8; 1000];
            b.iter(|| pair.roundtrip(&payload))
        });
    }
    g.finish();
}

criterion_group!(tcp_cc, bench_tcp_cc);
criterion_main!(tcp_cc);
