//! The network interface model: receive ring, NI channels, interface
//! queue, and the three demultiplexing placements of the paper.
//!
//! A [`Nic`] sits between the simulated link and the host:
//!
//! - In **BSD** mode the NIC is dumb: every received frame lands in the
//!   receive DMA ring and raises a host interrupt; the driver moves it to
//!   the shared IP queue.
//! - In **soft-demux** mode (SOFT-LRP and Early-Demux) the NIC is equally
//!   dumb, but the *host interrupt handler* runs the demux function and
//!   places frames directly on per-socket [`NiChannel`]s, discarding early
//!   when a channel is full. The host pays the demux cost per packet.
//! - In **NI-demux** mode (NI-LRP) the NIC itself runs the demux function
//!   "in firmware": classification, channel placement and early discard
//!   consume **no host CPU at all**, and a host interrupt is raised only
//!   on an empty→non-empty channel transition when the receiver asked for
//!   one.
//!
//! This crate is pure mechanism: costs and timing are attached by the host
//! model in `lrp-core`.

#![warn(missing_docs)]

use lrp_demux::{ChannelId, DemuxTable, Verdict};
use lrp_wire::{Frame, Ipv4Addr};

/// Where the demultiplexing function executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemuxMode {
    /// No early demux: frames go to the rx ring; the driver and softirq
    /// implement the BSD path.
    None,
    /// Demux in the host interrupt handler (SOFT-LRP / Early-Demux).
    Soft,
    /// Demux in NIC firmware (NI-LRP).
    Ni,
}

/// Why a frame was dropped at the NIC layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicDrop {
    /// The receive DMA ring overflowed (host not servicing interrupts).
    RingOverrun,
    /// Early discard: the destination channel was full.
    ChannelFull,
    /// Early discard: no endpoint matched (NI-demux mode only).
    NoMatch,
    /// Early discard: malformed packet (NI-demux mode only).
    Malformed,
    /// The device was stalled by an injected fault window.
    Stalled,
}

/// Injected device misbehavior (see `FaultPlan` in `lrp-net` for the
/// wire-level counterpart). Times are raw nanoseconds since simulation
/// start so this crate stays free of the simulator's time types.
#[derive(Clone, Debug, Default)]
pub struct NicFaultPlan {
    /// Transient stall windows `(from_ns, until_ns)`: frames arriving
    /// while the device is stalled are dropped on the floor (counted in
    /// [`NicStats::stall_drops`]), whatever the demux mode — a wedged DMA
    /// engine does not classify packets either.
    pub stall_ns: Vec<(u64, u64)>,
    /// Interrupt coalescing delay: after raising a host interrupt, the
    /// device raises no further interrupts for this many nanoseconds;
    /// frames keep landing in the receive ring and are picked up by the
    /// next interrupt's batch. `0` disables coalescing. Applies to the
    /// per-frame interrupt modes (BSD / soft-demux) only: NI-demux
    /// channels already coalesce by design — at most one demand
    /// interrupt per queue-empty episode.
    pub coalesce_ns: u64,
}

impl NicFaultPlan {
    /// The inert plan.
    pub fn none() -> Self {
        NicFaultPlan::default()
    }

    /// True if this plan can never affect a frame.
    pub fn is_none(&self) -> bool {
        self.stall_ns.is_empty() && self.coalesce_ns == 0
    }

    fn stalled_at(&self, now_ns: u64) -> bool {
        self.stall_ns
            .iter()
            .any(|&(from, until)| now_ns >= from && now_ns < until)
    }
}

/// The outcome of frame reception, telling the host what to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxOutcome {
    /// Frame queued (ring or channel); raise a host interrupt. The payload
    /// is the RX queue that raised it — the host steers the interrupt to
    /// that queue's target CPU. Always 0 on a single-queue NIC.
    Interrupt(usize),
    /// Frame queued silently (channel already non-empty, or interrupts not
    /// requested). No host work.
    Queued,
    /// Frame dropped at the NIC with no host work.
    Dropped(NicDrop),
}

/// Per-channel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames enqueued.
    pub enqueued: u64,
    /// Frames dropped because the queue was full (early packet discard).
    pub dropped_full: u64,
    /// Frames dequeued by the host.
    pub dequeued: u64,
    /// High-water mark of queue depth.
    pub peak_depth: usize,
}

/// A network-interface channel (§3.1): a receive queue shared between the
/// NIC and the kernel, with a demand-interrupt flag.
#[derive(Debug)]
pub struct NiChannel {
    /// This channel's id.
    pub id: ChannelId,
    queue: std::collections::VecDeque<Frame>,
    limit: usize,
    /// When true, the NIC raises a host interrupt on the empty→non-empty
    /// transition (a blocked receiver is waiting).
    pub intr_requested: bool,
    /// Protocol processing enabled? Cleared for listening sockets whose
    /// backlog is exceeded (§3.4): the channel then fills and the NIC
    /// discards SYNs with no host work.
    pub processing_enabled: bool,
    stats: ChannelStats,
}

impl NiChannel {
    fn new(id: ChannelId, limit: usize) -> Self {
        NiChannel {
            id,
            queue: std::collections::VecDeque::new(),
            limit,
            intr_requested: false,
            processing_enabled: true,
            stats: ChannelStats::default(),
        }
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// True if no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True if the queue is at its limit.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.limit
    }

    /// Queue capacity.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Enqueues a frame; returns false (and counts a drop) if full.
    pub fn enqueue(&mut self, frame: Frame) -> bool {
        if self.is_full() {
            self.stats.dropped_full += 1;
            return false;
        }
        self.queue.push_back(frame);
        self.stats.enqueued += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.queue.len());
        true
    }

    /// Dequeues the oldest frame.
    pub fn dequeue(&mut self) -> Option<Frame> {
        let f = self.queue.pop_front();
        if f.is_some() {
            self.stats.dequeued += 1;
        }
        f
    }

    /// Peeks at the oldest frame without removing it.
    pub fn peek(&self) -> Option<&Frame> {
        self.queue.front()
    }
}

/// NIC-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames received from the link.
    pub rx_frames: u64,
    /// Host interrupts raised.
    pub interrupts: u64,
    /// Frames dropped at the rx ring.
    pub ring_drops: u64,
    /// Frames discarded early by NI-demux (channel full / no match /
    /// malformed).
    pub early_discards: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Frames dropped at the interface (tx) queue.
    pub ifq_drops: u64,
    /// Frames dropped because the device was stalled (injected fault).
    pub stall_drops: u64,
    /// Host interrupts suppressed by the coalescing window.
    pub coalesced_intrs: u64,
}

/// The simulated network adaptor.
///
/// # Examples
///
/// ```
/// use lrp_nic::{DemuxMode, Nic, RxOutcome};
/// use lrp_wire::{udp, Endpoint, FlowKey, Frame, Ipv4Addr, proto};
///
/// let local = Ipv4Addr::new(10, 0, 0, 2);
/// let mut nic = Nic::new(DemuxMode::Ni, local, 16);
/// let chan = nic.create_default_channel();
/// nic.demux
///     .register(FlowKey::listening(proto::UDP, Endpoint::new(local, 7)), chan)
///     .unwrap();
/// let frame = Frame::ipv4(udp::build_datagram(
///     Ipv4Addr::new(10, 0, 0, 1), local, 9, 7, 1, b"hi", true,
/// ));
/// // Queued silently: no interrupt was requested for this channel.
/// assert_eq!(nic.rx_frame(frame), RxOutcome::Queued);
/// assert_eq!(nic.channel(chan).depth(), 1);
/// ```
#[derive(Debug)]
pub struct Nic {
    mode: DemuxMode,
    /// The demux table; owned by the NIC in NI mode, used by the host's
    /// interrupt handler in Soft mode (the structure is identical — only
    /// who pays for classification differs).
    pub demux: DemuxTable,
    /// One receive DMA ring per RX queue; a single-queue NIC has exactly
    /// one. Frames are steered by the RSS flow hash so a flow's frames
    /// always land on the same ring.
    rx_rings: Vec<std::collections::VecDeque<Frame>>,
    rx_ring_limit: usize,
    channels: Vec<Option<NiChannel>>,
    /// The special channel for non-first IP fragments (always present).
    pub fragment_channel: ChannelId,
    ifq: std::collections::VecDeque<Frame>,
    ifq_limit: usize,
    default_channel_limit: usize,
    proxy: ProxyChannels,
    stats: NicStats,
    /// Channel the most recent `rx_frame` enqueued into (NI mode only);
    /// `None` if the frame was dropped, ring-queued, or not yet received.
    last_rx_chan: Option<ChannelId>,
    /// Injected device faults (inert by default).
    faults: NicFaultPlan,
    /// When the last host interrupt was raised (for coalescing).
    last_intr_ns: Option<u64>,
}

/// Default receive ring size (FORE SBA-200-ish).
pub const DEFAULT_RX_RING: usize = 256;
/// Default interface (tx) queue limit (BSD `ifq_maxlen`).
pub const DEFAULT_IFQ_LIMIT: usize = 50;
/// Default NI channel queue limit, in packets.
pub const DEFAULT_CHANNEL_LIMIT: usize = 64;

impl Nic {
    /// Creates a NIC for a host with address `local_addr`.
    pub fn new(mode: DemuxMode, local_addr: Ipv4Addr, max_channels: usize) -> Self {
        let mut nic = Nic {
            mode,
            demux: DemuxTable::new(max_channels.max(4), local_addr),
            rx_rings: vec![std::collections::VecDeque::new()],
            rx_ring_limit: DEFAULT_RX_RING,
            channels: Vec::new(),
            fragment_channel: ChannelId(0),
            ifq: std::collections::VecDeque::new(),
            ifq_limit: DEFAULT_IFQ_LIMIT,
            default_channel_limit: DEFAULT_CHANNEL_LIMIT,
            proxy: ProxyChannels::default(),
            stats: NicStats::default(),
            last_rx_chan: None,
            faults: NicFaultPlan::none(),
            last_intr_ns: None,
        };
        // Channel 0 is reserved for misordered fragments.
        let frag = nic.create_channel(DEFAULT_CHANNEL_LIMIT);
        debug_assert_eq!(frag, ChannelId(0));
        nic.fragment_channel = frag;
        nic
    }

    /// The demux placement mode.
    pub fn mode(&self) -> DemuxMode {
        self.mode
    }

    /// Overrides the default per-channel queue limit for future channels.
    pub fn set_default_channel_limit(&mut self, limit: usize) {
        self.default_channel_limit = limit;
    }

    /// Configures `n` RX queues (each with its own DMA ring), dropping any
    /// frames currently queued. Call once at host construction.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_rx_queues(&mut self, n: usize) {
        assert!(n > 0, "a NIC has at least one RX queue");
        self.rx_rings = (0..n).map(|_| std::collections::VecDeque::new()).collect();
    }

    /// Number of RX queues.
    pub fn rx_queues(&self) -> usize {
        self.rx_rings.len()
    }

    /// The RX queue a frame steers to: the RSS hash of its flow key, or
    /// queue 0 for traffic with no transport flow (fragments, ARP, ICMP,
    /// forwarded and malformed frames).
    pub fn rx_queue_of(&self, frame: &Frame) -> usize {
        if self.rx_rings.len() == 1 {
            return 0;
        }
        match lrp_demux::rss_flow_key(frame, self.demux.local_addr()) {
            Some(key) => lrp_demux::rss_queue(&key, self.rx_rings.len()),
            None => 0,
        }
    }

    /// The default per-channel queue limit.
    pub fn default_channel_limit(&self) -> usize {
        self.default_channel_limit
    }

    /// NIC statistics snapshot.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Creates a channel with an explicit queue limit.
    pub fn create_channel(&mut self, limit: usize) -> ChannelId {
        // Reuse a freed slot if available (NI resources are finite).
        for (i, slot) in self.channels.iter_mut().enumerate() {
            if slot.is_none() {
                let id = ChannelId(i as u32);
                *slot = Some(NiChannel::new(id, limit));
                return id;
            }
        }
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Some(NiChannel::new(id, limit)));
        id
    }

    /// Creates a channel with the default queue limit.
    pub fn create_default_channel(&mut self) -> ChannelId {
        self.create_channel(self.default_channel_limit)
    }

    /// Destroys a channel (e.g. TIME_WAIT reclamation, §4.2), dropping any
    /// queued frames.
    ///
    /// # Panics
    ///
    /// Panics if asked to destroy the fragment channel.
    pub fn destroy_channel(&mut self, id: ChannelId) {
        assert_ne!(id, self.fragment_channel, "fragment channel is permanent");
        if let Some(slot) = self.channels.get_mut(id.0 as usize) {
            *slot = None;
        }
    }

    /// Number of live channels (including the fragment channel).
    pub fn channel_count(&self) -> usize {
        self.channels.iter().filter(|c| c.is_some()).count()
    }

    /// The ids of all live channels, in id order (includes the permanent
    /// fragment channel). Used by whole-host reboot to flush every
    /// channel coherently.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.channels
            .iter()
            .filter_map(|c| c.as_ref().map(|c| c.id))
            .collect()
    }

    /// Accesses a channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn channel(&self, id: ChannelId) -> &NiChannel {
        self.channels[id.0 as usize]
            .as_ref()
            .expect("channel exists")
    }

    /// Mutable access to a channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut NiChannel {
        self.channels[id.0 as usize]
            .as_mut()
            .expect("channel exists")
    }

    /// True if the channel id refers to a live channel.
    pub fn channel_exists(&self, id: ChannelId) -> bool {
        self.channels
            .get(id.0 as usize)
            .is_some_and(|c| c.is_some())
    }

    /// Installs an injected-fault plan on the device.
    pub fn set_faults(&mut self, plan: NicFaultPlan) {
        self.faults = plan;
    }

    /// The device's injected-fault plan.
    pub fn faults(&self) -> &NicFaultPlan {
        &self.faults
    }

    /// True if the coalescing window allows raising an interrupt at
    /// `now_ns`.
    fn intr_allowed(&self, now_ns: u64) -> bool {
        match self.last_intr_ns {
            None => true,
            Some(t) => self.faults.coalesce_ns == 0 || now_ns >= t + self.faults.coalesce_ns,
        }
    }

    /// Delivers a frame from the link to the NIC.
    ///
    /// Timeless wrapper around [`Nic::rx_frame_at`] for callers that do
    /// not inject device faults (the fault windows are evaluated at
    /// simulation start).
    pub fn rx_frame(&mut self, frame: Frame) -> RxOutcome {
        self.rx_frame_at(0, frame)
    }

    /// Delivers a frame from the link to the NIC at `now_ns` nanoseconds
    /// of simulated time (used by the injected-fault windows; everything
    /// else is time-free mechanism).
    ///
    /// The returned [`RxOutcome`] tells the host whether an interrupt was
    /// raised. In NI-demux mode classification happens here, on the NIC's
    /// own processor; the host learns nothing about discarded frames.
    pub fn rx_frame_at(&mut self, now_ns: u64, frame: Frame) -> RxOutcome {
        self.stats.rx_frames += 1;
        self.last_rx_chan = None;
        if self.faults.stalled_at(now_ns) {
            self.stats.stall_drops += 1;
            return RxOutcome::Dropped(NicDrop::Stalled);
        }
        let rxq = self.rx_queue_of(&frame);
        match self.mode {
            DemuxMode::None | DemuxMode::Soft => {
                // Dumb adaptor: DMA into the steered ring, interrupt per
                // frame (unless the coalescing window holds it back — the
                // frame then rides along with the next interrupt's ring
                // batch).
                if self.rx_rings[rxq].len() >= self.rx_ring_limit {
                    self.stats.ring_drops += 1;
                    return RxOutcome::Dropped(NicDrop::RingOverrun);
                }
                self.rx_rings[rxq].push_back(frame);
                if !self.intr_allowed(now_ns) {
                    self.stats.coalesced_intrs += 1;
                    return RxOutcome::Queued;
                }
                self.last_intr_ns = Some(now_ns);
                self.stats.interrupts += 1;
                RxOutcome::Interrupt(rxq)
            }
            DemuxMode::Ni => {
                let verdict = self.demux.classify(&frame);
                let chan = match verdict {
                    Verdict::Endpoint(c) => c,
                    Verdict::Fragment => self.fragment_channel,
                    // Proxy daemon channels must be registered by the host
                    // via `register_proxy`; unregistered protocols drop.
                    Verdict::IcmpDaemon => match self.proxy.icmp {
                        Some(c) => c,
                        None => {
                            self.stats.early_discards += 1;
                            return RxOutcome::Dropped(NicDrop::NoMatch);
                        }
                    },
                    Verdict::ArpDaemon => match self.proxy.arp {
                        Some(c) => c,
                        None => {
                            self.stats.early_discards += 1;
                            return RxOutcome::Dropped(NicDrop::NoMatch);
                        }
                    },
                    Verdict::Forward => match self.proxy.forward {
                        Some(c) => c,
                        None => {
                            self.stats.early_discards += 1;
                            return RxOutcome::Dropped(NicDrop::NoMatch);
                        }
                    },
                    Verdict::NoMatch => {
                        self.stats.early_discards += 1;
                        return RxOutcome::Dropped(NicDrop::NoMatch);
                    }
                    Verdict::Malformed => {
                        self.stats.early_discards += 1;
                        return RxOutcome::Dropped(NicDrop::Malformed);
                    }
                };
                if !self.channel_exists(chan) {
                    self.stats.early_discards += 1;
                    return RxOutcome::Dropped(NicDrop::NoMatch);
                }
                let ch = self.channels[chan.0 as usize].as_mut().expect("checked");
                let was_empty = ch.is_empty();
                if !ch.enqueue(frame) {
                    self.stats.early_discards += 1;
                    return RxOutcome::Dropped(NicDrop::ChannelFull);
                }
                self.last_rx_chan = Some(chan);
                if was_empty && ch.intr_requested {
                    ch.intr_requested = false;
                    self.last_intr_ns = Some(now_ns);
                    self.stats.interrupts += 1;
                    RxOutcome::Interrupt(rxq)
                } else {
                    RxOutcome::Queued
                }
            }
        }
    }

    /// Takes the next frame from the first non-empty receive ring (driver
    /// interrupt handler, BSD/Soft modes). Single-queue NICs have exactly
    /// one ring, so this is *the* ring there.
    pub fn ring_dequeue(&mut self) -> Option<Frame> {
        self.rx_rings.iter_mut().find_map(|r| r.pop_front())
    }

    /// Takes the next frame from a specific RX queue's ring.
    pub fn ring_dequeue_from(&mut self, rxq: usize) -> Option<Frame> {
        self.rx_rings[rxq].pop_front()
    }

    /// Drains up to `max` frames from RX queue `rxq` into `out`,
    /// preserving arrival order (the driver's per-interrupt ring batch).
    /// `out` is a caller-owned scratch buffer so the hot path reuses its
    /// capacity instead of allocating.
    pub fn ring_drain_into(&mut self, rxq: usize, max: usize, out: &mut Vec<Frame>) {
        let ring = &mut self.rx_rings[rxq];
        let n = max.min(ring.len());
        out.extend(ring.drain(..n));
    }

    /// Frames currently waiting across all receive rings.
    pub fn ring_depth(&self) -> usize {
        self.rx_rings.iter().map(|r| r.len()).sum()
    }

    /// Enqueues a frame for transmission; returns false (counting a drop)
    /// if the interface queue is full.
    pub fn ifq_enqueue(&mut self, frame: Frame) -> bool {
        if self.ifq.len() >= self.ifq_limit {
            self.stats.ifq_drops += 1;
            return false;
        }
        self.ifq.push_back(frame);
        true
    }

    /// Takes the next frame for the link to transmit.
    pub fn ifq_dequeue(&mut self) -> Option<Frame> {
        let f = self.ifq.pop_front();
        if f.is_some() {
            self.stats.tx_frames += 1;
        }
        f
    }

    /// Discards every frame queued for transmission (whole-host reboot:
    /// power fails before the link takes them). Returns the count; unlike
    /// [`ifq_dequeue`](Self::ifq_dequeue) nothing is counted transmitted.
    pub fn ifq_clear(&mut self) -> usize {
        let n = self.ifq.len();
        self.ifq.clear();
        n
    }

    /// Frames currently waiting to transmit.
    pub fn ifq_depth(&self) -> usize {
        self.ifq.len()
    }

    /// The channel the most recent [`Nic::rx_frame`] enqueued into, if any
    /// (NI mode). Lets the host's telemetry observe firmware-side channel
    /// placement without paying any modelled host cost.
    pub fn last_rx_channel(&self) -> Option<ChannelId> {
        self.last_rx_chan
    }

    /// Total frames queued across all live channels (telemetry: in-flight
    /// frames for the packet-conservation ledger).
    pub fn channel_depth_total(&self) -> usize {
        self.channels
            .iter()
            .filter_map(|c| c.as_ref().map(|c| c.depth()))
            .sum()
    }

    /// The deepest single live channel right now (telemetry gauge: a hot
    /// channel backing up shows here before the total does).
    pub fn channel_depth_max(&self) -> usize {
        self.channels
            .iter()
            .filter_map(|c| c.as_ref().map(|c| c.depth()))
            .max()
            .unwrap_or(0)
    }
}

/// Proxy-daemon channel registrations (§3.5).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyChannels {
    /// ICMP daemon channel.
    pub icmp: Option<ChannelId>,
    /// ARP daemon channel.
    pub arp: Option<ChannelId>,
    /// IP-forwarding daemon channel.
    pub forward: Option<ChannelId>,
}

impl Nic {
    /// Registers a proxy daemon channel for ICMP.
    pub fn set_icmp_proxy(&mut self, c: ChannelId) {
        self.proxy.icmp = Some(c);
    }

    /// Registers a proxy daemon channel for ARP.
    pub fn set_arp_proxy(&mut self, c: ChannelId) {
        self.proxy.arp = Some(c);
    }

    /// Registers a proxy daemon channel for IP forwarding.
    pub fn set_forward_proxy(&mut self, c: ChannelId) {
        self.proxy.forward = Some(c);
    }

    /// Current proxy registrations.
    pub fn proxies(&self) -> ProxyChannels {
        self.proxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_wire::{proto, udp, Endpoint, FlowKey};

    const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const PEER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn udp_frame(dport: u16) -> Frame {
        Frame::ipv4(udp::build_datagram(PEER, LOCAL, 5, dport, 1, b"hi", true))
    }

    #[test]
    fn bsd_mode_ring_and_interrupt() {
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        assert_eq!(nic.rx_frame(udp_frame(80)), RxOutcome::Interrupt(0));
        assert_eq!(nic.ring_depth(), 1);
        assert!(nic.ring_dequeue().is_some());
        assert_eq!(nic.ring_depth(), 0);
        assert_eq!(nic.stats().interrupts, 1);
    }

    #[test]
    fn ring_drain_into_batches_in_arrival_order() {
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        for port in [1u16, 2, 3, 4] {
            nic.rx_frame(udp_frame(port));
        }
        assert_eq!(nic.ring_depth(), 4);
        let mut out = vec![udp_frame(99)]; // pre-existing contents survive
        nic.ring_drain_into(0, 3, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(nic.ring_depth(), 1, "only `max` frames drained");
        let ports: Vec<u16> = out
            .iter()
            .map(|f| {
                let (_, p) = lrp_wire::ipv4::parse(f.bytes()).unwrap();
                lrp_wire::udp::parse(p).unwrap().0.dst_port
            })
            .collect();
        assert_eq!(ports, [99, 1, 2, 3], "arrival order preserved");
        out.clear();
        nic.ring_drain_into(0, 16, &mut out);
        assert_eq!(out.len(), 1, "drain is bounded by ring depth");
    }

    #[test]
    fn ring_overrun_drops() {
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        nic.rx_ring_limit = 2;
        assert_eq!(nic.rx_frame(udp_frame(1)), RxOutcome::Interrupt(0));
        assert_eq!(nic.rx_frame(udp_frame(1)), RxOutcome::Interrupt(0));
        assert_eq!(
            nic.rx_frame(udp_frame(1)),
            RxOutcome::Dropped(NicDrop::RingOverrun)
        );
        assert_eq!(nic.stats().ring_drops, 1);
    }

    #[test]
    fn ni_mode_demux_to_channel() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let chan = nic.create_default_channel();
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                chan,
            )
            .unwrap();
        // No interrupt requested: frame queued silently.
        assert_eq!(nic.rx_frame(udp_frame(9000)), RxOutcome::Queued);
        assert_eq!(nic.channel(chan).depth(), 1);
        assert_eq!(nic.stats().interrupts, 0);
    }

    #[test]
    fn ni_mode_interrupt_on_empty_transition_only() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let chan = nic.create_default_channel();
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                chan,
            )
            .unwrap();
        nic.channel_mut(chan).intr_requested = true;
        assert_eq!(nic.rx_frame(udp_frame(9000)), RxOutcome::Interrupt(0));
        // Flag auto-clears; queue non-empty => no further interrupts.
        assert_eq!(nic.rx_frame(udp_frame(9000)), RxOutcome::Queued);
        assert_eq!(nic.stats().interrupts, 1);
    }

    #[test]
    fn ni_mode_early_discard_when_full() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let chan = nic.create_channel(2);
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                chan,
            )
            .unwrap();
        assert_eq!(nic.rx_frame(udp_frame(9000)), RxOutcome::Queued);
        assert_eq!(nic.rx_frame(udp_frame(9000)), RxOutcome::Queued);
        assert_eq!(
            nic.rx_frame(udp_frame(9000)),
            RxOutcome::Dropped(NicDrop::ChannelFull)
        );
        assert_eq!(nic.channel(chan).stats().dropped_full, 1);
        assert_eq!(nic.stats().early_discards, 1);
    }

    #[test]
    fn ni_mode_unmatched_discard() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        assert_eq!(
            nic.rx_frame(udp_frame(12345)),
            RxOutcome::Dropped(NicDrop::NoMatch)
        );
        // Malformed packets die on the NIC too.
        assert_eq!(
            nic.rx_frame(Frame::ipv4(vec![0u8; 5])),
            RxOutcome::Dropped(NicDrop::Malformed)
        );
        assert_eq!(nic.stats().early_discards, 2);
    }

    #[test]
    fn fragment_channel_receives_fragments() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let chan = nic.create_default_channel();
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                chan,
            )
            .unwrap();
        let seg = udp::build(PEER, LOCAL, 5, 9000, &[0u8; 3000], false);
        let frags = lrp_wire::ipv4::fragment(PEER, LOCAL, proto::UDP, 3, &seg, 1500);
        nic.rx_frame(Frame::ipv4(frags[1].clone()));
        assert_eq!(nic.channel(nic.fragment_channel).depth(), 1);
        nic.rx_frame(Frame::ipv4(frags[0].clone()));
        assert_eq!(nic.channel(chan).depth(), 1);
    }

    #[test]
    fn proxy_channels_route() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let icmp_chan = nic.create_default_channel();
        nic.set_icmp_proxy(icmp_chan);
        let pkt = lrp_wire::icmp::build_datagram(
            PEER,
            LOCAL,
            3,
            &lrp_wire::icmp::IcmpMessage {
                kind: lrp_wire::icmp::IcmpType::EchoRequest,
                ident: 1,
                seq: 1,
                payload: vec![],
            },
        );
        assert_eq!(nic.rx_frame(Frame::ipv4(pkt)), RxOutcome::Queued);
        assert_eq!(nic.channel(icmp_chan).depth(), 1);
    }

    #[test]
    fn channel_destroy_and_reuse() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let a = nic.create_default_channel();
        assert_eq!(nic.channel_count(), 2); // Fragment channel + a.
        nic.destroy_channel(a);
        assert!(!nic.channel_exists(a));
        assert_eq!(nic.channel_count(), 1);
        let b = nic.create_default_channel();
        assert_eq!(b, a, "slot reused");
    }

    #[test]
    fn ifq_limit_enforced() {
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        for _ in 0..DEFAULT_IFQ_LIMIT {
            assert!(nic.ifq_enqueue(udp_frame(1)));
        }
        assert!(!nic.ifq_enqueue(udp_frame(1)));
        assert_eq!(nic.stats().ifq_drops, 1);
        let mut n = 0;
        while nic.ifq_dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, DEFAULT_IFQ_LIMIT);
        assert_eq!(nic.stats().tx_frames, DEFAULT_IFQ_LIMIT as u64);
    }

    #[test]
    fn channel_stats_track_lifecycle() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let c = nic.create_channel(4);
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                c,
            )
            .unwrap();
        for _ in 0..6 {
            nic.rx_frame(udp_frame(9000));
        }
        let ch = nic.channel_mut(c);
        assert_eq!(ch.stats().enqueued, 4);
        assert_eq!(ch.stats().dropped_full, 2);
        assert_eq!(ch.stats().peak_depth, 4);
        assert!(ch.peek().is_some());
        let _ = ch.dequeue();
        assert_eq!(ch.stats().dequeued, 1);
        assert_eq!(ch.depth(), 3);
        assert_eq!(ch.limit(), 4);
    }

    #[test]
    fn last_rx_channel_tracks_ni_enqueue() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let chan = nic.create_default_channel();
        nic.demux
            .register(
                FlowKey::listening(proto::UDP, Endpoint::new(LOCAL, 9000)),
                chan,
            )
            .unwrap();
        assert_eq!(nic.last_rx_channel(), None);
        nic.rx_frame(udp_frame(9000));
        assert_eq!(nic.last_rx_channel(), Some(chan));
        assert_eq!(nic.channel_depth_total(), 1);
        // A discarded frame clears the marker.
        nic.rx_frame(udp_frame(12345));
        assert_eq!(nic.last_rx_channel(), None);
    }

    #[test]
    fn processing_enabled_flag_defaults_true() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let c = nic.create_default_channel();
        assert!(nic.channel(c).processing_enabled);
        nic.channel_mut(c).processing_enabled = false;
        assert!(!nic.channel(c).processing_enabled);
    }

    #[test]
    #[should_panic]
    fn fragment_channel_cannot_be_destroyed() {
        let mut nic = Nic::new(DemuxMode::Ni, LOCAL, 8);
        let frag = nic.fragment_channel;
        nic.destroy_channel(frag);
    }

    #[test]
    fn stall_window_drops_in_every_mode() {
        for mode in [DemuxMode::None, DemuxMode::Soft, DemuxMode::Ni] {
            let mut nic = Nic::new(mode, LOCAL, 8);
            nic.set_faults(NicFaultPlan {
                stall_ns: vec![(1_000, 2_000)],
                coalesce_ns: 0,
            });
            assert_ne!(
                nic.rx_frame_at(500, udp_frame(9000)),
                RxOutcome::Dropped(NicDrop::Stalled)
            );
            assert_eq!(
                nic.rx_frame_at(1_500, udp_frame(9000)),
                RxOutcome::Dropped(NicDrop::Stalled)
            );
            // End boundary is exclusive.
            assert_ne!(
                nic.rx_frame_at(2_000, udp_frame(9000)),
                RxOutcome::Dropped(NicDrop::Stalled)
            );
            assert_eq!(nic.stats().stall_drops, 1, "{mode:?}");
            assert_eq!(nic.stats().rx_frames, 3, "stalled frames still count");
        }
    }

    #[test]
    fn coalescing_suppresses_interrupts_but_keeps_frames() {
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        nic.set_faults(NicFaultPlan {
            stall_ns: vec![],
            coalesce_ns: 1_000,
        });
        assert_eq!(nic.rx_frame_at(0, udp_frame(1)), RxOutcome::Interrupt(0));
        // Inside the window: queued silently, ring keeps the frame.
        assert_eq!(nic.rx_frame_at(400, udp_frame(1)), RxOutcome::Queued);
        assert_eq!(nic.rx_frame_at(900, udp_frame(1)), RxOutcome::Queued);
        // Window over: next frame raises again.
        assert_eq!(
            nic.rx_frame_at(1_000, udp_frame(1)),
            RxOutcome::Interrupt(0)
        );
        assert_eq!(nic.ring_depth(), 4);
        assert_eq!(nic.stats().interrupts, 2);
        assert_eq!(nic.stats().coalesced_intrs, 2);
    }

    #[test]
    fn inert_nic_fault_plan_changes_nothing() {
        assert!(NicFaultPlan::none().is_none());
        let mut nic = Nic::new(DemuxMode::None, LOCAL, 8);
        nic.set_faults(NicFaultPlan::none());
        assert_eq!(nic.rx_frame_at(0, udp_frame(1)), RxOutcome::Interrupt(0));
        assert_eq!(nic.rx_frame_at(1, udp_frame(1)), RxOutcome::Interrupt(0));
        assert_eq!(nic.stats().coalesced_intrs, 0);
        assert_eq!(nic.stats().stall_drops, 0);
    }
}
