//! Offline stand-in for the `proptest` crate.
//!
//! The real proptest cannot be fetched in this build environment, so this
//! crate provides the API subset the workspace's property tests use:
//! deterministic random generation (SplitMix64 seeded per test), the
//! [`Strategy`] trait with `prop_map`, ranges, tuples, `Just`,
//! `collection::vec`, `sample::Index`, `prop_oneof!`, and the `proptest!`
//! macro. There is **no shrinking**: a failing case panics with the seed
//! and iteration number so it can be reproduced.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit RNG (SplitMix64). Good enough statistical quality
/// for property generation and trivially reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy just
/// draws a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, cheaply cloneable.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Produces the canonical strategy for a type (see [`Arbitrary`]).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitive types.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<[u8; 4]> {
    type Value = [u8; 4];
    fn generate(&self, rng: &mut TestRng) -> [u8; 4] {
        rng.next_u64().to_le_bytes()[..4].try_into().unwrap()
    }
}

impl Arbitrary for [u8; 4] {
    type Strategy = AnyPrimitive<[u8; 4]>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Size bound for [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length in `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with element strategy `S` and size in `L`.
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates ordered sets of up to the drawn size (duplicates collapse,
    /// so the set may come out smaller, as in real proptest).
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool` subset.
pub mod bool {
    use super::*;

    /// Strategy for `bool` that is `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    /// Generates `true` with probability `probability_true`.
    pub fn weighted(probability_true: f64) -> Weighted {
        Weighted(probability_true)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// `proptest::option` subset.
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`: ~75 % `Some`, like real proptest's default.
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `proptest::sample` subset.
pub mod sample {
    use super::*;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Projects this index into `[0, len)`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    /// Strategy for [`Index`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// FNV-1a over the test name: stable per-test seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf { choices }
    }};
}

/// Strategy built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives; one is drawn uniformly per case.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body `cases` times with generated
/// inputs. Failures panic with the case number (deterministic: rerun
/// reproduces the same inputs).
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
    // Without a config header: default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-20i8..=20).generate(&mut rng);
            assert!((-20..=20).contains(&w));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_choices() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn vec_len_respected(v in collection::vec(any::<u8>(), 0..16usize)) {
            prop_assert!(v.len() < 16);
        }

        fn tuple_and_map((a, b) in (any::<u16>(), 1u16..16).prop_map(|(x, y)| (x, y))) {
            prop_assert!((1..16).contains(&b));
            let _ = a;
        }

        fn index_in_bounds(ix in any::<sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }
    }
}
