//! A minimal structural validator for the experiment-results JSON.
//!
//! Implements the JSON-Schema subset the checked-in
//! `schemas/results.schema.json` uses: `type` (scalar or list),
//! `required`, `properties`, `items`, `additionalProperties` (as a
//! schema applied to keys not listed in `properties`), `enum` (scalar
//! members) and `maximum`. Enough for CI to reject malformed reports
//! without pulling in an external validator.

use crate::json::Json;

/// Validates `value` against `schema`, returning every violation found
/// (empty = valid). `path` is the JSON-pointer-ish location prefix used
/// in messages; pass `"$"` at the root.
pub fn validate(value: &Json, schema: &Json, path: &str) -> Vec<String> {
    let mut errs = Vec::new();
    check(value, schema, path, &mut errs);
    errs
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::U64(_) | Json::I64(_) => "integer",
        Json::F64(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn matches_type(v: &Json, t: &str) -> bool {
    match t {
        // Integers are numbers too, as in JSON Schema.
        "number" => matches!(v, Json::U64(_) | Json::I64(_) | Json::F64(_)),
        other => type_name(v) == other,
    }
}

fn check(value: &Json, schema: &Json, path: &str, errs: &mut Vec<String>) {
    if let Some(t) = schema.get("type") {
        let allowed: Vec<&str> = match t {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(items) => items.iter().filter_map(Json::as_str).collect(),
            _ => Vec::new(),
        };
        if !allowed.is_empty() && !allowed.iter().any(|t| matches_type(value, t)) {
            errs.push(format!(
                "{path}: expected {allowed:?}, got {}",
                type_name(value)
            ));
            return;
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(Json::as_arr) {
        if !allowed.contains(value) {
            errs.push(format!("{path}: {value:?} not in enum {allowed:?}"));
            return;
        }
    }
    if let Some(max) = schema.get("maximum").and_then(Json::as_f64) {
        match value.as_f64() {
            Some(v) if v > max => {
                errs.push(format!("{path}: {v} exceeds maximum {max}"));
            }
            _ => {}
        }
    }
    if let Some(req) = schema.get("required").and_then(Json::as_arr) {
        for name in req.iter().filter_map(Json::as_str) {
            if value.get(name).is_none() {
                errs.push(format!("{path}: missing required key \"{name}\""));
            }
        }
    }
    let props = schema.get("properties").and_then(Json::as_obj);
    if let Some(pairs) = value.as_obj() {
        for (key, val) in pairs {
            let sub = props.and_then(|p| p.iter().find(|(k, _)| k == key).map(|(_, s)| s));
            let sub = sub.or_else(|| schema.get("additionalProperties"));
            if let Some(sub) = sub {
                check(val, sub, &format!("{path}.{key}"), errs);
            }
        }
    }
    if let (Some(items), Some(arr)) = (schema.get("items"), value.as_arr()) {
        for (i, item) in arr.iter().enumerate() {
            check(item, items, &format!("{path}[{i}]"), errs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Json {
        Json::parse(
            r#"{
              "type": "object",
              "required": ["experiment", "hosts"],
              "properties": {
                "experiment": {"type": "string"},
                "hosts": {
                  "type": "array",
                  "items": {
                    "type": "object",
                    "required": ["conserved"],
                    "properties": {"conserved": {"type": "boolean"}}
                  }
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_conforming_document() {
        let doc =
            Json::parse(r#"{"experiment": "fig3", "hosts": [{"conserved": true, "extra": 1}]}"#)
                .unwrap();
        assert_eq!(validate(&doc, &schema(), "$"), Vec::<String>::new());
    }

    #[test]
    fn reports_missing_required_and_wrong_types() {
        let doc = Json::parse(r#"{"experiment": 3, "hosts": [{"conserved": "yes"}]}"#).unwrap();
        let errs = validate(&doc, &schema(), "$");
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("$.experiment"));
        assert!(errs[1].contains("$.hosts[0].conserved"));
    }

    #[test]
    fn enum_accepts_member_rejects_other() {
        let s = Json::parse(r#"{"enum": ["exact", "sketch"]}"#).unwrap();
        assert!(validate(&Json::str("exact"), &s, "$").is_empty());
        let errs = validate(&Json::str("guess"), &s, "$");
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("not in enum"));
    }

    #[test]
    fn maximum_bounds_numbers() {
        let s = Json::parse(r#"{"type": "number", "maximum": 0.1}"#).unwrap();
        assert!(validate(&Json::F64(0.063), &s, "$").is_empty());
        assert!(validate(&Json::F64(0.1), &s, "$").is_empty());
        let errs = validate(&Json::F64(0.129), &s, "$");
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("exceeds maximum"));
    }

    #[test]
    fn integer_satisfies_number() {
        let s = Json::parse(r#"{"type": "number"}"#).unwrap();
        assert!(validate(&Json::U64(5), &s, "$").is_empty());
        assert!(validate(&Json::F64(5.5), &s, "$").is_empty());
        assert!(!validate(&Json::str("5"), &s, "$").is_empty());
    }
}
