//! Time-resolved observability exports: the simulated-cycle profiler
//! (flamegraph folded stacks + charge-attribution report), the metrics
//! timeline (JSON + gnuplot columns), and causal request-span traces
//! (chrome://tracing flow events + critical-path breakdowns).
//!
//! Everything here *reads* finished telemetry; nothing feeds back into the
//! simulation. The recording side lives in `lrp_core::telemetry` and is
//! contractually pure observation (same-seed runs are bit-identical with
//! the layer on or off).

use crate::json::Json;
use lrp_core::{Host, SpanEvent, World};
use std::collections::BTreeMap;

/// The simulated-cycle profiler as JSON: one entry per distinct
/// `(cpu, context, stage, billed, account)` key, plus per-context totals.
pub fn profiler_json(host: &Host) -> Json {
    let prof = host.telemetry().profiler();
    let entries: Vec<Json> = prof
        .iter()
        .map(|(k, ns)| {
            Json::obj(vec![
                ("cpu", Json::U64(k.cpu as u64)),
                ("context", Json::str(k.context)),
                ("stage", Json::str(k.stage)),
                (
                    "billed_pid",
                    k.billed.map(|p| Json::U64(p as u64)).unwrap_or(Json::Null),
                ),
                ("account", k.account.map(Json::str).unwrap_or(Json::Null)),
                ("cycles_ns", Json::U64(ns)),
            ])
        })
        .collect();
    let per_context: Vec<(String, Json)> = prof
        .per_context()
        .into_iter()
        .map(|(c, ns)| (c.to_string(), Json::U64(ns)))
        .collect();
    Json::obj(vec![
        ("total_ns", Json::U64(prof.total())),
        ("per_context_ns", Json::Obj(per_context)),
        ("entries", Json::Arr(entries)),
    ])
}

/// Folded flamegraph stacks (`host;cpu;context;stage count`) for one
/// host, suitable for `flamegraph.pl` / speedscope.
pub fn folded_stacks(host: &Host, label: &str) -> String {
    host.telemetry().profiler().folded(label)
}

/// The charge-attribution summary of one host: of all *protocol* cycles
/// (chunks with a known rightful receiver), how many were billed to that
/// receiver, to some other process, or to nobody (executed over the idle
/// context, where interrupt time is free).
///
/// This is the paper's accounting claim in one number: BSD's
/// `misattributed_fraction` is large under load; LRP's is ~0.
pub fn attribution_json(host: &Host) -> Json {
    let attr = host.telemetry().proto_attribution();
    let mut total: u64 = 0;
    let mut correct: u64 = 0;
    let mut unbilled: u64 = 0;
    let mut per_pair: Vec<Json> = Vec::new();
    let mut misbilled_by: BTreeMap<u32, u64> = BTreeMap::new();
    for (&(billed, owner), &ns) in &attr {
        total += ns;
        match billed {
            Some(b) if b == owner => correct += ns,
            Some(b) => *misbilled_by.entry(b).or_default() += ns,
            None => unbilled += ns,
        }
        per_pair.push(Json::obj(vec![
            (
                "billed_pid",
                billed.map(|p| Json::U64(p as u64)).unwrap_or(Json::Null),
            ),
            ("owner_pid", Json::U64(owner as u64)),
            ("cycles_ns", Json::U64(ns)),
        ]));
    }
    let misattributed = total - correct;
    let frac = |n: u64| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    };
    let victims: Vec<Json> = misbilled_by
        .into_iter()
        .map(|(pid, ns)| {
            Json::obj(vec![
                ("pid", Json::U64(pid as u64)),
                ("cycles_ns", Json::U64(ns)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("protocol_cycles_ns", Json::U64(total)),
        ("billed_to_receiver_ns", Json::U64(correct)),
        ("billed_to_other_ns", Json::U64(misattributed - unbilled)),
        ("billed_to_nobody_ns", Json::U64(unbilled)),
        ("misattributed_ns", Json::U64(misattributed)),
        ("misattributed_fraction", Json::F64(frac(misattributed))),
        ("receiver_fraction", Json::F64(frac(correct))),
        ("victims", Json::Arr(victims)),
        ("pairs", Json::Arr(per_pair)),
    ])
}

/// The fraction of a host's protocol cycles billed to anything other than
/// the rightful receiver (0.0 when no protocol cycles were recorded).
pub fn misattributed_fraction(host: &Host) -> f64 {
    let attr = host.telemetry().proto_attribution();
    let mut total = 0u64;
    let mut correct = 0u64;
    for (&(billed, owner), &ns) in &attr {
        total += ns;
        if billed == Some(owner) {
            correct += ns;
        }
    }
    if total == 0 {
        0.0
    } else {
        (total - correct) as f64 / total as f64
    }
}

/// The metrics timeline of one host as JSON: column names, sample rows
/// (`t_ns` + one value per column), and per-process CPU series.
pub fn timeline_json(host: &Host) -> Json {
    let tele = host.telemetry();
    let tl = tele.timeline();
    let columns: Vec<Json> = tl.columns().iter().map(|c| Json::str(*c)).collect();
    let rows: Vec<Json> = tl
        .rows()
        .iter()
        .map(|r| {
            let mut vals = vec![Json::U64(r.t_ns)];
            vals.extend(r.values.iter().map(|v| Json::U64(*v)));
            Json::Arr(vals)
        })
        .collect();
    // Per-process series: pid → [[total_ns, user_ns] per row].
    let nproc = tele
        .timeline_proc_cpu()
        .iter()
        .map(|v| v.len())
        .max()
        .unwrap_or(0);
    let procs: Vec<Json> = (0..nproc)
        .map(|pid| {
            let series: Vec<Json> = tele
                .timeline_proc_cpu()
                .iter()
                .map(|row| {
                    let (tot, user) = row.get(pid).copied().unwrap_or((0, 0));
                    Json::Arr(vec![Json::U64(tot), Json::U64(user)])
                })
                .collect();
            Json::obj(vec![
                ("pid", Json::U64(pid as u64)),
                ("series", Json::Arr(series)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("columns", Json::Arr(columns)),
        ("rows", Json::Arr(rows)),
        ("rows_dropped", Json::U64(tl.dropped())),
        ("proc_cpu", Json::Arr(procs)),
    ])
}

/// The timeline in gnuplot column format (`# t_s col...` header).
pub fn timeline_gnuplot(host: &Host) -> String {
    host.telemetry().timeline().gnuplot_columns()
}

/// All span events of a world as a chrome://tracing (Perfetto) trace:
/// each stage is a 1 µs slice on `(host, cpu)` tracks, connected per
/// request by flow arrows keyed on the span id.
pub fn span_trace_chrome(world: &World) -> String {
    // Collect (host, event) in deterministic order.
    let mut all: Vec<(usize, SpanEvent)> = Vec::new();
    for (h, host) in world.hosts.iter().enumerate() {
        for ev in host.telemetry().span_log() {
            all.push((h, ev));
        }
    }
    all.sort_by_key(|(h, e)| (e.span, e.t_ns, *h));
    let mut out = String::from("[");
    let mut first = true;
    let mut prev_span: Option<u64> = None;
    for i in 0..all.len() {
        let (h, ev) = all[i];
        let last_of_span = all.get(i + 1).map(|(_, n)| n.span) != Some(ev.span);
        let flow_ph = if prev_span != Some(ev.span) {
            "s"
        } else if last_of_span {
            "f"
        } else {
            "t"
        };
        prev_span = Some(ev.span);
        let ts = ev.t_ns as f64 / 1000.0;
        for (ph, extra) in [
            ("X", ",\"dur\":1".to_string()),
            (flow_ph, format!(",\"id\":{},\"bp\":\"e\"", ev.span)),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}{}}}",
                ev.stage, ph, ts, h, ev.cpu, extra
            ));
        }
    }
    out.push(']');
    out
}

/// One request's reconstructed path: stage-to-stage latencies in arrival
/// order, ending at the final event recorded for the span.
#[derive(Debug, Clone)]
pub struct SpanPath {
    /// The span id.
    pub span: u64,
    /// `(stage, t_ns)` in time order, across all hosts.
    pub events: Vec<(&'static str, u64)>,
}

impl SpanPath {
    /// Total time from the first to the last recorded event.
    pub fn total_ns(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some((_, a)), Some((_, b))) => b.saturating_sub(*a),
            _ => 0,
        }
    }
}

/// Groups all span events in the world by span id, in time order.
pub fn span_paths(world: &World) -> Vec<SpanPath> {
    let mut by_span: BTreeMap<u64, Vec<(&'static str, u64)>> = BTreeMap::new();
    for host in &world.hosts {
        for ev in host.telemetry().span_log() {
            by_span
                .entry(ev.span)
                .or_default()
                .push((ev.stage, ev.t_ns));
        }
    }
    by_span
        .into_iter()
        .map(|(span, mut events)| {
            events.sort_by_key(|&(_, t)| t);
            SpanPath { span, events }
        })
        .collect()
}

/// The per-request critical-path breakdown: for every adjacent stage pair
/// observed on any span (e.g. `inject->rx`, `deliver->recv`), the count,
/// mean and max latency; plus end-to-end statistics over complete spans
/// (those that reached `terminal_stage`).
pub fn span_breakdown_json(world: &World, terminal_stage: &str) -> Json {
    let paths = span_paths(world);
    let mut legs: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new(); // count, sum, max
    let mut complete = 0u64;
    let mut e2e_sum = 0u64;
    let mut e2e_max = 0u64;
    let dropped_events: u64 = world
        .hosts
        .iter()
        .map(|h| h.telemetry().span_events_dropped)
        .sum();
    for p in &paths {
        for w in p.events.windows(2) {
            let (sa, ta) = w[0];
            let (sb, tb) = w[1];
            let leg = format!("{sa}->{sb}");
            let e = legs.entry(leg).or_default();
            let d = tb.saturating_sub(ta);
            e.0 += 1;
            e.1 += d;
            e.2 = e.2.max(d);
        }
        if p.events.iter().any(|&(s, _)| s == terminal_stage) {
            complete += 1;
            let t = p.total_ns();
            e2e_sum += t;
            e2e_max = e2e_max.max(t);
        }
    }
    let legs_json: Vec<(String, Json)> = legs
        .into_iter()
        .map(|(k, (n, sum, max))| {
            (
                k,
                Json::obj(vec![
                    ("count", Json::U64(n)),
                    ("mean_ns", Json::F64(sum as f64 / n.max(1) as f64)),
                    ("max_ns", Json::U64(max)),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("spans", Json::U64(paths.len() as u64)),
        ("complete", Json::U64(complete)),
        ("events_dropped", Json::U64(dropped_events)),
        (
            "end_to_end",
            Json::obj(vec![
                (
                    "mean_ns",
                    Json::F64(e2e_sum as f64 / complete.max(1) as f64),
                ),
                ("max_ns", Json::U64(e2e_max)),
            ]),
        ),
        ("legs", Json::Obj(legs_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_core::{Architecture, Host, HostConfig};

    fn mini_host() -> Host {
        Host::new(
            HostConfig::new(Architecture::Bsd),
            "10.9.9.9".parse().unwrap(),
        )
    }

    #[test]
    fn empty_host_reports_are_well_formed() {
        let h = mini_host();
        let p = profiler_json(&h);
        assert_eq!(p.get("total_ns").unwrap().as_u64(), Some(0));
        let a = attribution_json(&h);
        assert_eq!(a.get("protocol_cycles_ns").unwrap().as_u64(), Some(0));
        assert_eq!(misattributed_fraction(&h), 0.0);
        let t = timeline_json(&h);
        assert_eq!(t.get("rows_dropped").unwrap().as_u64(), Some(0));
        assert!(folded_stacks(&h, "bsd").is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let mut w = World::with_defaults();
        w.add_host(mini_host());
        let s = span_trace_chrome(&w);
        assert!(s.starts_with('[') && s.ends_with(']'));
        let b = span_breakdown_json(&w, "recv");
        assert_eq!(b.get("spans").unwrap().as_u64(), Some(0));
    }
}
