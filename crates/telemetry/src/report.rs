//! Report builders: turn a finished [`World`]'s hosts into the JSON
//! structure every experiment binary emits next to its text output.

use crate::json::Json;
use lrp_core::{Host, PacketLedger, SockStats, World};
use lrp_sim::{Histogram, QuantileSketch};

/// The exact [`Histogram`]'s worst-case relative error: 32 sub-buckets
/// per octave give bucket widths of at most 1/16 of the lower bound
/// (quantiles report bucket lower bounds, same convention as the sketch).
const HISTOGRAM_RELATIVE_ERROR: f64 = 1.0 / 16.0;

/// Summarizes a latency histogram: count, mean and the percentiles the
/// reports quote. All values are nanoseconds.
pub fn histogram_json(h: &Histogram) -> Json {
    if h.count() == 0 {
        return Json::obj(vec![("count", Json::U64(0))]);
    }
    Json::obj(vec![
        ("count", Json::U64(h.count())),
        ("mean", Json::F64(h.mean())),
        ("min", Json::U64(h.min())),
        ("p50", Json::U64(h.quantile(0.50))),
        ("p90", Json::U64(h.quantile(0.90))),
        ("p99", Json::U64(h.quantile(0.99))),
        ("p999", Json::U64(h.quantile(0.999))),
        ("max", Json::U64(h.max())),
    ])
}

/// A latency report backed by both the exact histogram and its mergeable
/// sketch shadow: exact percentiles up to p999, sketch percentiles up to
/// p9999, and a `backend` map stating which structure produced each
/// percentile so schema consumers can tell them apart.
///
/// # Panics
///
/// Panics if the sketch disagrees with the exact histogram beyond the
/// combined relative-error bound — the per-run equivalence pin for the
/// sketch's correctness.
pub fn latency_json(h: &Histogram, s: &QuantileSketch) -> Json {
    assert_eq!(
        h.count(),
        s.count(),
        "histogram and sketch shadow diverged in sample count"
    );
    if h.count() > 0 {
        // Both report lower bounds of the bucket holding the same true
        // sample v*, so they differ by at most v* · max(eh, es) with
        // v* ≤ exact/(1 − eh). Small absolute slack for tiny samples.
        let eh = HISTOGRAM_RELATIVE_ERROR;
        let e = eh.max(s.relative_error()) / (1.0 - eh);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = h.quantile(q);
            let est = s.quantile(q);
            let tol = (exact as f64 * e) as u64 + 64;
            assert!(
                est.abs_diff(exact) <= tol,
                "sketch p{q} = {est} vs exact {exact} exceeds tolerance {tol}"
            );
        }
    }
    let mut obj = histogram_json(h);
    if let Json::Obj(members) = &mut obj {
        if h.count() > 0 {
            members.push((
                "sketch".to_string(),
                Json::obj(vec![
                    ("relative_error", Json::F64(s.relative_error())),
                    ("p99", Json::U64(s.quantile(0.99))),
                    ("p999", Json::U64(s.quantile(0.999))),
                    ("p9999", Json::U64(s.quantile(0.9999))),
                ]),
            ));
            members.push((
                "backend".to_string(),
                Json::obj(vec![
                    ("p50", Json::str("exact")),
                    ("p90", Json::str("exact")),
                    ("p99", Json::str("exact")),
                    ("p999", Json::str("exact")),
                    ("p9999", Json::str("sketch")),
                ]),
            ));
        }
    }
    obj
}

/// One socket's netstat row.
pub fn sock_stats_json(st: &SockStats) -> Json {
    let proto = match st.proto {
        lrp_core::SockProto::Udp => "udp",
        lrp_core::SockProto::Tcp => "tcp",
        lrp_core::SockProto::Icmp => "icmp",
    };
    let mut members = vec![
        ("sock", Json::U64(st.sock.0 as u64)),
        ("proto", Json::str(proto)),
        (
            "local",
            Json::str(format!("{}:{}", st.local.addr, st.local.port)),
        ),
        (
            "remote",
            match st.remote {
                Some(r) => Json::str(format!("{}:{}", r.addr, r.port)),
                None => Json::Null,
            },
        ),
        ("recv_q", Json::U64(st.recv_q as u64)),
        ("chan_depth", Json::U64(st.chan_depth as u64)),
        ("drops_sockbuf", Json::U64(st.drops_sockbuf)),
        ("drops_channel", Json::U64(st.drops_channel)),
    ];
    if let Some(l) = &st.listen {
        members.push((
            "listen",
            Json::obj(vec![
                ("backlog", Json::U64(l.backlog as u64)),
                ("syn_queue", Json::U64(l.syn_queue as u64)),
                ("accept_queue", Json::U64(l.accept_queue as u64)),
                ("half_open", Json::U64(l.half_open as u64)),
                ("syn_drops", Json::U64(l.syn_drops)),
                ("syn_cache_evictions", Json::U64(l.syn_cache_evictions)),
                ("cookies_sent", Json::U64(l.cookies_sent)),
                ("cookies_validated", Json::U64(l.cookies_validated)),
                ("cookies_rejected", Json::U64(l.cookies_rejected)),
            ]),
        ));
    }
    if let Some(t) = &st.tcp {
        members.push((
            "tcp",
            Json::obj(vec![
                ("state", Json::str(t.state.name())),
                ("srtt_ns", Json::U64(t.srtt_ns)),
                ("rttvar_ns", Json::U64(t.rttvar_ns)),
                ("rto_ns", Json::U64(t.rto_ns)),
                ("retries", Json::U64(t.retries as u64)),
                ("cwnd", Json::U64(t.cwnd)),
                ("ssthresh", Json::U64(t.ssthresh)),
                ("snd_q", Json::U64(t.snd_q)),
                ("rcv_q", Json::U64(t.rcv_q)),
                ("retransmits", Json::U64(t.retransmits)),
                ("fast_retransmits", Json::U64(t.fast_retransmits)),
                ("timeouts", Json::U64(t.timeouts)),
                ("dup_acks", Json::U64(t.dup_acks)),
            ]),
        ));
    }
    Json::obj(members)
}

/// The watchdog's detected anomalies for one host.
pub fn anomalies_json(host: &Host) -> Json {
    let tele = host.telemetry();
    let events: Vec<Json> = tele
        .anomalies()
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("t_ns", Json::U64(e.t_ns)),
                ("kind", Json::str(e.kind.name())),
                (
                    "pid",
                    match e.pid {
                        Some(p) => Json::U64(p as u64),
                        None => Json::Null,
                    },
                ),
                ("detail", Json::str(e.detail)),
                ("value", Json::U64(e.value)),
                ("limit", Json::U64(e.limit)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("total", Json::U64(tele.anomaly_total())),
        ("events", Json::Arr(events)),
    ])
}

/// The frame-disposition ledger as JSON, including the conservation
/// verdict.
pub fn ledger_json(l: &PacketLedger) -> Json {
    let drops: Vec<(String, Json)> = l
        .host_drops
        .iter()
        .map(|(name, n)| (name.to_string(), Json::U64(*n)))
        .collect();
    Json::obj(vec![
        ("accepted", Json::U64(l.accepted)),
        ("nic_ring_drops", Json::U64(l.nic_ring_drops)),
        ("nic_early_discards", Json::U64(l.nic_early_discards)),
        ("nic_stall_drops", Json::U64(l.nic_stall_drops)),
        ("in_flight", Json::U64(l.in_flight)),
        ("delivered_udp", Json::U64(l.delivered_udp)),
        ("delivered_icmp", Json::U64(l.delivered_icmp)),
        ("tcp_frames", Json::U64(l.tcp_frames)),
        ("forwarded", Json::U64(l.forwarded)),
        ("arp_frames", Json::U64(l.arp_frames)),
        ("reasm_absorbed", Json::U64(l.reasm_absorbed)),
        ("reasm_expired", Json::U64(l.reasm_expired)),
        ("flushed", Json::U64(l.flushed)),
        ("owner_dead", Json::U64(l.owner_dead)),
        ("reboot_flushed", Json::U64(l.reboot_flushed)),
        ("cookie_validated", Json::U64(l.cookie_validated)),
        ("cookie_rejected", Json::U64(l.cookie_rejected)),
        ("host_drops", Json::Obj(drops)),
        ("host_dropped", Json::U64(l.host_dropped())),
        ("disposed", Json::U64(l.disposed())),
        ("conserved", Json::Bool(l.conserved())),
    ])
}

/// The full per-host report: ledger, per-stage latency, drop points,
/// NIC/host statistics and the CPU charged-time breakdown.
pub fn host_report(host: &Host) -> Json {
    let tele = host.telemetry();
    let ledger = host.packet_ledger();
    let nic = host.nic.stats();
    let stats = &host.stats;
    let tcp = host.tcp_totals();

    let mut drop_rows: Vec<(String, u64)> = stats
        .drops
        .iter()
        .map(|(p, n)| (p.name().to_string(), *n))
        .collect();
    drop_rows.sort_unstable();
    let drops = Json::Obj(
        drop_rows
            .into_iter()
            .map(|(k, n)| (k, Json::U64(n)))
            .collect(),
    );

    let acct = host.sched.account_totals();
    let per_cpu: Vec<Json> = (0..host.cfg.ncpus)
        .map(|cpu| {
            Json::obj(vec![
                ("cpu", Json::U64(cpu as u64)),
                (
                    "charged_ns",
                    Json::U64(host.sched.charged_on(cpu).as_nanos()),
                ),
                ("busy_ns", Json::U64(host.cpu_busy(cpu).as_nanos())),
            ])
        })
        .collect();
    let per_process: Vec<Json> = host
        .sched
        .procs()
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("pid", Json::U64(p.pid.0 as u64)),
                ("name", Json::str(p.name.clone())),
                ("user_ns", Json::U64(p.acct.user.as_nanos())),
                ("system_ns", Json::U64(p.acct.system.as_nanos())),
                ("interrupt_ns", Json::U64(p.acct.interrupt.as_nanos())),
            ])
        })
        .collect();

    Json::obj(vec![
        ("addr", Json::str(host.addr.to_string())),
        ("arch", Json::str(host.cfg.arch.name())),
        ("ncpus", Json::U64(host.cfg.ncpus as u64)),
        ("conserved", Json::Bool(ledger.conserved())),
        ("ledger", ledger_json(&ledger)),
        (
            "latency_ns",
            Json::obj(vec![
                (
                    "arrival_to_deliver",
                    latency_json(&tele.arrival_to_deliver, &tele.arrival_to_deliver_sketch),
                ),
                (
                    "channel_residency",
                    latency_json(&tele.channel_residency, &tele.channel_residency_sketch),
                ),
                (
                    "softirq_dispatch",
                    latency_json(&tele.softirq_dispatch, &tele.softirq_dispatch_sketch),
                ),
            ]),
        ),
        ("drops", drops),
        (
            "netstat",
            Json::Arr(host.host_netstat().iter().map(sock_stats_json).collect()),
        ),
        ("anomalies", anomalies_json(host)),
        (
            "nic",
            Json::obj(vec![
                ("rx_frames", Json::U64(nic.rx_frames)),
                ("interrupts", Json::U64(nic.interrupts)),
                ("ring_drops", Json::U64(nic.ring_drops)),
                ("early_discards", Json::U64(nic.early_discards)),
                ("stall_drops", Json::U64(nic.stall_drops)),
                ("coalesced_intrs", Json::U64(nic.coalesced_intrs)),
                ("tx_frames", Json::U64(nic.tx_frames)),
                ("ifq_drops", Json::U64(nic.ifq_drops)),
            ]),
        ),
        (
            "stats",
            Json::obj(vec![
                ("udp_delivered", Json::U64(stats.udp_delivered)),
                ("udp_delivered_bytes", Json::U64(stats.udp_delivered_bytes)),
                ("tcp_delivered_bytes", Json::U64(stats.tcp_delivered_bytes)),
                ("hw_chunks", Json::U64(stats.hw_chunks)),
                ("soft_jobs", Json::U64(stats.soft_jobs)),
                ("ctx_switches", Json::U64(stats.ctx_switches)),
                ("tcp_accepted", Json::U64(stats.tcp_accepted)),
                ("ipis", Json::U64(stats.ipis)),
            ]),
        ),
        (
            "tcp",
            Json::obj(vec![
                ("segs_in", Json::U64(tcp.segs_in)),
                ("segs_out", Json::U64(tcp.segs_out)),
                ("retransmits", Json::U64(tcp.retransmits)),
                ("fast_retransmits", Json::U64(tcp.fast_retransmits)),
                ("timeouts", Json::U64(tcp.timeouts)),
                ("dup_acks", Json::U64(tcp.dup_acks)),
            ]),
        ),
        (
            "cpu",
            Json::obj(vec![
                (
                    "total_charged_ns",
                    Json::U64(host.sched.total_charged().as_nanos()),
                ),
                ("user_ns", Json::U64(acct.user.as_nanos())),
                ("system_ns", Json::U64(acct.system.as_nanos())),
                ("interrupt_ns", Json::U64(acct.interrupt.as_nanos())),
                ("per_cpu", Json::Arr(per_cpu)),
                ("per_process", Json::Arr(per_process)),
            ]),
        ),
        (
            "trace",
            Json::obj(vec![
                ("recorded", Json::U64(tele.trace.recorded())),
                ("stored", Json::U64(tele.trace.len() as u64)),
            ]),
        ),
    ])
}

/// Reports every host in the world, in host-index order.
pub fn world_report(world: &World) -> Json {
    Json::Arr(world.hosts.iter().map(host_report).collect())
}

/// The packet-conservation self-check: one error string per host whose
/// ledger does not balance (empty = all conserved). Hosts running with
/// telemetry disabled are an error too — the check is meaningless there.
pub fn conservation_errors(world: &World) -> Vec<String> {
    let mut errs = Vec::new();
    for (i, host) in world.hosts.iter().enumerate() {
        if !host.telemetry().enabled() {
            errs.push(format!("host {i} ({}): telemetry disabled", host.addr));
            continue;
        }
        let l = host.packet_ledger();
        if !l.conserved() {
            errs.push(format!(
                "host {i} ({}): accepted {} != disposed {} — {l:?}",
                host.addr,
                l.accepted,
                l.disposed()
            ));
        }
    }
    errs
}

/// Builds the world report after asserting packet conservation on every
/// host.
///
/// # Panics
///
/// Panics with the offending ledgers if any host's accepted-frame count
/// does not equal the sum of its disposition buckets.
pub fn report_and_check(world: &World, label: &str) -> Json {
    let errs = conservation_errors(world);
    assert!(
        errs.is_empty(),
        "packet conservation violated in {label}:\n{}",
        errs.join("\n")
    );
    world_report(world)
}
