//! CI gate over the emitted experiment results, driven entirely by the
//! contents of `schemas/`:
//!
//! - `schemas/results.schema.json` — the envelope schema; every
//!   `results/*.json` document (except `*.trace.json` chrome exports)
//!   must conform to it.
//! - `schemas/<exp>.data.schema.json` — an experiment-specific pin; the
//!   `data` member of `results/<exp>.json` must conform to it. A data
//!   schema whose result file does not exist is an **orphan** and fails
//!   validation, as does any schema file matching neither pattern — so
//!   adding a schema without wiring its experiment (or renaming an
//!   experiment without its schema) cannot silently stop being checked.
//! - `schemas/BENCH_<name>.schema.json` — a pin for the wall-clock
//!   benchmark document `BENCH_<name>.json` at the repository root
//!   (emitted by the corresponding `bench_<name>` binary and committed
//!   so the trajectory is diffable). The whole document must conform;
//!   a pin without its document is an orphan.
//!
//! Beyond schema conformance, every host report must have passed the
//! packet-conservation self-check (`"conserved": true`).
//!
//! Exits non-zero (listing every violation) if any document is missing,
//! malformed, schema-invalid, unconserved, or any schema is orphaned.

use lrp_telemetry::{results_dir, schema, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn schemas_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Collects `results/*.json`, skipping the `*.trace.json` exports (those
/// are chrome://tracing documents with a different shape).
fn result_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".json") && !n.ends_with(".trace.json"))
        })
        .collect();
    files.sort();
    files
}

fn load_json(path: &Path, what: &str, errs: &mut Vec<String>) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errs.push(format!("{what}: unreadable: {e}"));
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(d) => Some(d),
        Err(e) => {
            errs.push(format!("{what}: invalid JSON: {e}"));
            None
        }
    }
}

/// Discovered schemas: the envelope, `(experiment, schema)` data pins,
/// and `(bench document name, schema)` pins for repo-root BENCH files.
struct Schemas {
    envelope: Json,
    data: Vec<(String, Json)>,
    bench: Vec<(String, Json)>,
}

/// Walks `schemas/`, classifying every `*.schema.json` file. Unknown
/// schema names are reported as errors so nothing is silently skipped.
fn discover_schemas(errs: &mut Vec<String>) -> Option<Schemas> {
    let dir = schemas_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
        .collect();
    names.sort();

    let mut envelope = None;
    let mut data = Vec::new();
    let mut bench = Vec::new();
    for name in names {
        if !name.ends_with(".schema.json") {
            errs.push(format!(
                "schemas/{name}: unrecognized file (expected results.schema.json, <exp>.data.schema.json or BENCH_<name>.schema.json)"
            ));
            continue;
        }
        let doc = load_json(&dir.join(&name), &format!("schemas/{name}"), errs);
        if name == "results.schema.json" {
            envelope = doc;
        } else if let Some(exp) = name.strip_suffix(".data.schema.json") {
            if let Some(doc) = doc {
                data.push((exp.to_string(), doc));
            }
        } else if name.starts_with("BENCH_") {
            if let (Some(stem), Some(doc)) = (name.strip_suffix(".schema.json"), doc) {
                bench.push((format!("{stem}.json"), doc));
            }
        } else {
            errs.push(format!(
                "schemas/{name}: unrecognized schema (expected results.schema.json, <exp>.data.schema.json or BENCH_<name>.schema.json)"
            ));
        }
    }
    match envelope {
        Some(envelope) => Some(Schemas {
            envelope,
            data,
            bench,
        }),
        None => {
            errs.push("schemas/results.schema.json: missing".into());
            None
        }
    }
}

fn check_file(path: &Path, schemas: &Schemas, errs: &mut Vec<String>) {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let Some(doc) = load_json(path, name, errs) else {
        return;
    };
    for e in schema::validate(&doc, &schemas.envelope, "$") {
        errs.push(format!("{name}: {e}"));
    }
    // Experiment-specific pins: the "data" member carries the numbers the
    // paper comparison rests on, so experiments with a data schema get it
    // enforced here.
    let exp = doc.get("experiment").and_then(Json::as_str).unwrap_or("");
    if let Some((_, data_schema)) = schemas.data.iter().find(|(e, _)| e == exp) {
        match doc.get("data") {
            Some(data) => {
                for e in schema::validate(data, data_schema, "$.data") {
                    errs.push(format!("{name}: {e}"));
                }
            }
            None => errs.push(format!("{name}: missing data member (pinned by schema)")),
        }
    }
    // The conservation gate: schema conformance says the key exists;
    // here it must also be true.
    let hosts = doc.get("hosts").and_then(Json::as_obj);
    for (label, report) in hosts.into_iter().flatten() {
        for (i, host) in report.as_arr().into_iter().flatten().enumerate() {
            if host.get("conserved").and_then(Json::as_bool) != Some(true) {
                errs.push(format!(
                    "{name}: hosts.{label}[{i}]: packet conservation violated"
                ));
            }
        }
    }
    // The watchdog gate: the livelock timeline must show the paper's
    // headline asymmetry as detected anomalies — 4.4BSD trips livelock
    // onset under the blast, NI-LRP never does.
    if exp == "livelock_timeline" {
        check_livelock_anomalies(name, &doc, errs);
    }
}

/// Counts `livelock_onset` anomaly events in one architecture's data
/// entry of the livelock timeline document.
fn livelock_onsets(doc: &Json, arch: &str) -> Option<u64> {
    let entry = doc
        .get("data")
        .and_then(Json::as_arr)?
        .iter()
        .find(|e| e.get("arch").and_then(Json::as_str) == Some(arch))?;
    let events = entry
        .get("anomalies")?
        .get("events")
        .and_then(Json::as_arr)?;
    Some(
        events
            .iter()
            .filter(|e| e.get("kind").and_then(Json::as_str) == Some("livelock_onset"))
            .count() as u64,
    )
}

fn check_livelock_anomalies(name: &str, doc: &Json, errs: &mut Vec<String>) {
    match livelock_onsets(doc, "4.4BSD") {
        Some(0) => errs.push(format!(
            "{name}: 4.4BSD shows no livelock_onset anomaly — the watchdog must detect the blast"
        )),
        Some(_) => {}
        None => errs.push(format!("{name}: no anomalies section for 4.4BSD")),
    }
    match livelock_onsets(doc, "NI-LRP") {
        Some(0) => {}
        Some(n) => errs.push(format!(
            "{name}: NI-LRP shows {n} livelock_onset anomalies — LRP must not livelock"
        )),
        None => errs.push(format!("{name}: no anomalies section for NI-LRP")),
    }
}

/// The telemetry-budget gate on `BENCH_sim.json`: both telemetry modes
/// must have been measured (the overhead number is meaningless without
/// its off baseline), and the enforced budget itself is pinned by the
/// schema's `maximum` on `fig3_telemetry_overhead`.
fn check_bench_telemetry_modes(name: &str, doc: &Json, errs: &mut Vec<String>) {
    let rows = doc.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    for want in [true, false] {
        let present = rows.iter().any(|r| {
            r.get("telemetry").and_then(Json::as_bool) == Some(want)
                && r.get("mode").and_then(Json::as_str) == Some("current")
        });
        if !present {
            errs.push(format!(
                "{name}: no current-mode row with telemetry={want} — both modes must be benchmarked"
            ));
        }
    }
}

fn main() -> ExitCode {
    let mut errs = Vec::new();
    let schemas = discover_schemas(&mut errs);

    let files = result_files();
    if files.is_empty() {
        errs.push(format!(
            "no result documents found under {}",
            results_dir().display()
        ));
    }
    if let Some(schemas) = &schemas {
        // Orphan check: every data schema must have its result document.
        for (exp, _) in &schemas.data {
            let expected = results_dir().join(format!("{exp}.json"));
            if !files.contains(&expected) {
                errs.push(format!(
                    "schemas/{exp}.data.schema.json: orphan schema — results/{exp}.json does not exist"
                ));
            }
        }
        for path in &files {
            check_file(path, schemas, &mut errs);
        }
        // Repo-root benchmark documents: the whole document conforms to
        // its pin. Missing documents are orphaned pins, same as above.
        for (doc_name, bench_schema) in &schemas.bench {
            let path = repo_root().join(doc_name);
            if !path.is_file() {
                errs.push(format!(
                    "schemas/{}: orphan schema — {doc_name} does not exist at the repo root",
                    doc_name.replace(".json", ".schema.json")
                ));
                continue;
            }
            if let Some(doc) = load_json(&path, doc_name, &mut errs) {
                for e in schema::validate(&doc, bench_schema, "$") {
                    errs.push(format!("{doc_name}: {e}"));
                }
                if doc_name == "BENCH_sim.json" {
                    check_bench_telemetry_modes(doc_name, &doc, &mut errs);
                }
            }
        }
    }
    if errs.is_empty() {
        let schemas = schemas.as_ref().expect("schemas present when no errors");
        println!(
            "validated {} result document(s) against the envelope schema + {} data pin(s) + {} bench pin(s): all conform, all conserved",
            files.len(),
            schemas.data.len(),
            schemas.bench.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("error: {e}");
        }
        eprintln!("{} validation error(s)", errs.len());
        ExitCode::FAILURE
    }
}
