//! CI gate over the emitted experiment results: every `results/*.json`
//! document must conform to `schemas/results.schema.json`, and every
//! host report inside it must have passed the packet-conservation
//! self-check (`"conserved": true`).
//!
//! Exits non-zero (listing every violation) if any document is missing,
//! malformed, schema-invalid, or reports a conservation failure.

use lrp_telemetry::{results_dir, schema, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn schema_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas/results.schema.json")
}

fn fault_sweep_schema_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas/fault_sweep.data.schema.json")
}

/// Collects `results/*.json`, skipping the `*.trace.json` exports (those
/// are chrome://tracing documents with a different shape).
fn result_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".json") && !n.ends_with(".trace.json"))
        })
        .collect();
    files.sort();
    files
}

fn check_file(path: &Path, schema_doc: &Json, fault_sweep_schema: &Json, errs: &mut Vec<String>) {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errs.push(format!("{name}: unreadable: {e}"));
            return;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            errs.push(format!("{name}: invalid JSON: {e}"));
            return;
        }
    };
    for e in schema::validate(&doc, schema_doc, "$") {
        errs.push(format!("{name}: {e}"));
    }
    // Experiment-specific pin: the fault_sweep "data" member carries the
    // per-cell fault/recovery counters the paper comparison rests on.
    if doc.get("experiment").and_then(Json::as_str) == Some("fault_sweep") {
        if let Some(data) = doc.get("data") {
            for e in schema::validate(data, fault_sweep_schema, "$.data") {
                errs.push(format!("{name}: {e}"));
            }
        }
    }
    // The conservation gate: schema conformance says the key exists;
    // here it must also be true.
    let hosts = doc.get("hosts").and_then(Json::as_obj);
    for (label, report) in hosts.into_iter().flatten() {
        for (i, host) in report.as_arr().into_iter().flatten().enumerate() {
            if host.get("conserved").and_then(Json::as_bool) != Some(true) {
                errs.push(format!(
                    "{name}: hosts.{label}[{i}]: packet conservation violated"
                ));
            }
        }
    }
}

fn main() -> ExitCode {
    let schema_text =
        std::fs::read_to_string(schema_path()).expect("read schemas/results.schema.json");
    let schema_doc = Json::parse(&schema_text).expect("parse schemas/results.schema.json");
    let fault_sweep_text = std::fs::read_to_string(fault_sweep_schema_path())
        .expect("read schemas/fault_sweep.data.schema.json");
    let fault_sweep_schema =
        Json::parse(&fault_sweep_text).expect("parse schemas/fault_sweep.data.schema.json");

    let files = result_files();
    let mut errs = Vec::new();
    if files.is_empty() {
        errs.push(format!(
            "no result documents found under {}",
            results_dir().display()
        ));
    }
    for path in &files {
        check_file(path, &schema_doc, &fault_sweep_schema, &mut errs);
    }
    if errs.is_empty() {
        println!(
            "validated {} result document(s): all conform, all conserved",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("error: {e}");
        }
        eprintln!("{} validation error(s)", errs.len());
        ExitCode::FAILURE
    }
}
