//! A minimal JSON value: hand-rolled writer and parser.
//!
//! The build environment is offline, so the workspace cannot pull in
//! `serde`; this module implements the small JSON subset the experiment
//! reports need. Objects preserve insertion order, which keeps emitted
//! files deterministic.

use std::fmt::Write as _;

/// A JSON value. Objects are ordered association lists.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (non-finite values render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` gives the shortest representation that
                    // round-trips; force a fraction so the value parses
                    // back as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module writes, plus
    /// standard escapes).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(format!(
            "unexpected byte `{}` at {pos}",
            c as char,
            pos = *pos
        )),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "short \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(n).ok_or_else(|| "bad \\u escape".to_string())?);
                    }
                    _ => return Err(format!("bad escape `\\{}`", e as char)),
                }
            }
            _ => {
                // Re-decode UTF-8 from the byte stream: back up and take
                // the full character.
                *pos -= 1;
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if s.contains(['.', 'e', 'E']) {
        s.parse::<f64>().map(Json::F64).map_err(|e| e.to_string())
    } else if let Some(stripped) = s.strip_prefix('-') {
        let _ = stripped;
        s.parse::<i64>().map(Json::I64).map_err(|e| e.to_string())
    } else {
        s.parse::<u64>().map(Json::U64).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrips_through_parse() {
        let v = Json::obj(vec![
            ("name", Json::str("fig3")),
            ("count", Json::U64(42)),
            ("neg", Json::I64(-7)),
            ("rate", Json::F64(0.5)),
            ("whole", Json::F64(3.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::U64(1), Json::str("two \"quoted\"\n")]),
            ),
            ("empty_obj", Json::obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj(vec![("z", Json::U64(1)), ("a", Json::U64(2))]);
        let text = v.render();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2.5], "b": {"c": "x"}, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}
