//! Experiment telemetry output: hand-rolled JSON ([`Json`]), report
//! builders over [`lrp_core::Host`] telemetry ([`host_report`],
//! [`world_report`]), the packet-conservation self-check
//! ([`report_and_check`]), packet-trace export, and a minimal schema
//! validator ([`schema::validate`]) used by CI.
//!
//! Every experiment binary ends the same way: build its figure/table as
//! before, then emit `results/<name>.json` via [`write_results`] with the
//! numeric data plus a per-host report from a representative instrumented
//! run — after [`report_and_check`] has verified that every frame the NIC
//! accepted is accounted for exactly once (DESIGN.md §7).

#![warn(missing_docs)]

pub mod json;
pub mod observe;
pub mod report;
pub mod schema;

pub use json::Json;
pub use observe::{
    attribution_json, folded_stacks, misattributed_fraction, profiler_json, span_breakdown_json,
    span_paths, span_trace_chrome, timeline_gnuplot, timeline_json, SpanPath,
};
pub use report::{
    anomalies_json, conservation_errors, histogram_json, host_report, latency_json, ledger_json,
    report_and_check, sock_stats_json, world_report,
};

use lrp_sim::TraceRing;
use std::io;
use std::path::{Path, PathBuf};

/// The repository's `results/` directory (resolved relative to this
/// crate, so binaries work from any working directory).
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Assembles the standard experiment document: name, parameters, the
/// figure/table data, and per-label host reports.
pub fn experiment_json(
    name: &str,
    params: Vec<(&str, Json)>,
    data: Json,
    hosts: Vec<(String, Json)>,
) -> Json {
    Json::obj(vec![
        ("experiment", Json::str(name)),
        ("params", Json::obj(params)),
        ("data", data),
        ("hosts", Json::Obj(hosts)),
    ])
}

/// Writes `results/<name>.json` and returns its path.
pub fn write_results(name: &str, doc: &Json) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, doc.render())?;
    Ok(path)
}

/// Writes an arbitrary text artifact `results/<name>.<ext>` (folded
/// flamegraph stacks, gnuplot columns, chrome traces) and returns its
/// path.
pub fn write_artifact(name: &str, ext: &str, content: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.{ext}"));
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Writes a packet trace in both export formats:
/// `results/<name>.trace.jsonl` (one event per line) and
/// `results/<name>.trace.json` (chrome://tracing / Perfetto).
pub fn write_trace(name: &str, ring: &TraceRing) -> io::Result<(PathBuf, PathBuf)> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let jsonl = dir.join(format!("{name}.trace.jsonl"));
    std::fs::write(&jsonl, ring.to_jsonl())?;
    let chrome = dir.join(format!("{name}.trace.json"));
    std::fs::write(&chrome, ring.to_chrome_trace(0))?;
    Ok((jsonl, chrome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_json_shape() {
        let doc = experiment_json(
            "demo",
            vec![("duration_s", Json::U64(3))],
            Json::Arr(vec![]),
            vec![(
                "bsd".into(),
                Json::obj(vec![("conserved", Json::Bool(true))]),
            )],
        );
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("demo"));
        assert_eq!(
            doc.get("params")
                .unwrap()
                .get("duration_s")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(doc.get("hosts").unwrap().get("bsd").is_some());
    }
}
