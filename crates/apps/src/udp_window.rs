//! Sliding-window UDP throughput (Table 1's "UDP throughput" row).
//!
//! The paper measured UDP throughput "using a simple sliding-window
//! protocol" with checksumming disabled. The source keeps `window`
//! datagrams outstanding; the sink acknowledges each datagram with a small
//! reply carrying its sequence number.

use crate::Shared;
use lrp_core::{AppCtx, AppLogic, SockProto, SyscallOp, SyscallRet};
use lrp_sim::SimTime;
use lrp_stack::SockId;
use lrp_wire::Endpoint;

/// Metrics recorded by the sink.
#[derive(Debug, Default)]
pub struct UdpWindowMetrics {
    /// Payload bytes received.
    pub bytes: u64,
    /// Datagrams received.
    pub count: u64,
    /// First delivery.
    pub first: Option<SimTime>,
    /// Last delivery.
    pub last: Option<SimTime>,
    /// Transfer complete.
    pub done: bool,
}

impl UdpWindowMetrics {
    /// Goodput in Mbit/s between first and last delivery.
    pub fn mbps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => (self.bytes * 8) as f64 / b.since(a).as_secs_f64() / 1e6,
            _ => 0.0,
        }
    }
}

/// The sending side: keeps `window` datagrams outstanding.
pub struct UdpWindowSource {
    dst: Endpoint,
    payload: usize,
    total: u64,
    window: u64,
    sock: Option<SockId>,
    sent: u64,
    acked: u64,
    state: u8,
}

impl UdpWindowSource {
    /// Creates a source that sends `total` datagrams of `payload` bytes
    /// with `window` outstanding.
    pub fn new(dst: Endpoint, payload: usize, total: u64, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        UdpWindowSource {
            dst,
            payload,
            total,
            window,
            sock: None,
            sent: 0,
            acked: 0,
            state: 0,
        }
    }

    fn next_op(&mut self) -> SyscallOp {
        let sock = self.sock.expect("socket");
        if self.sent < self.total && self.sent - self.acked < self.window {
            let seq = self.sent;
            self.sent += 1;
            let mut data = vec![0xDA; self.payload.max(8)];
            data[..8].copy_from_slice(&seq.to_be_bytes());
            SyscallOp::SendTo {
                sock,
                dst: self.dst,
                data,
            }
        } else if self.acked < self.total {
            SyscallOp::Recv { sock, max_len: 64 }
        } else {
            SyscallOp::Exit
        }
    }
}

impl AppLogic for UdpWindowSource {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: 6200,
                }
            }
            (1, SyscallRet::Ok) => {
                self.state = 2;
                self.next_op()
            }
            (2, SyscallRet::Sent(_)) => self.next_op(),
            (2, SyscallRet::DataFrom(..)) => {
                self.acked += 1;
                self.next_op()
            }
            (2, SyscallRet::Err(_)) => {
                // Interface queue overflow: treat like a lost window slot
                // and keep going (the ack side will stall the window).
                self.next_op()
            }
            (s, r) => panic!("udp window source state {s}: {r:?}"),
        }
    }
}

/// The receiving side: consumes datagrams and acks each one.
pub struct UdpWindowSink {
    port: u16,
    expected: u64,
    metrics: Shared<UdpWindowMetrics>,
    sock: Option<SockId>,
}

impl UdpWindowSink {
    /// Creates a sink expecting `expected` datagrams on `port`.
    pub fn new(port: u16, expected: u64, metrics: Shared<UdpWindowMetrics>) -> Self {
        UdpWindowSink {
            port,
            expected,
            metrics,
            sock: None,
        }
    }
}

impl AppLogic for UdpWindowSink {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            SyscallRet::DataFrom(from, data) => {
                {
                    let mut m = self.metrics.borrow_mut();
                    m.bytes += data.len() as u64;
                    m.count += 1;
                    if m.first.is_none() {
                        m.first = Some(ctx.now);
                    }
                    m.last = Some(ctx.now);
                    if m.count >= self.expected {
                        m.done = true;
                    }
                }
                // Ack with the sequence number (first 8 bytes).
                SyscallOp::SendTo {
                    sock: self.sock.expect("socket"),
                    dst: from,
                    data: data[..8.min(data.len())].to_vec(),
                }
            }
            _ => SyscallOp::Recv {
                sock: self.sock.expect("socket"),
                max_len: 65_536,
            },
        }
    }
}
