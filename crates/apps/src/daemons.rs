//! Proxy daemon processes (§3.5 of the paper): network processing that
//! cannot be attributed to an application process is performed by daemons
//! with their own NI channels, so its CPU time is charged to them and
//! their scheduling priority bounds the resources it consumes.

use crate::Shared;
use lrp_core::{AppCtx, AppLogic, SockProto, SyscallOp, SyscallRet};
use lrp_sim::SimDuration;
use lrp_stack::SockId;
use lrp_wire::icmp::{self, IcmpMessage, IcmpType};

/// Metrics for the ICMP echo daemon.
#[derive(Debug, Default)]
pub struct IcmpMetrics {
    /// Echo requests answered.
    pub replies: u64,
    /// Messages received that were not echo requests.
    pub other: u64,
}

/// The ICMP proxy daemon: answers echo requests; its `nice` value (set at
/// spawn) bounds how much CPU ping-style traffic can consume.
pub struct IcmpEchoDaemon {
    /// Extra CPU burned per request (payload inspection etc.).
    work: SimDuration,
    metrics: Shared<IcmpMetrics>,
    sock: Option<SockId>,
    pending_reply: Option<(lrp_wire::Endpoint, Vec<u8>)>,
}

impl IcmpEchoDaemon {
    /// Creates the daemon.
    pub fn new(work: SimDuration, metrics: Shared<IcmpMetrics>) -> Self {
        IcmpEchoDaemon {
            work,
            metrics,
            sock: None,
            pending_reply: None,
        }
    }

    fn recv(&self) -> SyscallOp {
        SyscallOp::Recv {
            sock: self.sock.expect("socket"),
            max_len: 65_536,
        }
    }
}

impl AppLogic for IcmpEchoDaemon {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Icmp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind { sock: s, port: 0 }
            }
            SyscallRet::DataFrom(from, bytes) => match icmp::parse(&bytes) {
                Ok(IcmpMessage {
                    kind: IcmpType::EchoRequest,
                    ident,
                    seq,
                    payload,
                }) => {
                    let reply = icmp::build(&IcmpMessage {
                        kind: IcmpType::EchoReply,
                        ident,
                        seq,
                        payload,
                    });
                    self.pending_reply = Some((from, reply));
                    SyscallOp::Compute(self.work)
                }
                _ => {
                    self.metrics.borrow_mut().other += 1;
                    self.recv()
                }
            },
            SyscallRet::Ok if self.pending_reply.is_some() => {
                let (to, reply) = self.pending_reply.take().expect("checked");
                self.metrics.borrow_mut().replies += 1;
                SyscallOp::SendTo {
                    sock: self.sock.expect("socket"),
                    dst: to,
                    data: reply,
                }
            }
            _ => self.recv(),
        }
    }
}

/// A ping client over the raw ICMP socket: sends echo requests, collects
/// replies.
#[derive(Debug, Default)]
pub struct PingMetrics {
    /// Replies received.
    pub replies: u64,
    /// Requests sent.
    pub sent: u64,
}

/// Sends `count` echo requests to `dst`, waiting for each reply.
pub struct PingClient {
    dst: lrp_wire::Endpoint,
    count: u64,
    metrics: Shared<PingMetrics>,
    sock: Option<SockId>,
}

impl PingClient {
    /// Creates a ping client.
    pub fn new(dst: lrp_wire::Endpoint, count: u64, metrics: Shared<PingMetrics>) -> Self {
        PingClient {
            dst,
            count,
            metrics,
            sock: None,
        }
    }

    fn ping(&mut self) -> SyscallOp {
        let mut m = self.metrics.borrow_mut();
        if m.sent >= self.count {
            return SyscallOp::Exit;
        }
        m.sent += 1;
        let req = icmp::build(&IcmpMessage {
            kind: IcmpType::EchoRequest,
            ident: 7,
            seq: m.sent as u16,
            payload: vec![0x50; 32],
        });
        SyscallOp::SendTo {
            sock: self.sock.expect("socket"),
            dst: self.dst,
            data: req,
        }
    }
}

impl AppLogic for PingClient {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Sleep(SimDuration::from_millis(5))
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Ok if self.sock.is_none() => SyscallOp::Socket(SockProto::Icmp),
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind { sock: s, port: 0 }
            }
            SyscallRet::Ok => self.ping(),
            SyscallRet::Sent(_) => SyscallOp::Recv {
                sock: self.sock.expect("socket"),
                max_len: 65_536,
            },
            SyscallRet::DataFrom(_, bytes) => {
                if matches!(
                    icmp::parse(&bytes),
                    Ok(IcmpMessage {
                        kind: IcmpType::EchoReply,
                        ..
                    })
                ) {
                    self.metrics.borrow_mut().replies += 1;
                }
                self.ping()
            }
            other => panic!("ping client: {other:?}"),
        }
    }
}
