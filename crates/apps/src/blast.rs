//! The UDP blast sink (Figure 3's server) and the compute-bound
//! background process the paper runs to avoid the SunOS idle anomaly.

use crate::Shared;
use lrp_core::{AppCtx, AppLogic, SockProto, SyscallOp, SyscallRet};
use lrp_sim::{RateSeries, SimDuration, SimTime};
use lrp_stack::SockId;

/// Metrics recorded by a [`BlastSink`].
#[derive(Debug)]
pub struct SinkMetrics {
    /// Datagrams consumed by the application.
    pub received: u64,
    /// Payload bytes consumed.
    pub bytes: u64,
    /// Delivery rate over time (100 ms buckets).
    pub series: RateSeries,
    /// Time of first and last delivery.
    pub first: Option<SimTime>,
    /// Time of the last delivery.
    pub last: Option<SimTime>,
}

impl Default for SinkMetrics {
    fn default() -> Self {
        SinkMetrics {
            received: 0,
            bytes: 0,
            series: RateSeries::new(SimTime::ZERO, SimDuration::from_millis(100)),
            first: None,
            last: None,
        }
    }
}

impl SinkMetrics {
    /// Average delivery rate between first and last delivery, pkts/s.
    pub fn rate(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => (self.received - 1) as f64 / b.since(a).as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// Receives datagrams on a port and discards them immediately (the
/// paper's overload-test server process).
pub struct BlastSink {
    port: u16,
    metrics: Shared<SinkMetrics>,
    sock: Option<SockId>,
}

impl BlastSink {
    /// Creates a sink bound to `port`.
    pub fn new(port: u16, metrics: Shared<SinkMetrics>) -> Self {
        BlastSink {
            port,
            metrics,
            sock: None,
        }
    }
}

impl AppLogic for BlastSink {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            SyscallRet::DataFrom(_, data) => {
                let mut m = self.metrics.borrow_mut();
                m.received += 1;
                m.bytes += data.len() as u64;
                m.series.record(ctx.now, 1);
                if m.first.is_none() {
                    m.first = Some(ctx.now);
                }
                m.last = Some(ctx.now);
                drop(m);
                SyscallOp::Recv {
                    sock: self.sock.expect("socket created"),
                    max_len: 65_536,
                }
            }
            _ => SyscallOp::Recv {
                sock: self.sock.expect("socket created"),
                max_len: 65_536,
            },
        }
    }
}

/// An infinite compute loop whose progress is measurable: counts 1 ms
/// compute slices completed.
pub struct MeteredCompute {
    /// Completed 1 ms slices.
    pub slices: Shared<u64>,
}

impl MeteredCompute {
    /// Creates a metered compute loop.
    pub fn new(slices: Shared<u64>) -> Self {
        MeteredCompute { slices }
    }
}

impl AppLogic for MeteredCompute {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Compute(SimDuration::from_millis(1))
    }

    fn resume(&mut self, _ctx: AppCtx, _ret: SyscallRet) -> SyscallOp {
        *self.slices.borrow_mut() += 1;
        SyscallOp::Compute(SimDuration::from_millis(1))
    }
}

/// An interactive "console" process: sleeps 10 ms, does 200 µs of work,
/// and records how late it was scheduled — the paper's informal
/// observation that under a SYN flood "the server console appears dead"
/// on BSD but stays responsive under LRP.
pub struct Console {
    lag: Shared<lrp_sim::Welford>,
    expected: Option<lrp_sim::SimTime>,
}

impl Console {
    /// Creates a console measuring its scheduling lag into `lag`
    /// (microseconds).
    pub fn new(lag: Shared<lrp_sim::Welford>) -> Self {
        Console {
            lag,
            expected: None,
        }
    }
}

impl AppLogic for Console {
    fn start(&mut self, ctx: AppCtx) -> SyscallOp {
        self.expected = Some(ctx.now + SimDuration::from_millis(10));
        SyscallOp::Sleep(SimDuration::from_millis(10))
    }

    fn resume(&mut self, ctx: AppCtx, _ret: SyscallRet) -> SyscallOp {
        if let Some(expected) = self.expected.take() {
            // How late past the sleep deadline did we actually run?
            let lag_us = ctx.now.since(expected).as_nanos() as f64 / 1_000.0;
            self.lag.borrow_mut().record(lag_us);
            SyscallOp::Compute(SimDuration::from_micros(200))
        } else {
            self.expected = Some(ctx.now + SimDuration::from_millis(10));
            SyscallOp::Sleep(SimDuration::from_millis(10))
        }
    }
}

/// An infinite compute loop at a given niceness (the paper's `nice +20`
/// background processes in the Figure 4 experiment).
pub struct ComputeHog;

impl AppLogic for ComputeHog {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Compute(SimDuration::from_secs(3600))
    }

    fn resume(&mut self, _ctx: AppCtx, _ret: SyscallRet) -> SyscallOp {
        SyscallOp::Compute(SimDuration::from_secs(3600))
    }
}
