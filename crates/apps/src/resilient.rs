//! Failure-aware RPC applications for the crash-recovery experiments.
//!
//! The plain RPC workloads of Table 2 assume an always-up server; these
//! variants implement the end-to-end story: the client stamps every
//! request with an id, arms a receive deadline, and retries with capped
//! exponential backoff plus full jitter when the reply does not arrive —
//! so it rides out a server crash/restart. The server sheds load above a
//! socket-depth watermark by answering `Busy` instead of computing,
//! keeping its queue short under overload (e.g. while absorbing the
//! post-restart retry burst).
//!
//! Wire format: requests are 32 bytes starting with the request id as 8
//! little-endian bytes; replies are `[id:8][status:1]` with status 0 = OK
//! and 1 = Busy.

use crate::Shared;
use lrp_core::{AppCtx, AppLogic, Errno, SockProto, SyscallOp, SyscallRet};
use lrp_sim::{FastHashMap, SimDuration, SimTime, SplitMix64};
use lrp_stack::SockId;
use lrp_wire::Endpoint;
use std::collections::VecDeque;

/// Reply status byte: request served.
pub const STATUS_OK: u8 = 0;
/// Reply status byte: server shed the request under load.
pub const STATUS_BUSY: u8 = 1;

/// Retry/backoff parameters for a [`ResilientRpcClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Per-attempt receive deadline.
    pub req_timeout: SimDuration,
    /// Retries after the first attempt before giving a request up.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the (pre-jitter) backoff.
    pub backoff_cap: SimDuration,
    /// Seed for the client's private jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy suited to riding out a few-hundred-millisecond server
    /// outage: 50 ms deadline, 8 retries, 10 ms base doubling to a
    /// 160 ms cap.
    pub fn patient(jitter_seed: u64) -> Self {
        RetryPolicy {
            req_timeout: SimDuration::from_millis(50),
            max_retries: 8,
            backoff_base: SimDuration::from_millis(10),
            backoff_cap: SimDuration::from_millis(160),
            jitter_seed,
        }
    }

    /// The backoff before retry number `attempt` (1-based): full jitter
    /// over an exponentially growing, capped window. Deterministic in
    /// the caller's RNG stream.
    pub fn backoff(&self, rng: &mut SplitMix64, attempt: u32) -> SimDuration {
        let exp = self
            .backoff_base
            .as_nanos()
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let window = exp.min(self.backoff_cap.as_nanos());
        if window == 0 {
            return SimDuration::ZERO;
        }
        // "Full jitter": uniform in [1, window].
        SimDuration::from_nanos(1 + rng.next_below(window))
    }
}

/// Client-side counters for one resilient RPC flow.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Request transmissions (first attempts and retries).
    pub sent: u64,
    /// Retransmissions after a timeout or Busy reply.
    pub retries: u64,
    /// Receive deadlines that fired with no reply.
    pub timeouts: u64,
    /// `Busy` replies from a load-shedding server.
    pub busy_replies: u64,
    /// Replies whose id did not match the outstanding request.
    pub stale_replies: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub giveups: u64,
    /// Completion time of every successfully answered request.
    pub completions: Vec<SimTime>,
}

impl ClientStats {
    /// Completions at or after `t` — e.g. after a server restart.
    pub fn completions_since(&self, t: SimTime) -> u64 {
        self.completions.iter().filter(|&&c| c >= t).count() as u64
    }

    /// The first completion at or after `t`.
    pub fn first_completion_since(&self, t: SimTime) -> Option<SimTime> {
        self.completions.iter().copied().find(|&c| c >= t)
    }
}

/// A UDP RPC client with per-request deadlines, bounded retries with
/// backoff + jitter, and id-based dedup of stale replies.
pub struct ResilientRpcClient {
    server: Endpoint,
    local_port: u16,
    policy: RetryPolicy,
    gap: SimDuration,
    limit: Option<u64>,
    stats: Shared<ClientStats>,
    rng: SplitMix64,
    sock: Option<SockId>,
    cur_id: u64,
    next_id: u64,
    attempt: u32,
    state: u8,
}

impl ResilientRpcClient {
    /// Creates a client bound to `local_port`, pausing `gap` between
    /// successful requests, stopping after `limit` completions (never,
    /// when `None`).
    pub fn new(
        server: Endpoint,
        local_port: u16,
        policy: RetryPolicy,
        gap: SimDuration,
        limit: Option<u64>,
        stats: Shared<ClientStats>,
    ) -> Self {
        let rng = SplitMix64::new(policy.jitter_seed);
        ResilientRpcClient {
            server,
            local_port,
            policy,
            gap,
            limit,
            stats,
            rng,
            sock: None,
            cur_id: 0,
            next_id: 1,
            attempt: 0,
            state: 0,
        }
    }

    fn request_bytes(&self) -> Vec<u8> {
        let mut data = vec![0x3F; 32];
        data[..8].copy_from_slice(&self.cur_id.to_le_bytes());
        data
    }

    fn send_cur(&mut self) -> SyscallOp {
        self.stats.borrow_mut().sent += 1;
        self.state = 3;
        SyscallOp::SendTo {
            sock: self.sock.expect("socket"),
            dst: self.server,
            data: self.request_bytes(),
        }
    }

    fn start_new_request(&mut self) -> SyscallOp {
        self.cur_id = self.next_id;
        self.next_id += 1;
        self.attempt = 0;
        self.send_cur()
    }

    /// A reply attempt failed (deadline or Busy): back off and resend,
    /// or abandon the request once the retry budget is spent.
    fn retry_or_give_up(&mut self) -> SyscallOp {
        if self.attempt >= self.policy.max_retries {
            self.stats.borrow_mut().giveups += 1;
            self.state = 5;
            return SyscallOp::Sleep(self.gap.max(self.policy.backoff_base));
        }
        self.attempt += 1;
        self.stats.borrow_mut().retries += 1;
        let pause = self.policy.backoff(&mut self.rng, self.attempt);
        self.state = 6;
        SyscallOp::Sleep(pause)
    }

    fn arm_recv(&mut self) -> SyscallOp {
        self.state = 4;
        SyscallOp::RecvTimeout {
            sock: self.sock.expect("socket"),
            max_len: 65_536,
            timeout: self.policy.req_timeout,
        }
    }
}

impl AppLogic for ResilientRpcClient {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        // Give servers time to bind.
        SyscallOp::Sleep(SimDuration::from_millis(10))
    }

    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Ok) => {
                self.state = 1;
                SyscallOp::Socket(SockProto::Udp)
            }
            (1, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                self.state = 2;
                SyscallOp::Bind {
                    sock: s,
                    port: self.local_port,
                }
            }
            (2, SyscallRet::Ok) => self.start_new_request(),
            (3, SyscallRet::Sent(_)) => self.arm_recv(),
            // Sends can fail transiently (e.g. out of channel buffers
            // right after a restart): treat like a lost request.
            (3, SyscallRet::Err(_)) => self.retry_or_give_up(),
            (4, SyscallRet::DataFrom(_, data)) => {
                if data.len() < 9 || data[..8] != self.cur_id.to_le_bytes() {
                    self.stats.borrow_mut().stale_replies += 1;
                    return self.arm_recv();
                }
                if data[8] == STATUS_BUSY {
                    self.stats.borrow_mut().busy_replies += 1;
                    return self.retry_or_give_up();
                }
                let done = {
                    let mut st = self.stats.borrow_mut();
                    st.completions.push(ctx.now);
                    self.limit.is_some_and(|l| st.completions.len() as u64 >= l)
                };
                if done {
                    return SyscallOp::Exit;
                }
                self.state = 5;
                SyscallOp::Sleep(self.gap)
            }
            (4, SyscallRet::Err(Errno::TimedOut)) => {
                self.stats.borrow_mut().timeouts += 1;
                self.retry_or_give_up()
            }
            (4, SyscallRet::Err(_)) => self.retry_or_give_up(),
            (5, SyscallRet::Ok) => self.start_new_request(),
            (6, SyscallRet::Ok) => self.send_cur(),
            (s, r) => panic!("resilient rpc client state {s}: {r:?}"),
        }
    }
}

/// Server-side counters for a [`ResilientRpcServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests computed and answered OK.
    pub served: u64,
    /// Requests answered `Busy` above the watermark.
    pub shed: u64,
    /// Duplicate requests answered from the at-most-once reply cache
    /// (the work was *not* recomputed).
    pub replayed: u64,
}

/// How many executed replies a [`ResilientRpcServer`] remembers for
/// duplicate suppression (FIFO-evicted).
pub const REPLY_CACHE_CAP: usize = 1024;

/// A UDP RPC server that answers `Busy` instead of computing whenever its
/// receive-side queue depth exceeds `watermark` — bounding queueing delay
/// under overload so clients back off instead of piling on.
///
/// Execution is **at most once**: the server remembers the last
/// [`REPLY_CACHE_CAP`] `(client, id)` pairs it executed and answers a
/// duplicate (a retry whose original reply was lost, or crossed its
/// retransmission in flight) by replaying the cached reply instead of
/// computing again. `Busy` replies are *not* cached — the request was
/// never executed, so a retry deserves a fresh admission decision.
pub struct ResilientRpcServer {
    port: u16,
    work: SimDuration,
    watermark: usize,
    stats: Shared<ServerStats>,
    sock: Option<SockId>,
    reply_to: Option<Endpoint>,
    cur_id: u64,
    state: u8,
    /// Executed-request cache: `(client, id)` → status byte replied.
    replies: FastHashMap<(Endpoint, u64), u8>,
    /// FIFO eviction order for `replies`.
    reply_order: VecDeque<(Endpoint, u64)>,
}

impl ResilientRpcServer {
    /// Creates a server on `port` computing `work` per request, shedding
    /// above `watermark` queued requests.
    pub fn new(port: u16, work: SimDuration, watermark: usize, stats: Shared<ServerStats>) -> Self {
        ResilientRpcServer {
            port,
            work,
            watermark,
            stats,
            sock: None,
            reply_to: None,
            cur_id: 0,
            state: 0,
            replies: FastHashMap::default(),
            reply_order: VecDeque::new(),
        }
    }

    /// Records an executed reply for duplicate suppression.
    fn cache_reply(&mut self, key: (Endpoint, u64), status: u8) {
        if self.replies.insert(key, status).is_none() {
            self.reply_order.push_back(key);
            if self.reply_order.len() > REPLY_CACHE_CAP {
                if let Some(old) = self.reply_order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    fn recv(&mut self) -> SyscallOp {
        self.state = 2;
        SyscallOp::Recv {
            sock: self.sock.expect("socket"),
            max_len: 65_536,
        }
    }

    fn reply(&mut self, status: u8) -> SyscallOp {
        let mut data = Vec::with_capacity(9);
        data.extend_from_slice(&self.cur_id.to_le_bytes());
        data.push(status);
        self.state = 5;
        SyscallOp::SendTo {
            sock: self.sock.expect("socket"),
            dst: self.reply_to.take().expect("reply endpoint"),
            data,
        }
    }
}

impl AppLogic for ResilientRpcServer {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match (self.state, ret) {
            (0, SyscallRet::Socket(s)) => {
                self.sock = Some(s);
                self.state = 1;
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            (1, SyscallRet::Ok) => self.recv(),
            (2, SyscallRet::DataFrom(from, req)) => {
                if req.len() < 8 {
                    return self.recv();
                }
                self.reply_to = Some(from);
                self.cur_id = u64::from_le_bytes(req[..8].try_into().expect("checked"));
                // At-most-once: a request we already executed is answered
                // from the cache, skipping both admission and compute.
                if let Some(&status) = self.replies.get(&(from, self.cur_id)) {
                    self.stats.borrow_mut().replayed += 1;
                    return self.reply(status);
                }
                self.state = 3;
                SyscallOp::SockDepth {
                    sock: self.sock.expect("socket"),
                }
            }
            (3, SyscallRet::Depth(d)) => {
                if d > self.watermark {
                    self.stats.borrow_mut().shed += 1;
                    self.reply(STATUS_BUSY)
                } else {
                    self.state = 4;
                    SyscallOp::Compute(self.work)
                }
            }
            (4, SyscallRet::Ok) => {
                self.stats.borrow_mut().served += 1;
                let key = (self.reply_to.expect("reply endpoint"), self.cur_id);
                self.cache_reply(key, STATUS_OK);
                self.reply(STATUS_OK)
            }
            (5, SyscallRet::Sent(_)) | (5, SyscallRet::Err(_)) => self.recv(),
            (2, SyscallRet::Err(_)) => self.recv(),
            (s, r) => panic!("resilient rpc server state {s}: {r:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(seed: u64) -> Vec<u64> {
        let policy = RetryPolicy::patient(seed);
        let mut rng = SplitMix64::new(policy.jitter_seed);
        (1..=8)
            .map(|a| policy.backoff(&mut rng, a).as_nanos())
            .collect()
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn backoff_is_positive_and_capped() {
        let policy = RetryPolicy::patient(42);
        let mut rng = SplitMix64::new(policy.jitter_seed);
        for attempt in 1..=32 {
            let b = policy.backoff(&mut rng, attempt);
            assert!(!b.is_zero());
            assert!(b.as_nanos() <= policy.backoff_cap.as_nanos());
        }
    }

    #[test]
    fn duplicate_request_is_replayed_not_recomputed() {
        let stats: Shared<ServerStats> = Shared::default();
        let mut srv =
            ResilientRpcServer::new(9000, SimDuration::from_micros(100), 4, stats.clone());
        let ctx = AppCtx {
            now: SimTime::ZERO,
            pid: lrp_sched::Pid(1),
        };
        let client = Endpoint::new("10.0.0.9".parse().unwrap(), 7000);
        let mut req = vec![0x3F; 32];
        req[..8].copy_from_slice(&1u64.to_le_bytes());
        // Boot: socket, bind, first recv.
        assert!(matches!(srv.start(ctx), SyscallOp::Socket(_)));
        assert!(matches!(
            srv.resume(ctx, SyscallRet::Socket(SockId(5))),
            SyscallOp::Bind { .. }
        ));
        assert!(matches!(
            srv.resume(ctx, SyscallRet::Ok),
            SyscallOp::Recv { .. }
        ));
        // First copy of request 1: full admission + compute + OK reply.
        assert!(matches!(
            srv.resume(ctx, SyscallRet::DataFrom(client, req.clone().into())),
            SyscallOp::SockDepth { .. }
        ));
        assert!(matches!(
            srv.resume(ctx, SyscallRet::Depth(0)),
            SyscallOp::Compute(_)
        ));
        let reply = srv.resume(ctx, SyscallRet::Ok);
        match &reply {
            SyscallOp::SendTo { data, .. } => assert_eq!(data[8], STATUS_OK),
            other => panic!("expected OK reply, got {other:?}"),
        }
        assert!(matches!(
            srv.resume(ctx, SyscallRet::Sent(9)),
            SyscallOp::Recv { .. }
        ));
        // Duplicate of request 1: replied straight from the cache — no
        // SockDepth, no Compute.
        let replay = srv.resume(ctx, SyscallRet::DataFrom(client, req.into()));
        match &replay {
            SyscallOp::SendTo { data, .. } => assert_eq!(data[8], STATUS_OK),
            other => panic!("expected replayed reply, got {other:?}"),
        }
        let st = stats.borrow();
        assert_eq!(st.served, 1, "compute ran once");
        assert_eq!(st.replayed, 1, "duplicate suppressed");
    }

    #[test]
    fn reply_cache_is_bounded() {
        let stats: Shared<ServerStats> = Shared::default();
        let mut srv = ResilientRpcServer::new(9000, SimDuration::ZERO, 4, stats);
        let client = Endpoint::new("10.0.0.9".parse().unwrap(), 7000);
        for id in 0..(REPLY_CACHE_CAP as u64 + 100) {
            srv.cache_reply((client, id), STATUS_OK);
        }
        assert_eq!(srv.replies.len(), REPLY_CACHE_CAP);
        assert_eq!(srv.reply_order.len(), REPLY_CACHE_CAP);
        // Oldest entries evicted, newest retained.
        assert!(!srv.replies.contains_key(&(client, 0)));
        assert!(srv
            .replies
            .contains_key(&(client, REPLY_CACHE_CAP as u64 + 99)));
    }

    #[test]
    fn backoff_window_grows_exponentially_until_cap() {
        // The windows (upper bounds) double: sample many draws and check
        // the max observed for attempt 1 stays under the base.
        let policy = RetryPolicy::patient(3);
        let mut rng = SplitMix64::new(policy.jitter_seed);
        for _ in 0..100 {
            let b = policy.backoff(&mut rng, 1);
            assert!(b.as_nanos() <= policy.backoff_base.as_nanos());
        }
    }
}
