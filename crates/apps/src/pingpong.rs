//! UDP ping-pong: the paper's round-trip latency measurement (Table 1)
//! and the latency-under-load client (Figure 4).

use crate::Shared;
use lrp_core::{AppCtx, AppLogic, SockProto, SyscallOp, SyscallRet};
use lrp_sim::{Histogram, SimTime};
use lrp_stack::SockId;
use lrp_wire::Endpoint;

/// Metrics recorded by a [`PingPongClient`].
#[derive(Debug, Default)]
pub struct PingPongMetrics {
    /// Completed round trips.
    pub count: u64,
    /// Round-trip latency histogram (nanoseconds).
    pub rtt: Histogram,
    /// Finished the configured number of round trips.
    pub done: bool,
}

impl PingPongMetrics {
    /// Mean RTT in microseconds.
    pub fn mean_rtt_us(&self) -> f64 {
        self.rtt.mean() / 1_000.0
    }
}

/// Bounces a small message off a [`PingPongServer`] `count` times.
pub struct PingPongClient {
    server: Endpoint,
    payload: usize,
    count: u64,
    metrics: Shared<PingPongMetrics>,
    sock: Option<SockId>,
    sent_at: Option<SimTime>,
    done_count: u64,
}

impl PingPongClient {
    /// Creates a client that will perform `count` round trips of
    /// `payload`-byte messages.
    pub fn new(
        server: Endpoint,
        payload: usize,
        count: u64,
        metrics: Shared<PingPongMetrics>,
    ) -> Self {
        PingPongClient {
            server,
            payload,
            count,
            metrics,
            sock: None,
            sent_at: None,
            done_count: 0,
        }
    }

    fn ping(&mut self, now: SimTime) -> SyscallOp {
        self.sent_at = Some(now);
        SyscallOp::SendTo {
            sock: self.sock.expect("socket"),
            dst: self.server,
            data: vec![0x50; self.payload],
        }
    }
}

impl AppLogic for PingPongClient {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: 6100,
                }
            }
            SyscallRet::Ok => self.ping(ctx.now),
            SyscallRet::Sent(_) => SyscallOp::Recv {
                sock: self.sock.expect("socket"),
                max_len: 65_536,
            },
            SyscallRet::DataFrom(..) => {
                let rtt = ctx.now.since(self.sent_at.expect("ping outstanding"));
                let mut m = self.metrics.borrow_mut();
                m.count += 1;
                m.rtt.record_duration(rtt);
                self.done_count += 1;
                if self.done_count >= self.count {
                    m.done = true;
                    drop(m);
                    return SyscallOp::Exit;
                }
                drop(m);
                self.ping(ctx.now)
            }
            other => panic!("ping-pong client: unexpected {other:?}"),
        }
    }
}

/// Echoes datagrams back to their sender.
pub struct PingPongServer {
    port: u16,
    sock: Option<SockId>,
}

impl PingPongServer {
    /// Creates a server on `port`.
    pub fn new(port: u16) -> Self {
        PingPongServer { port, sock: None }
    }
}

impl AppLogic for PingPongServer {
    fn start(&mut self, _ctx: AppCtx) -> SyscallOp {
        SyscallOp::Socket(SockProto::Udp)
    }

    fn resume(&mut self, _ctx: AppCtx, ret: SyscallRet) -> SyscallOp {
        match ret {
            SyscallRet::Socket(s) => {
                self.sock = Some(s);
                SyscallOp::Bind {
                    sock: s,
                    port: self.port,
                }
            }
            SyscallRet::DataFrom(from, data) => SyscallOp::SendTo {
                sock: self.sock.expect("socket"),
                dst: from,
                data: data.to_vec(),
            },
            _ => SyscallOp::Recv {
                sock: self.sock.expect("socket"),
                max_len: 65_536,
            },
        }
    }
}
